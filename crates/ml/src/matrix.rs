//! Minimal dense row-major `f32` matrix with the operations the models
//! need. No BLAS: the inner loops are written so the compiler can
//! autovectorize (k-inner accumulation over contiguous rows).

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Build from row slices.
    ///
    /// With no rows the column count is unknowable, so `from_rows(&[])`
    /// yields the degenerate `0×0` matrix. That shape fails the input-dim
    /// assertions of trained models; callers that may hold an empty batch
    /// but know the width should use [`Matrix::empty`] instead. (Every
    /// `predict_batch` impl maps 0 rows to an empty prediction vector —
    /// see the `Regressor` docs.)
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// The canonical empty batch: `0×cols`, no data. Unlike
    /// `from_rows(&[])` this keeps the feature width, so shape checks
    /// against a trained model still line up.
    pub fn empty(cols: usize) -> Self {
        Matrix {
            rows: 0,
            cols,
            data: Vec::new(),
        }
    }

    /// Reshape `self` into the single row `row` (`1×row.len()`), reusing
    /// the existing allocation when capacity suffices.
    ///
    /// This is the buffer-recycling primitive behind the `Regressor::
    /// predict` default: a thread-local `Matrix` is reshaped per call, so
    /// single-row prediction stops allocating once the buffer has warmed
    /// up.
    pub fn copy_from_row(&mut self, row: &[f32]) {
        self.rows = 1;
        self.cols = row.len();
        self.data.clear();
        self.data.extend_from_slice(row);
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `self · other` — (m×k)·(k×n) = m×n.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue; // feature vectors are sparse-ish in zeros
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · other` into a caller-provided output, reusing its
    /// allocation. Same loop structure and therefore bit-identical
    /// results to [`matmul`](Self::matmul); this is the allocation-free
    /// primitive behind the MLP's scratch-buffer forward pass.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        out.rows = self.rows;
        out.cols = other.cols;
        out.data.clear();
        out.data.resize(self.rows * other.cols, 0.0);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue; // feature vectors are sparse-ish in zeros
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// `self · otherᵀ` — (m×k)·(n×k)ᵀ = m×n.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b dimension mismatch"
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// `selfᵀ · other` — (m×k)ᵀ·(m×n) = k×n.
    pub fn transpose_a_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transpose_a_matmul dimension mismatch"
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let b_row = other.row(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Select the given rows into a new matrix (mini-batch gather).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &src) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(src));
        }
        out
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.memory_bytes(), 24);
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m, Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
    }

    #[test]
    fn from_rows_of_nothing_is_zero_by_zero() {
        // Documented degenerate shape: no rows means the width is unknown.
        let m = Matrix::from_rows(&[]);
        assert_eq!((m.rows(), m.cols()), (0, 0));
        assert!(m.data().is_empty());
    }

    #[test]
    fn empty_keeps_the_width() {
        let m = Matrix::empty(7);
        assert_eq!((m.rows(), m.cols()), (0, 7));
        assert!(m.data().is_empty());
    }

    #[test]
    fn copy_from_row_reshapes_and_reuses() {
        let mut m = Matrix::zeros(4, 8);
        let cap_before = m.data.capacity();
        m.copy_from_row(&[1.0, 2.0, 3.0]);
        assert_eq!((m.rows(), m.cols()), (1, 3));
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        // The 4×8 allocation is recycled, not reallocated.
        assert_eq!(m.data.capacity(), cap_before);
        m.copy_from_row(&[9.0]);
        assert_eq!((m.rows(), m.cols()), (1, 1));
        assert_eq!(m.get(0, 0), 9.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_vec(2, 2, vec![58., 64., 139., 154.]));
    }

    #[test]
    fn matmul_transpose_b_equals_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(2, 3, vec![1., 0., 1., 0., 1., 0.]);
        let c = a.matmul_transpose_b(&b);
        assert_eq!(c, Matrix::from_vec(2, 2, vec![4., 2., 10., 5.]));
    }

    #[test]
    fn transpose_a_matmul_matches_manual() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(2, 2, vec![5., 6., 7., 8.]);
        // aᵀ·b = [[1,3],[2,4]]·[[5,6],[7,8]] = [[26,30],[38,44]]
        assert_eq!(
            a.transpose_a_matmul(&b),
            Matrix::from_vec(2, 2, vec![26., 30., 38., 44.])
        );
    }

    #[test]
    fn gather_rows_selects() {
        let m = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let g = m.gather_rows(&[2, 0]);
        assert_eq!(g, Matrix::from_vec(2, 2, vec![5., 6., 1., 2.]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_panics() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
