//! Feed-forward neural network — the paper's `NN` model (after Woltmann et
//! al. \[32\]): a ReLU multi-layer perceptron trained with Adam on mini
//! batches, manual backpropagation, MSE loss on scaled log-cardinalities.

use qfe_core::parallel::ThreadPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::compiled::{CompiledMlp, MlpScratch};
use crate::matrix::Matrix;
use crate::train::{shuffled_indices, Regressor};

/// Rows per intra-minibatch gradient chunk. Fixed (never derived from
/// the thread count) so chunk boundaries — and therefore the
/// floating-point grouping of the gradient reduction — are identical at
/// any `QFE_THREADS`; see the determinism contract in
/// `qfe_core::parallel`.
const GRAD_CHUNK: usize = 32;

/// One fully-connected layer with Adam state.
#[derive(Debug, Clone)]
pub(crate) struct Linear {
    pub(crate) w: Matrix, // in × out
    pub(crate) b: Vec<f32>,
    mw: Matrix,
    vw: Matrix,
    mb: Vec<f32>,
    vb: Vec<f32>,
}

impl Linear {
    pub(crate) fn new(input: usize, output: usize, rng: &mut StdRng) -> Self {
        // He initialization for ReLU networks.
        let scale = (2.0 / input as f32).sqrt();
        let mut w = Matrix::zeros(input, output);
        for v in w.data_mut() {
            *v = (rng.gen::<f32>() * 2.0 - 1.0) * scale;
        }
        Linear {
            w,
            b: vec![0.0; output],
            mw: Matrix::zeros(input, output),
            vw: Matrix::zeros(input, output),
            mb: vec![0.0; output],
            vb: vec![0.0; output],
        }
    }

    /// `x · W + b`.
    pub(crate) fn forward(&self, x: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.w);
        for r in 0..z.rows() {
            for (v, &b) in z.row_mut(r).iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        z
    }

    /// [`forward`](Self::forward) into a reusable buffer — bit-identical
    /// output, no allocation once `out` has warmed up.
    pub(crate) fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_into(&self.w, out);
        for r in 0..out.rows() {
            for (v, &b) in out.row_mut(r).iter_mut().zip(&self.b) {
                *v += b;
            }
        }
    }

    /// Adam step with gradients `(dw, db)`.
    pub(crate) fn adam_step(&mut self, dw: &Matrix, db: &[f32], lr: f32, t: i32) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        let bc1 = 1.0 - B1.powi(t);
        let bc2 = 1.0 - B2.powi(t);
        for ((w, g), (m, v)) in self
            .w
            .data_mut()
            .iter_mut()
            .zip(dw.data())
            .zip(self.mw.data_mut().iter_mut().zip(self.vw.data_mut()))
        {
            *m = B1 * *m + (1.0 - B1) * g;
            *v = B2 * *v + (1.0 - B2) * g * g;
            *w -= lr * (*m / bc1) / ((*v / bc2).sqrt() + EPS);
        }
        for ((b, &g), (m, v)) in self
            .b
            .iter_mut()
            .zip(db)
            .zip(self.mb.iter_mut().zip(&mut self.vb))
        {
            *m = B1 * *m + (1.0 - B1) * g;
            *v = B2 * *v + (1.0 - B2) * g * g;
            *b -= lr * (*m / bc1) / ((*v / bc2).sqrt() + EPS);
        }
    }

    pub(crate) fn memory_bytes(&self) -> usize {
        self.w.memory_bytes() + self.b.len() * 4
    }
}

pub(crate) fn relu(m: &mut Matrix) {
    for v in m.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Zero out gradient entries where the pre-activation was non-positive.
pub(crate) fn relu_backward(grad: &mut Matrix, pre_activation: &Matrix) {
    for (g, &z) in grad.data_mut().iter_mut().zip(pre_activation.data()) {
        if z <= 0.0 {
            *g = 0.0;
        }
    }
}

/// MLP hyperparameters.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Hidden layer widths (the output layer of width 1 is implicit).
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// RNG seed (weight init + batch shuffling).
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: vec![64, 64],
            epochs: 40,
            batch_size: 128,
            learning_rate: 1e-3,
            seed: 0,
        }
    }
}

/// The feed-forward network.
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<Linear>,
    input_dim: usize,
    adam_t: i32,
    /// Transposed-weight inference form, rebuilt after every fit and
    /// decode (never serialized). `None` only before training; training
    /// itself always reads the reference `layers`.
    compiled: Option<CompiledMlp>,
}

impl Mlp {
    /// Create an untrained MLP.
    pub fn new(config: MlpConfig) -> Self {
        assert!(!config.hidden.is_empty(), "need at least one hidden layer");
        Mlp {
            config,
            layers: Vec::new(),
            input_dim: 0,
            adam_t: 0,
            compiled: None,
        }
    }

    /// True when the compiled inference form is active (always, once
    /// trained or decoded).
    pub fn is_compiled(&self) -> bool {
        self.compiled.is_some()
    }

    /// The compiled forward-pass kernels, once trained or decoded.
    pub fn compiled(&self) -> Option<&CompiledMlp> {
        self.compiled.as_ref()
    }

    fn build(&mut self, input_dim: usize) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut dims = vec![input_dim];
        dims.extend_from_slice(&self.config.hidden);
        dims.push(1);
        self.layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], &mut rng))
            .collect();
        self.input_dim = input_dim;
        self.adam_t = 0;
        self.compiled = None; // stale until this fit completes
    }

    /// Forward pass keeping pre-activations and activations for backprop.
    fn forward_cached(&self, x: &Matrix) -> (Vec<Matrix>, Vec<Matrix>) {
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut act = Vec::with_capacity(self.layers.len() + 1);
        let mut cur = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(&cur);
            pre.push(z.clone());
            act.push(cur);
            let mut a = z;
            if i + 1 < self.layers.len() {
                relu(&mut a);
            }
            cur = a;
        }
        act.push(cur);
        (pre, act)
    }

    /// Forward + backward over the minibatch rows `[start, start+len)`,
    /// against the *current* (frozen) weights. Returns the chunk's
    /// unnormalized squared-error sum and its per-layer weight/bias
    /// gradient contributions (indexed first-layer-first).
    ///
    /// The MSE gradient `2 (ŷ − y) / n` divides by the **whole**
    /// minibatch size `n_total`, so summing the chunk contributions
    /// reconstructs the full-batch gradient exactly (row-separable
    /// backprop: `dW = Σ_rows actᵀ·grad` splits over any row partition).
    fn chunk_gradients(
        &self,
        x: &Matrix,
        y: &[f32],
        start: usize,
        len: usize,
        n_total: usize,
    ) -> (f64, Vec<Matrix>, Vec<Vec<f32>>) {
        let cols = x.cols();
        let bx = Matrix::from_vec(
            len,
            cols,
            x.data()[start * cols..(start + len) * cols].to_vec(),
        );
        let (pre, act) = self.forward_cached(&bx);
        let Some(output) = act.last() else {
            // Defensive: `forward_cached` always yields >= 1 entry.
            return (0.0, Vec::new(), Vec::new());
        };
        let mut grad = Matrix::zeros(len, 1);
        let mut loss = 0.0f64;
        for i in 0..len {
            let diff = output.get(i, 0) - y[start + i];
            loss += (diff as f64).powi(2);
            grad.set(i, 0, 2.0 * diff / n_total as f32);
        }
        let mut dws = Vec::with_capacity(self.layers.len());
        let mut dbs = Vec::with_capacity(self.layers.len());
        for l in (0..self.layers.len()).rev() {
            let dw = act[l].transpose_a_matmul(&grad);
            let mut db = vec![0.0f32; grad.cols()];
            for r in 0..grad.rows() {
                for (acc, &g) in db.iter_mut().zip(grad.row(r)) {
                    *acc += g;
                }
            }
            if l > 0 {
                let mut next = grad.matmul_transpose_b(&self.layers[l].w);
                relu_backward(&mut next, &pre[l - 1]);
                grad = next;
            }
            dws.push(dw);
            dbs.push(db);
        }
        dws.reverse();
        dbs.reverse();
        (loss, dws, dbs)
    }

    /// One Adam step on a minibatch. The forward/backward fans out over
    /// fixed row chunks of [`GRAD_CHUNK`]; chunk gradients are reduced
    /// **in chunk order** into one full-batch gradient before a single
    /// `adam_step` per layer, so the update is bit-identical at any
    /// thread count (weights are frozen while chunks run — backprop only
    /// reads them).
    fn train_batch(&mut self, pool: &ThreadPool, x: &Matrix, y: &[f32]) -> f64 {
        let n = x.rows();
        let parts = if n <= GRAD_CHUNK {
            vec![self.chunk_gradients(x, y, 0, n, n)]
        } else {
            let this = &*self;
            let ranges: Vec<(usize, usize)> = (0..n)
                .step_by(GRAD_CHUNK)
                .map(|start| (start, GRAD_CHUNK.min(n - start)))
                .collect();
            pool.scoped(
                ranges
                    .into_iter()
                    .map(|(start, len)| move || this.chunk_gradients(x, y, start, len, n))
                    .collect(),
            )
        };

        let mut loss = 0.0f64;
        let mut dws: Vec<Matrix> = self
            .layers
            .iter()
            .map(|l| Matrix::zeros(l.w.rows(), l.w.cols()))
            .collect();
        let mut dbs: Vec<Vec<f32>> = self
            .layers
            .iter()
            .map(|l| vec![0.0f32; l.b.len()])
            .collect();
        for (chunk_loss, chunk_dws, chunk_dbs) in parts {
            loss += chunk_loss;
            for (acc, d) in dws.iter_mut().zip(&chunk_dws) {
                for (a, &g) in acc.data_mut().iter_mut().zip(d.data()) {
                    *a += g;
                }
            }
            for (acc, d) in dbs.iter_mut().zip(&chunk_dbs) {
                for (a, &g) in acc.iter_mut().zip(d) {
                    *a += g;
                }
            }
        }
        loss /= n as f64;

        self.adam_t += 1;
        let t = self.adam_t;
        let lr = self.config.learning_rate;
        for (layer, (dw, db)) in self.layers.iter_mut().zip(dws.iter().zip(&dbs)) {
            layer.adam_step(dw, db, lr, t);
        }
        loss
    }
}

impl Mlp {
    /// The optimization loop shared by [`Regressor::fit`] (check = false,
    /// infallible) and [`Regressor::try_fit`] (check = true: every
    /// mini-batch loss is verified finite; Adam divergence aborts).
    fn fit_impl(
        &mut self,
        x: &Matrix,
        y: &[f32],
        check: bool,
    ) -> Result<(), crate::train::TrainError> {
        self.build(x.cols());
        let n = x.rows();
        let bs = self.config.batch_size.clamp(1, n);
        // Resolve the pool once: worker threads do not inherit the
        // caller's thread-local override, so every minibatch below must
        // use this handle rather than re-resolving `current()`.
        let pool = qfe_core::parallel::current();
        for epoch in 0..self.config.epochs {
            let order = shuffled_indices(
                n,
                self.config.seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9),
            );
            for chunk in order.chunks(bs) {
                let bx = x.gather_rows(chunk);
                let by: Vec<f32> = chunk.iter().map(|&i| y[i]).collect();
                let loss = self.train_batch(&pool, &bx, &by);
                if check && !loss.is_finite() {
                    return Err(crate::train::TrainError::NonFiniteLoss { round: epoch });
                }
            }
        }
        // Compile the finished weights for inference (training reads the
        // reference layers, so this happens exactly once per fit).
        self.compiled = Some(CompiledMlp::compile(&self.layers));
        Ok(())
    }
}

impl Mlp {
    /// Encode the trained network into the `QFENN001` payload (everything
    /// after the magic + checksum frame; see [`crate::serialize`]).
    /// Returns an empty payload for an untrained network (no layers).
    pub(crate) fn encode(&self) -> Vec<u8> {
        if self.layers.is_empty() {
            return Vec::new();
        }
        // Exact payload size: 32-byte header, then per layer 8 bytes of
        // shape plus 4 bytes per weight and bias.
        let payload = 32
            + self
                .layers
                .iter()
                .map(|l| 8 + (l.w.rows() * l.w.cols() + l.b.len()) * 4)
                .sum::<usize>();
        let mut out = Vec::with_capacity(payload);
        out.extend_from_slice(&(self.input_dim as u32).to_le_bytes());
        out.extend_from_slice(&self.config.learning_rate.to_le_bytes());
        out.extend_from_slice(&self.config.seed.to_le_bytes());
        out.extend_from_slice(&(self.config.epochs as u32).to_le_bytes());
        out.extend_from_slice(&(self.config.batch_size as u32).to_le_bytes());
        out.extend_from_slice(&(self.adam_t as u32).to_le_bytes());
        out.extend_from_slice(&(self.layers.len() as u32).to_le_bytes());
        for layer in &self.layers {
            out.extend_from_slice(&(layer.w.rows() as u32).to_le_bytes());
            out.extend_from_slice(&(layer.w.cols() as u32).to_le_bytes());
            for &w in layer.w.data() {
                out.extend_from_slice(&w.to_le_bytes());
            }
            for &b in &layer.b {
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
        debug_assert_eq!(out.len(), payload, "encode capacity estimate drifted");
        out
    }

    /// Decode a network from the `QFENN001` payload (the caller —
    /// [`crate::serialize::mlp_from_bytes`] — has already verified the
    /// magic and checksum). The returned model predicts identically to
    /// the encoded one; Adam moments are training-only state and start
    /// zeroed, so refitting restarts the optimizer fresh.
    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, crate::serialize::DecodeError> {
        use crate::serialize::{DecodeError, Reader};
        let mut r = Reader::new(bytes);
        let input_dim = r.u32()? as usize;
        let learning_rate = r.f32()?;
        if !learning_rate.is_finite() {
            return Err(DecodeError::Corrupt("non-finite learning rate"));
        }
        let seed = r.u64()?;
        let epochs = r.u32()? as usize;
        let batch_size = r.u32()? as usize;
        let adam_t = r.u32()?;
        if adam_t > i32::MAX as u32 {
            return Err(DecodeError::Corrupt("implausible Adam step count"));
        }
        let n_layers = r.u32()? as usize;
        // A trained network is hidden layers + the width-1 output layer.
        if !(2..=1024).contains(&n_layers) {
            return Err(DecodeError::Corrupt("implausible layer count"));
        }
        let mut layers = Vec::with_capacity(n_layers);
        let mut expect_in = input_dim;
        for l in 0..n_layers {
            let rows = r.u32()? as usize;
            let cols = r.u32()? as usize;
            if rows == 0 || cols == 0 || rows.saturating_mul(cols) > 100_000_000 {
                return Err(DecodeError::Corrupt("implausible layer shape"));
            }
            if rows != expect_in {
                return Err(DecodeError::Corrupt("layer shapes do not chain"));
            }
            let mut w = Matrix::zeros(rows, cols);
            for v in w.data_mut() {
                let x = r.f32()?;
                if !x.is_finite() {
                    return Err(DecodeError::Corrupt("non-finite weight"));
                }
                *v = x;
            }
            let mut b = vec![0.0f32; cols];
            for v in &mut b {
                let x = r.f32()?;
                if !x.is_finite() {
                    return Err(DecodeError::Corrupt("non-finite bias"));
                }
                *v = x;
            }
            let is_last = l + 1 == n_layers;
            if is_last && cols != 1 {
                return Err(DecodeError::Corrupt("output layer width must be 1"));
            }
            expect_in = cols;
            layers.push(Linear {
                w,
                b,
                mw: Matrix::zeros(rows, cols),
                vw: Matrix::zeros(rows, cols),
                mb: vec![0.0; cols],
                vb: vec![0.0; cols],
            });
        }
        if !r.finished() {
            return Err(DecodeError::Corrupt("trailing bytes"));
        }
        let hidden: Vec<usize> = layers[..n_layers - 1].iter().map(|l| l.w.cols()).collect();
        // Recompile the inference form from the decoded weights — a warm
        // restart serves compiled predictions with no snapshot change.
        let compiled = Some(CompiledMlp::compile(&layers));
        Ok(Mlp {
            config: MlpConfig {
                hidden,
                epochs,
                batch_size,
                learning_rate,
                seed,
            },
            layers,
            input_dim,
            adam_t: adam_t as i32,
            compiled,
        })
    }
}

impl Mlp {
    /// The reference forward pass: layer-by-layer `x·W + b` through the
    /// untransposed weights, the arithmetic the network trained with.
    /// Kept as the tolerance baseline for the compiled kernels.
    ///
    /// Forwarding runs through two thread-local ping-pong matrices
    /// (`matmul_into`), so — unlike the historical `x.clone()` per call
    /// plus one fresh matrix per layer — the steady state allocates only
    /// the output vector.
    ///
    /// # Panics
    /// Panics if the model is untrained or `x` has the wrong width (same
    /// contract as [`Regressor::predict_batch`]).
    pub fn predict_batch_reference(&self, x: &Matrix) -> Vec<f32> {
        use std::cell::RefCell;
        assert!(
            !self.layers.is_empty(),
            "predict called before fit — the MLP has no weights yet"
        );
        if x.rows() == 0 {
            return Vec::new();
        }
        assert_eq!(
            x.cols(),
            self.input_dim,
            "input dimension {} does not match trained dimension {}",
            x.cols(),
            self.input_dim
        );
        thread_local! {
            static PING_PONG: RefCell<(Matrix, Matrix)> =
                RefCell::new((Matrix::empty(0), Matrix::empty(0)));
        }
        PING_PONG.with(|slot| {
            let mut bufs = slot.borrow_mut();
            let (a, b) = &mut *bufs;
            let mut src: &Matrix = x;
            for (i, layer) in self.layers.iter().enumerate() {
                layer.forward_into(src, b);
                if i + 1 < self.layers.len() {
                    relu(b);
                }
                std::mem::swap(a, b);
                src = &*a;
            }
            (0..src.rows()).map(|r| src.get(r, 0)).collect()
        })
    }
}

impl Regressor for Mlp {
    fn fit(&mut self, x: &Matrix, y: &[f32]) {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        assert!(x.rows() > 0, "cannot fit on zero samples");
        let _ = self.fit_impl(x, y, false); // check = false: cannot fail
    }

    fn try_fit(&mut self, x: &Matrix, y: &[f32]) -> Result<(), crate::train::TrainError> {
        crate::train::validate_training_set(x, y)?;
        // Train a candidate so divergence cannot leave `self` with
        // NaN-poisoned weights.
        let mut candidate = self.clone();
        candidate.fit_impl(x, y, true)?;
        *self = candidate;
        Ok(())
    }

    fn predict_batch(&self, x: &Matrix) -> Vec<f32> {
        assert!(
            !self.layers.is_empty(),
            "predict called before fit — the MLP has no weights yet"
        );
        // Empty-batch contract: 0 rows → 0 predictions, before the width
        // check (a `0×0` from `Matrix::from_rows(&[])` has no width).
        if x.rows() == 0 {
            return Vec::new();
        }
        assert_eq!(
            x.cols(),
            self.input_dim,
            "input dimension {} does not match trained dimension {}",
            x.cols(),
            self.input_dim
        );
        if let Some(compiled) = &self.compiled {
            use std::cell::RefCell;
            thread_local! {
                static SCRATCH: RefCell<MlpScratch> = RefCell::new(MlpScratch::new());
            }
            return SCRATCH.with(|slot| {
                let mut scratch = slot.borrow_mut();
                (0..x.rows())
                    .map(|r| compiled.forward_row(x.row(r), &mut scratch))
                    .collect()
            });
        }
        self.predict_batch_reference(x)
    }

    fn memory_bytes(&self) -> usize {
        // Reference weights (training + serialization) plus the
        // transposed inference copies.
        self.layers.iter().map(Linear::memory_bytes).sum::<usize>()
            + self.compiled.as_ref().map_or(0, CompiledMlp::memory_bytes)
    }

    fn model_name(&self) -> &'static str {
        "NN"
    }

    fn to_bytes(&self) -> Option<Vec<u8>> {
        if self.layers.is_empty() {
            return None; // untrained: nothing durable to persist
        }
        Some(crate::serialize::mlp_to_bytes(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_problem(n: usize) -> (Matrix, Vec<f32>) {
        // y = 0.3 x0 + 0.6 x1 with x uniform in [0, 1].
        let mut rng = StdRng::seed_from_u64(9);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f32 = rng.gen();
            let b: f32 = rng.gen();
            rows.push(vec![a, b]);
            y.push(0.3 * a + 0.6 * b);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_linear_function() {
        let (x, y) = toy_problem(512);
        let mut mlp = Mlp::new(MlpConfig {
            hidden: vec![16],
            epochs: 120,
            batch_size: 32,
            learning_rate: 5e-3,
            seed: 1,
        });
        mlp.fit(&x, &y);
        let pred = mlp.predict_batch(&x);
        let err = crate::train::mse(&pred, &y);
        assert!(err < 1e-3, "mse {err}");
    }

    #[test]
    fn learns_nonlinear_function() {
        // y = max(x0 - 0.5, 0), requires the ReLU nonlinearity.
        let mut rng = StdRng::seed_from_u64(3);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..1024 {
            let a: f32 = rng.gen();
            rows.push(vec![a]);
            y.push((a - 0.5).max(0.0));
        }
        let x = Matrix::from_rows(&rows);
        let mut mlp = Mlp::new(MlpConfig {
            hidden: vec![16, 16],
            epochs: 150,
            batch_size: 64,
            learning_rate: 5e-3,
            seed: 2,
        });
        mlp.fit(&x, &y);
        let err = crate::train::mse(&mlp.predict_batch(&x), &y);
        assert!(err < 5e-4, "mse {err}");
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = toy_problem(128);
        let cfg = MlpConfig {
            hidden: vec![8],
            epochs: 10,
            batch_size: 32,
            learning_rate: 1e-3,
            seed: 7,
        };
        let mut a = Mlp::new(cfg.clone());
        let mut b = Mlp::new(cfg);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_batch(&x), b.predict_batch(&x));
    }

    #[test]
    fn single_sample_prediction_matches_batch() {
        let (x, y) = toy_problem(64);
        let mut mlp = Mlp::new(MlpConfig {
            hidden: vec![8],
            epochs: 5,
            ..MlpConfig::default()
        });
        mlp.fit(&x, &y);
        let batch = mlp.predict_batch(&x);
        let single = mlp.predict(x.row(3));
        assert!((batch[3] - single).abs() < 1e-6);
    }

    #[test]
    fn memory_grows_with_architecture() {
        let (x, y) = toy_problem(32);
        let mut small = Mlp::new(MlpConfig {
            hidden: vec![4],
            epochs: 1,
            ..MlpConfig::default()
        });
        let mut big = Mlp::new(MlpConfig {
            hidden: vec![64, 64],
            epochs: 1,
            ..MlpConfig::default()
        });
        small.fit(&x, &y);
        big.fit(&x, &y);
        assert!(big.memory_bytes() > small.memory_bytes() * 10);
        assert_eq!(small.model_name(), "NN");
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let mlp = Mlp::new(MlpConfig::default());
        let _ = mlp.predict_batch(&Matrix::zeros(1, 2));
    }

    #[test]
    fn try_fit_aborts_on_divergence_without_poisoning_state() {
        // f32::MAX labels overflow the MSE gradient to ∞; Adam turns that
        // into NaN weights, so a later batch's loss goes non-finite.
        let x = Matrix::from_rows(&(0..8).map(|i| vec![i as f32]).collect::<Vec<_>>());
        let y = vec![f32::MAX; 8];
        let mut mlp = Mlp::new(MlpConfig {
            hidden: vec![4],
            epochs: 4,
            batch_size: 4,
            learning_rate: 1.0,
            seed: 1,
        });
        let err = mlp.try_fit(&x, &y).unwrap_err();
        assert!(
            matches!(err, crate::train::TrainError::NonFiniteLoss { .. }),
            "{err:?}"
        );
        // The model must be untouched — still untrained (no layers).
        assert_eq!(mlp.memory_bytes(), 0);
    }

    #[test]
    fn try_fit_matches_fit_on_clean_data() {
        let (x, y) = toy_problem(64);
        let cfg = MlpConfig {
            hidden: vec![8],
            epochs: 5,
            ..MlpConfig::default()
        };
        let mut a = Mlp::new(cfg.clone());
        let mut b = Mlp::new(cfg);
        a.fit(&x, &y);
        b.try_fit(&x, &y).unwrap();
        assert_eq!(a.predict_batch(&x), b.predict_batch(&x));
    }

    #[test]
    #[should_panic(expected = "does not match trained dimension")]
    fn wrong_input_dim_panics() {
        let (x, y) = toy_problem(32);
        let mut mlp = Mlp::new(MlpConfig {
            epochs: 1,
            ..MlpConfig::default()
        });
        mlp.fit(&x, &y);
        let _ = mlp.predict_batch(&Matrix::zeros(1, 5));
    }
}
