//! Linear regression baseline.
//!
//! Section 2.2 of the paper: "we also tested simpler models, like linear
//! regression and support vector regression. However, … their estimates are
//! worse by a significant factor." Kept here so that claim is reproducible.
//!
//! Implemented as a single linear layer trained with Adam (equivalent to
//! ridge-free least squares in the limit, robust to ill-conditioned
//! feature matrices without a dense solver).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::matrix::Matrix;
use crate::mlp::Linear;
use crate::train::{shuffled_indices, Regressor};

/// Linear regression via mini-batch Adam.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    epochs: usize,
    batch_size: usize,
    learning_rate: f32,
    seed: u64,
    layer: Option<Linear>,
    input_dim: usize,
    adam_t: i32,
}

impl LinearRegression {
    /// Create with sensible defaults (60 epochs, batch 128, lr 1e-2).
    pub fn new(seed: u64) -> Self {
        LinearRegression {
            epochs: 60,
            batch_size: 128,
            learning_rate: 1e-2,
            seed,
            layer: None,
            input_dim: 0,
            adam_t: 0,
        }
    }

    /// Override the number of epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }
}

impl Regressor for LinearRegression {
    fn fit(&mut self, x: &Matrix, y: &[f32]) {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        assert!(x.rows() > 0, "cannot fit on zero samples");
        self.input_dim = x.cols();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut layer = Linear::new(x.cols(), 1, &mut rng);
        self.adam_t = 0;
        let n = x.rows();
        let bs = self.batch_size.clamp(1, n);
        for epoch in 0..self.epochs {
            let order = shuffled_indices(n, self.seed ^ (epoch as u64).wrapping_mul(0x517C_C1B7));
            for chunk in order.chunks(bs) {
                let bx = x.gather_rows(chunk);
                let out = layer.forward(&bx);
                let m = chunk.len();
                let mut grad = Matrix::zeros(m, 1);
                for (i, &src) in chunk.iter().enumerate() {
                    grad.set(i, 0, 2.0 * (out.get(i, 0) - y[src]) / m as f32);
                }
                let dw = bx.transpose_a_matmul(&grad);
                let db: f32 = (0..m).map(|i| grad.get(i, 0)).sum();
                self.adam_t += 1;
                layer.adam_step(&dw, &[db], self.learning_rate, self.adam_t);
            }
        }
        self.layer = Some(layer);
    }

    fn predict_batch(&self, x: &Matrix) -> Vec<f32> {
        let Some(layer) = self.layer.as_ref() else {
            // Untrained: emit NaN so `try_predict_batch` surfaces a typed
            // `NonFinitePrediction` instead of the library panicking.
            return vec![f32::NAN; x.rows()];
        };
        // Empty-batch contract: 0 rows → 0 predictions, before the width
        // check (a `0×0` from `Matrix::from_rows(&[])` has no width).
        if x.rows() == 0 {
            return Vec::new();
        }
        assert_eq!(x.cols(), self.input_dim, "input dimension mismatch");
        let out = layer.forward(x);
        (0..out.rows()).map(|r| out.get(r, 0)).collect()
    }

    fn memory_bytes(&self) -> usize {
        self.layer.as_ref().map_or(0, Linear::memory_bytes)
    }

    fn model_name(&self) -> &'static str {
        "linreg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn recovers_linear_coefficients() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..500 {
            let a: f32 = rng.gen();
            let b: f32 = rng.gen();
            rows.push(vec![a, b]);
            y.push(2.0 * a - 1.0 * b + 0.5);
        }
        let x = Matrix::from_rows(&rows);
        let mut lr = LinearRegression::new(0).with_epochs(200);
        lr.fit(&x, &y);
        let err = crate::train::mse(&lr.predict_batch(&x), &y);
        assert!(err < 1e-3, "mse {err}");
    }

    #[test]
    fn cannot_fit_nonlinearity() {
        // y = x0 XOR-ish interaction: linear model must underfit — this is
        // exactly why the paper excluded it.
        let mut rng = StdRng::seed_from_u64(3);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..500 {
            let a = f32::from(rng.gen::<bool>());
            let b = f32::from(rng.gen::<bool>());
            rows.push(vec![a, b]);
            y.push(if (a > 0.5) ^ (b > 0.5) { 1.0 } else { 0.0 });
        }
        let x = Matrix::from_rows(&rows);
        let mut lr = LinearRegression::new(0).with_epochs(200);
        lr.fit(&x, &y);
        let err = crate::train::mse(&lr.predict_batch(&x), &y);
        assert!(err > 0.2, "linear model should not fit XOR, mse {err}");
    }

    #[test]
    fn deterministic() {
        let x = Matrix::from_rows(&(0..64).map(|i| vec![i as f32 / 64.0]).collect::<Vec<_>>());
        let y: Vec<f32> = (0..64).map(|i| i as f32 / 32.0).collect();
        let mut a = LinearRegression::new(9);
        let mut b = LinearRegression::new(9);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_batch(&x), b.predict_batch(&x));
        assert_eq!(a.model_name(), "linreg");
        assert!(a.memory_bytes() > 0);
    }

    #[test]
    fn predict_before_fit_is_a_typed_error_not_a_panic() {
        let lr = LinearRegression::new(0);
        // The raw path signals "untrained" with NaN...
        assert!(lr.predict_batch(&Matrix::zeros(1, 1))[0].is_nan());
        // ...which the checked path converts into a typed error.
        let err = lr.try_predict_batch(&Matrix::zeros(1, 1)).unwrap_err();
        assert!(
            matches!(
                err,
                crate::train::TrainError::NonFinitePrediction { index: 0 }
            ),
            "{err:?}"
        );
    }
}
