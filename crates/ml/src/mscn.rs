//! Multi-Set Convolutional Network — the paper's global model (Kipf et al.
//! \[12\], Section 2.2.1 / 4.2).
//!
//! Architecture: one two-layer ReLU MLP per vector set (tables, joins,
//! predicates), applied per set element and followed by **average pooling**
//! over the set (the "set convolution"); the three pooled vectors are
//! concatenated and fed through a two-layer output MLP producing the
//! scalar estimate. Empty sets pool to the zero vector.
//!
//! The predicate set can carry either the original per-predicate vectors
//! or the paper's per-attribute QFT vectors
//! ([`qfe_core::featurize::mscn::PredicateMode`]) — the model is agnostic,
//! which is exactly the plug-in property Section 4.2 demonstrates.

use qfe_core::featurize::mscn::MscnSets;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::matrix::Matrix;
use crate::mlp::{relu, relu_backward, Linear};
use crate::train::shuffled_indices;

/// MSCN hyperparameters.
#[derive(Debug, Clone)]
pub struct MscnConfig {
    /// Hidden width of all set modules and the output module.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size (gradients are accumulated over the batch before
    /// each Adam step).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MscnConfig {
    fn default() -> Self {
        MscnConfig {
            hidden: 32,
            epochs: 40,
            batch_size: 64,
            learning_rate: 1e-3,
            seed: 0,
        }
    }
}

/// A two-layer ReLU module applied per set element.
#[derive(Debug, Clone)]
struct SetModule {
    l1: Linear,
    l2: Linear,
}

/// Cached forward state of one set for backprop.
struct SetCache {
    input: Matrix,
    z1: Matrix,
    a1: Matrix,
    z2: Matrix,
    a2: Matrix,
}

impl SetModule {
    fn new(input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        SetModule {
            l1: Linear::new(input_dim, hidden, rng),
            l2: Linear::new(hidden, hidden, rng),
        }
    }

    /// Forward one set; returns the pooled vector and the cache. Empty
    /// sets return zeros and no cache.
    fn forward(&self, elements: &[Vec<f32>], hidden: usize) -> (Vec<f32>, Option<SetCache>) {
        if elements.is_empty() {
            return (vec![0.0; hidden], None);
        }
        let input = Matrix::from_rows(elements);
        let z1 = self.l1.forward(&input);
        let mut a1 = z1.clone();
        relu(&mut a1);
        let z2 = self.l2.forward(&a1);
        let mut a2 = z2.clone();
        relu(&mut a2);
        let k = elements.len() as f32;
        let mut pooled = vec![0.0f32; hidden];
        for r in 0..a2.rows() {
            for (p, &v) in pooled.iter_mut().zip(a2.row(r)) {
                *p += v / k;
            }
        }
        (
            pooled,
            Some(SetCache {
                input,
                z1,
                a1,
                z2,
                a2,
            }),
        )
    }

    /// Backprop `d_pooled` through the pooling and both layers,
    /// accumulating parameter gradients into `(dw1, db1, dw2, db2)`.
    #[allow(clippy::too_many_arguments)]
    fn backward(
        &self,
        cache: &SetCache,
        d_pooled: &[f32],
        dw1: &mut Matrix,
        db1: &mut [f32],
        dw2: &mut Matrix,
        db2: &mut [f32],
    ) {
        let k = cache.a2.rows();
        // Mean pooling distributes the gradient equally.
        let mut dz2 = Matrix::zeros(k, d_pooled.len());
        for r in 0..k {
            for (g, &dp) in dz2.row_mut(r).iter_mut().zip(d_pooled) {
                *g = dp / k as f32;
            }
        }
        relu_backward(&mut dz2, &cache.z2);
        let g_w2 = cache.a1.transpose_a_matmul(&dz2);
        for (acc, g) in dw2.data_mut().iter_mut().zip(g_w2.data()) {
            *acc += g;
        }
        for r in 0..k {
            for (acc, &g) in db2.iter_mut().zip(dz2.row(r)) {
                *acc += g;
            }
        }
        let mut dz1 = dz2.matmul_transpose_b(&self.l2.w);
        relu_backward(&mut dz1, &cache.z1);
        let g_w1 = cache.input.transpose_a_matmul(&dz1);
        for (acc, g) in dw1.data_mut().iter_mut().zip(g_w1.data()) {
            *acc += g;
        }
        for r in 0..k {
            for (acc, &g) in db1.iter_mut().zip(dz1.row(r)) {
                *acc += g;
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        self.l1.memory_bytes() + self.l2.memory_bytes()
    }
}

/// Per-module gradient accumulators.
struct Grads {
    dw1: Matrix,
    db1: Vec<f32>,
    dw2: Matrix,
    db2: Vec<f32>,
}

impl Grads {
    fn zeros_like(m: &SetModule) -> Self {
        Grads {
            dw1: Matrix::zeros(m.l1.w.rows(), m.l1.w.cols()),
            db1: vec![0.0; m.l1.b.len()],
            dw2: Matrix::zeros(m.l2.w.rows(), m.l2.w.cols()),
            db2: vec![0.0; m.l2.b.len()],
        }
    }
}

/// The MSCN model.
pub struct Mscn {
    config: MscnConfig,
    table_module: SetModule,
    join_module: SetModule,
    pred_module: SetModule,
    out: SetModule, // reused as a generic two-layer head: hidden → 1
    adam_t: i32,
}

impl Mscn {
    /// Create an MSCN for the given set-vector dimensions.
    pub fn new(config: MscnConfig, table_dim: usize, join_dim: usize, pred_dim: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let h = config.hidden;
        let table_module = SetModule::new(table_dim, h, &mut rng);
        let join_module = SetModule::new(join_dim, h, &mut rng);
        let pred_module = SetModule::new(pred_dim, h, &mut rng);
        let out = SetModule {
            l1: Linear::new(3 * h, h, &mut rng),
            l2: Linear::new(h, 1, &mut rng),
        };
        Mscn {
            config,
            table_module,
            join_module,
            pred_module,
            out,
            adam_t: 0,
        }
    }

    /// Forward pass for one query.
    pub fn predict(&self, sample: &MscnSets) -> f32 {
        let h = self.config.hidden;
        let (pt, _) = self.table_module.forward(&sample.tables, h);
        let (pj, _) = self.join_module.forward(&sample.joins, h);
        let (pp, _) = self.pred_module.forward(&sample.predicates, h);
        let mut concat = pt;
        concat.extend(pj);
        concat.extend(pp);
        let input = Matrix::from_rows(&[concat]);
        let z1 = self.out.l1.forward(&input);
        let mut a1 = z1.clone();
        relu(&mut a1);
        self.out.l2.forward(&a1).get(0, 0)
    }

    /// Forward pass for many queries.
    pub fn predict_batch(&self, samples: &[MscnSets]) -> Vec<f32> {
        samples.iter().map(|s| self.predict(s)).collect()
    }

    /// Train on `(sets, target)` pairs; targets are scaled
    /// log-cardinalities.
    ///
    /// # Panics
    /// Panics if lengths differ or no samples are given.
    pub fn fit(&mut self, samples: &[MscnSets], y: &[f32]) {
        assert_eq!(samples.len(), y.len(), "sample/label count mismatch");
        assert!(!samples.is_empty(), "cannot fit on zero samples");
        let n = samples.len();
        let bs = self.config.batch_size.clamp(1, n);
        for epoch in 0..self.config.epochs {
            let order = shuffled_indices(
                n,
                self.config.seed ^ (epoch as u64).wrapping_mul(0xC0FF_EE11),
            );
            for chunk in order.chunks(bs) {
                self.train_minibatch(samples, y, chunk);
            }
        }
    }

    fn train_minibatch(&mut self, samples: &[MscnSets], y: &[f32], chunk: &[usize]) {
        let h = self.config.hidden;
        let m = chunk.len() as f32;
        let mut g_table = Grads::zeros_like(&self.table_module);
        let mut g_join = Grads::zeros_like(&self.join_module);
        let mut g_pred = Grads::zeros_like(&self.pred_module);
        let mut g_out = Grads::zeros_like(&self.out);

        for &idx in chunk {
            let sample = &samples[idx];
            let (pt, ct) = self.table_module.forward(&sample.tables, h);
            let (pj, cj) = self.join_module.forward(&sample.joins, h);
            let (pp, cp) = self.pred_module.forward(&sample.predicates, h);
            let mut concat = pt;
            concat.extend(pj);
            concat.extend(pp);
            let input = Matrix::from_rows(&[concat]);
            let z1 = self.out.l1.forward(&input);
            let mut a1 = z1.clone();
            relu(&mut a1);
            let out = self.out.l2.forward(&a1).get(0, 0);

            // MSE gradient, averaged over the minibatch.
            let d_out = 2.0 * (out - y[idx]) / m;

            // Output head backward.
            let dz2 = Matrix::from_vec(1, 1, vec![d_out]);
            let gw2 = a1.transpose_a_matmul(&dz2);
            for (acc, g) in g_out.dw2.data_mut().iter_mut().zip(gw2.data()) {
                *acc += g;
            }
            g_out.db2[0] += d_out;
            let mut dz1 = dz2.matmul_transpose_b(&self.out.l2.w);
            relu_backward(&mut dz1, &z1);
            let gw1 = input.transpose_a_matmul(&dz1);
            for (acc, g) in g_out.dw1.data_mut().iter_mut().zip(gw1.data()) {
                *acc += g;
            }
            for (acc, &g) in g_out.db1.iter_mut().zip(dz1.row(0)) {
                *acc += g;
            }

            // Gradient w.r.t. the concatenated pooled vector.
            let d_concat = dz1.matmul_transpose_b(&self.out.l1.w);
            let d = d_concat.row(0);
            if let Some(c) = &ct {
                self.table_module.backward(
                    c,
                    &d[0..h],
                    &mut g_table.dw1,
                    &mut g_table.db1,
                    &mut g_table.dw2,
                    &mut g_table.db2,
                );
            }
            if let Some(c) = &cj {
                self.join_module.backward(
                    c,
                    &d[h..2 * h],
                    &mut g_join.dw1,
                    &mut g_join.db1,
                    &mut g_join.dw2,
                    &mut g_join.db2,
                );
            }
            if let Some(c) = &cp {
                self.pred_module.backward(
                    c,
                    &d[2 * h..3 * h],
                    &mut g_pred.dw1,
                    &mut g_pred.db1,
                    &mut g_pred.dw2,
                    &mut g_pred.db2,
                );
            }
        }

        self.adam_t += 1;
        let (t, lr) = (self.adam_t, self.config.learning_rate);
        self.table_module
            .l1
            .adam_step(&g_table.dw1, &g_table.db1, lr, t);
        self.table_module
            .l2
            .adam_step(&g_table.dw2, &g_table.db2, lr, t);
        self.join_module
            .l1
            .adam_step(&g_join.dw1, &g_join.db1, lr, t);
        self.join_module
            .l2
            .adam_step(&g_join.dw2, &g_join.db2, lr, t);
        self.pred_module
            .l1
            .adam_step(&g_pred.dw1, &g_pred.db1, lr, t);
        self.pred_module
            .l2
            .adam_step(&g_pred.dw2, &g_pred.db2, lr, t);
        self.out.l1.adam_step(&g_out.dw1, &g_out.db1, lr, t);
        self.out.l2.adam_step(&g_out.dw2, &g_out.db2, lr, t);
    }

    /// Approximate parameter footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.table_module.memory_bytes()
            + self.join_module.memory_bytes()
            + self.pred_module.memory_bytes()
            + self.out.memory_bytes()
    }

    /// Model label for experiment output.
    pub fn model_name(&self) -> &'static str {
        "MSCN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Toy task: the target is the mean of the predicate-set literals plus
    /// 0.2 per joined table — learnable only through both set modules.
    fn toy_samples(n: usize, seed: u64) -> (Vec<MscnSets>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let n_tables = rng.gen_range(1..=3usize);
            let tables: Vec<Vec<f32>> = (0..n_tables)
                .map(|i| {
                    let mut v = vec![0.0f32; 3];
                    v[i] = 1.0;
                    v
                })
                .collect();
            let joins: Vec<Vec<f32>> = (0..n_tables.saturating_sub(1))
                .map(|i| {
                    let mut v = vec![0.0f32; 2];
                    v[i] = 1.0;
                    v
                })
                .collect();
            let n_preds = rng.gen_range(0..=3usize);
            let mut lit_sum = 0.0f32;
            let predicates: Vec<Vec<f32>> = (0..n_preds)
                .map(|_| {
                    let lit: f32 = rng.gen();
                    lit_sum += lit;
                    vec![1.0, lit]
                })
                .collect();
            let mean_lit = if n_preds > 0 {
                lit_sum / n_preds as f32
            } else {
                0.5
            };
            y.push(mean_lit + 0.2 * n_tables as f32);
            samples.push(MscnSets {
                tables,
                joins,
                predicates,
            });
        }
        (samples, y)
    }

    #[test]
    fn learns_set_dependent_function() {
        let (samples, y) = toy_samples(600, 1);
        let mut model = Mscn::new(
            MscnConfig {
                hidden: 16,
                epochs: 120,
                batch_size: 32,
                learning_rate: 3e-3,
                seed: 5,
            },
            3,
            2,
            2,
        );
        model.fit(&samples, &y);
        let pred = model.predict_batch(&samples);
        let err = crate::train::mse(&pred, &y);
        assert!(err < 5e-3, "mse {err}");
    }

    #[test]
    fn handles_empty_sets() {
        let sets = MscnSets {
            tables: vec![vec![1.0, 0.0, 0.0]],
            joins: vec![],
            predicates: vec![],
        };
        let model = Mscn::new(MscnConfig::default(), 3, 2, 2);
        let out = model.predict(&sets);
        assert!(out.is_finite());
    }

    #[test]
    fn set_order_invariance() {
        // Average pooling makes the model permutation invariant — a core
        // property of the set convolution.
        let a = MscnSets {
            tables: vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]],
            joins: vec![vec![1.0, 0.0]],
            predicates: vec![vec![1.0, 0.2], vec![1.0, 0.9]],
        };
        let b = MscnSets {
            tables: vec![vec![0.0, 1.0, 0.0], vec![1.0, 0.0, 0.0]],
            joins: vec![vec![1.0, 0.0]],
            predicates: vec![vec![1.0, 0.9], vec![1.0, 0.2]],
        };
        let model = Mscn::new(MscnConfig::default(), 3, 2, 2);
        let (pa, pb) = (model.predict(&a), model.predict(&b));
        assert!((pa - pb).abs() < 1e-6, "{pa} vs {pb}");
    }

    #[test]
    fn deterministic_training() {
        let (samples, y) = toy_samples(100, 2);
        let cfg = MscnConfig {
            hidden: 8,
            epochs: 5,
            batch_size: 16,
            learning_rate: 1e-3,
            seed: 3,
        };
        let mut a = Mscn::new(cfg.clone(), 3, 2, 2);
        let mut b = Mscn::new(cfg, 3, 2, 2);
        a.fit(&samples, &y);
        b.fit(&samples, &y);
        assert_eq!(a.predict_batch(&samples), b.predict_batch(&samples));
    }

    #[test]
    fn memory_reflects_architecture() {
        let small = Mscn::new(
            MscnConfig {
                hidden: 8,
                ..MscnConfig::default()
            },
            3,
            2,
            2,
        );
        let big = Mscn::new(
            MscnConfig {
                hidden: 64,
                ..MscnConfig::default()
            },
            3,
            2,
            2,
        );
        assert!(big.memory_bytes() > small.memory_bytes() * 4);
        assert_eq!(small.model_name(), "MSCN");
    }
}
