//! Label scaling: cardinalities span many orders of magnitude, so all
//! models regress on min-max-normalized `ln(1 + card)` and predictions are
//! transformed back and clamped to `>= 1` (the paper's evaluation protocol
//! guarantees estimates `>= 1`).

use std::sync::Arc;

use qfe_core::QfeError;
use qfe_obs::{NoopRecorder, Recorder};

/// Normalized log values are clamped into `[0, SATURATION_CEILING]`: some
/// headroom above the trained `[0, 1]` range lets a model see *that* a
/// label is beyond its calibration, but everything past the ceiling
/// aliases to one feature value.
const SATURATION_CEILING: f64 = 2.0;

/// Counter incremented whenever a transform clamps (see
/// [`LogScaler::with_recorder`]).
pub const SATURATION_METRIC: &str = "scaler.transform.saturated";

/// Fitted log + min-max transform of cardinality labels.
///
/// Transforms clamp into `[0, 2]`. Under workload drift, cardinalities
/// beyond ~2× the trained log-range therefore alias to one feature value —
/// previously invisible. [`LogScaler::transform_checked`] reports the
/// clamping per call, and a recorder attached via
/// [`LogScaler::with_recorder`] counts every saturated transform under
/// [`SATURATION_METRIC`], so drifted workloads show up in the metrics
/// snapshot instead of silently degrading estimates.
#[derive(Clone)]
pub struct LogScaler {
    log_min: f64,
    log_max: f64,
    recorder: Arc<dyn Recorder>,
}

impl std::fmt::Debug for LogScaler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogScaler")
            .field("log_min", &self.log_min)
            .field("log_max", &self.log_max)
            .finish_non_exhaustive()
    }
}

impl LogScaler {
    /// Fit on training cardinalities.
    ///
    /// # Errors
    /// [`QfeError::Training`] on an empty slice (nothing to calibrate
    /// against) or on non-finite labels (a NaN/∞ label would silently
    /// poison the normalization range and with it every later estimate).
    pub fn fit(cardinalities: &[f64]) -> Result<Self, QfeError> {
        if cardinalities.is_empty() {
            return Err(QfeError::Training("cannot fit scaler on no labels".into()));
        }
        let mut log_min = f64::INFINITY;
        let mut log_max = f64::NEG_INFINITY;
        for (i, &c) in cardinalities.iter().enumerate() {
            if !c.is_finite() {
                return Err(QfeError::Training(format!(
                    "non-finite cardinality label {c} at index {i}"
                )));
            }
            let l = (1.0 + c.max(0.0)).ln();
            log_min = log_min.min(l);
            log_max = log_max.max(l);
        }
        if log_max <= log_min {
            log_max = log_min + 1.0; // degenerate constant labels
        }
        Ok(LogScaler {
            log_min,
            log_max,
            recorder: Arc::new(NoopRecorder),
        })
    }

    /// Report saturated transforms to `recorder` under
    /// [`SATURATION_METRIC`]. The default recorder is a no-op.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// The fitted `(log_min, log_max)` calibration range, for
    /// serialization: together with [`LogScaler::from_parts`] this lets a
    /// checkpoint store persist and restore the exact transform without
    /// re-fitting on the original labels.
    pub fn to_parts(&self) -> (f64, f64) {
        (self.log_min, self.log_max)
    }

    /// Rebuild a scaler from a previously fitted `(log_min, log_max)`
    /// pair (see [`LogScaler::to_parts`]). The recorder starts as a
    /// no-op; reattach one via [`LogScaler::with_recorder`].
    ///
    /// # Errors
    /// [`QfeError::Training`] unless both parts are finite and
    /// `log_max > log_min` — the invariant `fit` establishes; anything
    /// else would divide by zero or poison every later estimate.
    pub fn from_parts(log_min: f64, log_max: f64) -> Result<Self, QfeError> {
        if !log_min.is_finite() || !log_max.is_finite() || log_max <= log_min {
            return Err(QfeError::Training(format!(
                "invalid scaler calibration range [{log_min}, {log_max}]"
            )));
        }
        Ok(LogScaler {
            log_min,
            log_max,
            recorder: Arc::new(NoopRecorder),
        })
    }

    /// Transform a cardinality into the normalized log space, reporting
    /// whether the value saturated (fell outside the `[0, 2]` clamp range,
    /// i.e. lies beyond the scaler's calibration).
    pub fn transform_checked(&self, cardinality: f64) -> (f32, bool) {
        let l = (1.0 + cardinality.max(0.0)).ln();
        let normalized = (l - self.log_min) / (self.log_max - self.log_min);
        let saturated = !(0.0..=SATURATION_CEILING).contains(&normalized);
        if saturated {
            self.recorder.incr(SATURATION_METRIC);
        }
        (normalized.clamp(0.0, SATURATION_CEILING) as f32, saturated)
    }

    /// Transform a cardinality into the normalized log space. Saturation
    /// is counted on the attached recorder but not returned; use
    /// [`transform_checked`](Self::transform_checked) to observe it per
    /// call.
    pub fn transform(&self, cardinality: f64) -> f32 {
        self.transform_checked(cardinality).0
    }

    /// Transform a batch.
    pub fn transform_batch(&self, cardinalities: &[f64]) -> Vec<f32> {
        cardinalities.iter().map(|&c| self.transform(c)).collect()
    }

    /// Inverse transform a model output into a cardinality estimate,
    /// clamped to `>= 1`.
    pub fn inverse(&self, y: f32) -> f64 {
        let l = y as f64 * (self.log_max - self.log_min) + self.log_min;
        // Guard against wildly out-of-range model outputs overflowing exp.
        (l.clamp(-50.0, 50.0).exp() - 1.0).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_obs::MetricsRecorder;

    #[test]
    fn round_trip_within_range() {
        let scaler = LogScaler::fit(&[1.0, 10.0, 100.0, 100_000.0]).unwrap();
        for &c in &[1.0, 5.0, 42.0, 9_999.0, 100_000.0] {
            let back = scaler.inverse(scaler.transform(c));
            let rel = (back - c).abs() / c;
            assert!(rel < 1e-3, "card {c} round-tripped to {back}");
        }
    }

    #[test]
    fn transform_is_monotone() {
        let scaler = LogScaler::fit(&[1.0, 1_000_000.0]).unwrap();
        let mut prev = f32::NEG_INFINITY;
        for &c in &[1.0, 2.0, 10.0, 500.0, 123_456.0] {
            let t = scaler.transform(c);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn training_range_maps_to_unit_interval() {
        let scaler = LogScaler::fit(&[3.0, 30_000.0]).unwrap();
        assert_eq!(scaler.transform(3.0), 0.0);
        assert_eq!(scaler.transform(30_000.0), 1.0);
    }

    #[test]
    fn inverse_clamps_to_one() {
        let scaler = LogScaler::fit(&[1.0, 100.0]).unwrap();
        assert_eq!(scaler.inverse(-5.0), 1.0);
    }

    #[test]
    fn extreme_outputs_do_not_overflow() {
        let scaler = LogScaler::fit(&[1.0, 100.0]).unwrap();
        assert!(scaler.inverse(1e9).is_finite());
    }

    #[test]
    fn constant_labels_do_not_divide_by_zero() {
        let scaler = LogScaler::fit(&[7.0, 7.0, 7.0]).unwrap();
        let t = scaler.transform(7.0);
        assert!(t.is_finite());
        let back = scaler.inverse(t);
        assert!((back - 7.0).abs() < 0.01, "got {back}");
    }

    #[test]
    fn batch_matches_scalar() {
        let scaler = LogScaler::fit(&[1.0, 1000.0]).unwrap();
        let batch = scaler.transform_batch(&[1.0, 10.0, 1000.0]);
        assert_eq!(batch[1], scaler.transform(10.0));
    }

    #[test]
    fn empty_labels_are_a_typed_error() {
        let err = LogScaler::fit(&[]).unwrap_err();
        assert!(matches!(err, QfeError::Training(_)), "{err:?}");
    }

    #[test]
    fn non_finite_labels_are_a_typed_error() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = LogScaler::fit(&[1.0, bad, 3.0]).unwrap_err();
            assert!(matches!(err, QfeError::Training(_)), "{bad}: {err:?}");
            assert!(err.to_string().contains("index 1"), "{err}");
        }
    }

    /// Regression for the silent clamp: a drift-workload cardinality far
    /// beyond the trained range must be reported as saturated, not
    /// silently aliased to the ceiling value.
    #[test]
    fn out_of_range_labels_saturate_visibly() {
        // Trained on [1, 100]: log range ~[0.69, 4.6]. A cardinality of
        // 1e9 maps to normalized ~4.9 -> saturates past the 2.0 ceiling.
        let scaler = LogScaler::fit(&[1.0, 100.0]).unwrap();
        let (t, saturated) = scaler.transform_checked(1e9);
        assert!(saturated);
        assert_eq!(t, 2.0);
        // Different drifted cardinalities alias to the same feature value
        // — exactly the information loss the saturation flag surfaces.
        assert_eq!(scaler.transform(1e9), scaler.transform(1e12));
        // In-range values do not saturate.
        let (t, saturated) = scaler.transform_checked(50.0);
        assert!(!saturated);
        assert!((0.0..=1.0).contains(&t));
    }

    #[test]
    fn saturation_is_counted_on_the_recorder() {
        let recorder = Arc::new(MetricsRecorder::new());
        let scaler = LogScaler::fit(&[1.0, 100.0])
            .unwrap()
            .with_recorder(recorder.clone());
        scaler.transform(50.0); // in range: no count
        scaler.transform(1e9); // saturates
        let _ = scaler.transform_batch(&[2.0, 1e10, 1e11]); // two more
        assert_eq!(recorder.counter(SATURATION_METRIC), 3);
    }

    #[test]
    fn values_between_one_and_two_x_range_do_not_saturate() {
        // The headroom band (normalized in (1, 2]) is in-calibration by
        // design: the model sees a distinct, unclamped feature value.
        let scaler = LogScaler::fit(&[1.0, 100.0]).unwrap();
        let (t, saturated) = scaler.transform_checked(5_000.0);
        assert!(!saturated, "t = {t}");
        assert!(t > 1.0 && t < 2.0);
    }

    #[test]
    fn debug_does_not_require_recorder_debug() {
        let scaler = LogScaler::fit(&[1.0, 100.0]).unwrap();
        let dbg = format!("{scaler:?}");
        assert!(dbg.contains("log_min"));
    }
}
