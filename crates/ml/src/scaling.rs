//! Label scaling: cardinalities span many orders of magnitude, so all
//! models regress on min-max-normalized `ln(1 + card)` and predictions are
//! transformed back and clamped to `>= 1` (the paper's evaluation protocol
//! guarantees estimates `>= 1`).

use qfe_core::QfeError;

/// Fitted log + min-max transform of cardinality labels.
#[derive(Debug, Clone)]
pub struct LogScaler {
    log_min: f64,
    log_max: f64,
}

impl LogScaler {
    /// Fit on training cardinalities.
    ///
    /// # Errors
    /// [`QfeError::Training`] on an empty slice (nothing to calibrate
    /// against) or on non-finite labels (a NaN/∞ label would silently
    /// poison the normalization range and with it every later estimate).
    pub fn fit(cardinalities: &[f64]) -> Result<Self, QfeError> {
        if cardinalities.is_empty() {
            return Err(QfeError::Training("cannot fit scaler on no labels".into()));
        }
        let mut log_min = f64::INFINITY;
        let mut log_max = f64::NEG_INFINITY;
        for (i, &c) in cardinalities.iter().enumerate() {
            if !c.is_finite() {
                return Err(QfeError::Training(format!(
                    "non-finite cardinality label {c} at index {i}"
                )));
            }
            let l = (1.0 + c.max(0.0)).ln();
            log_min = log_min.min(l);
            log_max = log_max.max(l);
        }
        if log_max <= log_min {
            log_max = log_min + 1.0; // degenerate constant labels
        }
        Ok(LogScaler { log_min, log_max })
    }

    /// Transform a cardinality into the normalized log space.
    pub fn transform(&self, cardinality: f64) -> f32 {
        let l = (1.0 + cardinality.max(0.0)).ln();
        (((l - self.log_min) / (self.log_max - self.log_min)).clamp(0.0, 2.0)) as f32
    }

    /// Transform a batch.
    pub fn transform_batch(&self, cardinalities: &[f64]) -> Vec<f32> {
        cardinalities.iter().map(|&c| self.transform(c)).collect()
    }

    /// Inverse transform a model output into a cardinality estimate,
    /// clamped to `>= 1`.
    pub fn inverse(&self, y: f32) -> f64 {
        let l = y as f64 * (self.log_max - self.log_min) + self.log_min;
        // Guard against wildly out-of-range model outputs overflowing exp.
        (l.clamp(-50.0, 50.0).exp() - 1.0).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_within_range() {
        let scaler = LogScaler::fit(&[1.0, 10.0, 100.0, 100_000.0]).unwrap();
        for &c in &[1.0, 5.0, 42.0, 9_999.0, 100_000.0] {
            let back = scaler.inverse(scaler.transform(c));
            let rel = (back - c).abs() / c;
            assert!(rel < 1e-3, "card {c} round-tripped to {back}");
        }
    }

    #[test]
    fn transform_is_monotone() {
        let scaler = LogScaler::fit(&[1.0, 1_000_000.0]).unwrap();
        let mut prev = f32::NEG_INFINITY;
        for &c in &[1.0, 2.0, 10.0, 500.0, 123_456.0] {
            let t = scaler.transform(c);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn training_range_maps_to_unit_interval() {
        let scaler = LogScaler::fit(&[3.0, 30_000.0]).unwrap();
        assert_eq!(scaler.transform(3.0), 0.0);
        assert_eq!(scaler.transform(30_000.0), 1.0);
    }

    #[test]
    fn inverse_clamps_to_one() {
        let scaler = LogScaler::fit(&[1.0, 100.0]).unwrap();
        assert_eq!(scaler.inverse(-5.0), 1.0);
    }

    #[test]
    fn extreme_outputs_do_not_overflow() {
        let scaler = LogScaler::fit(&[1.0, 100.0]).unwrap();
        assert!(scaler.inverse(1e9).is_finite());
    }

    #[test]
    fn constant_labels_do_not_divide_by_zero() {
        let scaler = LogScaler::fit(&[7.0, 7.0, 7.0]).unwrap();
        let t = scaler.transform(7.0);
        assert!(t.is_finite());
        let back = scaler.inverse(t);
        assert!((back - 7.0).abs() < 0.01, "got {back}");
    }

    #[test]
    fn batch_matches_scalar() {
        let scaler = LogScaler::fit(&[1.0, 1000.0]).unwrap();
        let batch = scaler.transform_batch(&[1.0, 10.0, 1000.0]);
        assert_eq!(batch[1], scaler.transform(10.0));
    }

    #[test]
    fn empty_labels_are_a_typed_error() {
        let err = LogScaler::fit(&[]).unwrap_err();
        assert!(matches!(err, QfeError::Training(_)), "{err:?}");
    }

    #[test]
    fn non_finite_labels_are_a_typed_error() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = LogScaler::fit(&[1.0, bad, 3.0]).unwrap_err();
            assert!(matches!(err, QfeError::Training(_)), "{bad}: {err:?}");
            assert!(err.to_string().contains("index 1"), "{err}");
        }
    }
}
