//! Compact binary serialization of trained GBDT models.
//!
//! A trained cardinality estimator must survive a process restart — the
//! paper's deployment story (Section 5.5.2) reconstructs models on data
//! drift but reuses them between drifts. The format is a small
//! little-endian layout with a magic header, explicit versioning, and an
//! FNV-1a content checksum; no external serialization crate is needed.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic     "QFEGB002"                   8 bytes
//! checksum  FNV-1a-64 of the payload     8
//! payload:
//!   base   f32                           4
//!   input_dim u32                        4
//!   learning_rate f32                    4
//!   n_trees u32                          4
//!   per tree: n_nodes u32, then per node:
//!     tag u8 (0 = leaf, 1 = split)
//!     leaf:  value f32
//!     split: feature u32, threshold f32, left u32, right u32
//! ```
//!
//! The checksum is verified **before** any structural parsing, so a
//! bit-flipped or truncated payload is rejected up front — every
//! single-bit corruption of a serialized model yields a typed
//! [`DecodeError`], never a mis-parsed model: a flip in the magic is
//! [`DecodeError::BadMagic`], a flip in the checksum or payload is
//! [`DecodeError::ChecksumMismatch`]. Structural validation (node tags,
//! child indices, finiteness of every `f32`) still runs afterwards to
//! catch hand-crafted or wrongly-assembled inputs whose checksum is
//! self-consistent.

use crate::gbdt::Gbdt;

/// Errors from decoding a serialized model.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong or truncated header.
    BadMagic,
    /// Input ended before the declared structure was complete.
    Truncated,
    /// The stored FNV-1a checksum does not match the payload — the bytes
    /// were corrupted (bit flip, partial write) after encoding.
    ChecksumMismatch,
    /// A structurally invalid entry (unknown node tag, out-of-range child,
    /// non-finite parameter).
    Corrupt(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a QFEGB002 model"),
            DecodeError::Truncated => write!(f, "model bytes truncated"),
            DecodeError::ChecksumMismatch => {
                write!(f, "model bytes corrupted (checksum mismatch)")
            }
            DecodeError::Corrupt(what) => write!(f, "corrupt model: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

pub(crate) const MAGIC: &[u8; 8] = b"QFEGB002";

/// FNV-1a 64-bit hash — tiny, dependency-free, and guaranteed to change
/// under any single-bit flip of the input (xor-then-multiply by an odd
/// prime is injective per step).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cursor helpers shared by the `gbdt` module's encode/decode impls.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn f32(&mut self) -> Result<f32, DecodeError> {
        let b = self.bytes(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Serialize a trained model; see the module docs for the layout.
pub fn gbdt_to_bytes(model: &Gbdt) -> Vec<u8> {
    let payload = model.encode();
    let mut out = Vec::with_capacity(MAGIC.len() + 8 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Deserialize a model previously produced by [`gbdt_to_bytes`].
///
/// # Errors
/// Any corruption of the byte stream — truncation at any offset, any
/// single-bit flip, trailing garbage — returns a typed [`DecodeError`];
/// this function never panics and never returns a silently-wrong model.
pub fn gbdt_from_bytes(bytes: &[u8]) -> Result<Gbdt, DecodeError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let frame = MAGIC.len() + 8;
    if bytes.len() < frame {
        return Err(DecodeError::Truncated);
    }
    let c = &bytes[MAGIC.len()..frame];
    let stored = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
    let payload = &bytes[frame..];
    if fnv1a64(payload) != stored {
        return Err(DecodeError::ChecksumMismatch);
    }
    Gbdt::decode(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbdt::GbdtConfig;
    use crate::matrix::Matrix;
    use crate::train::Regressor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained() -> (Gbdt, Matrix) {
        let mut rng = StdRng::seed_from_u64(8);
        let rows: Vec<Vec<f32>> = (0..400)
            .map(|_| vec![rng.gen::<f32>(), rng.gen::<f32>()])
            .collect();
        let y: Vec<f32> = rows.iter().map(|r| (r[0] * 3.0 + r[1]).sin()).collect();
        let x = Matrix::from_rows(&rows);
        let mut gb = Gbdt::new(GbdtConfig {
            n_trees: 25,
            min_samples_leaf: 3,
            ..GbdtConfig::default()
        });
        gb.fit(&x, &y);
        (gb, x)
    }

    /// Wrap a hand-crafted payload in a valid magic + checksum frame, so
    /// tests can exercise the structural validation behind the checksum.
    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (gb, x) = trained();
        let bytes = gbdt_to_bytes(&gb);
        let restored = gbdt_from_bytes(&bytes).unwrap();
        assert_eq!(gb.predict_batch(&x), restored.predict_batch(&x));
        assert_eq!(gb.tree_count(), restored.tree_count());
    }

    #[test]
    fn format_is_compact() {
        let (gb, _) = trained();
        let bytes = gbdt_to_bytes(&gb);
        // Roughly 13–17 bytes per node; far below the in-memory enum size.
        assert!(
            bytes.len() < gb.memory_bytes(),
            "{} encoded vs {} in memory",
            bytes.len(),
            gb.memory_bytes()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let (gb, _) = trained();
        let mut bytes = gbdt_to_bytes(&gb);
        bytes[0] = b'X';
        assert_eq!(gbdt_from_bytes(&bytes).unwrap_err(), DecodeError::BadMagic);
    }

    #[test]
    fn truncation_rejected() {
        let (gb, _) = trained();
        let bytes = gbdt_to_bytes(&gb);
        for cut in [4, 9, 15, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                gbdt_from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (gb, _) = trained();
        let mut bytes = gbdt_to_bytes(&gb);
        bytes.push(0);
        // The appended byte is part of the checksummed region, so the
        // mismatch is caught before parsing.
        assert_eq!(
            gbdt_from_bytes(&bytes).unwrap_err(),
            DecodeError::ChecksumMismatch
        );
    }

    #[test]
    fn payload_bit_flip_is_checksum_mismatch() {
        let (gb, _) = trained();
        let clean = gbdt_to_bytes(&gb);
        // One flip in the checksum field, one early and one late in the
        // payload; the exhaustive sweep lives in the corrupt_model
        // property tests.
        for pos in [8, 16, clean.len() - 1] {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x10;
            assert_eq!(
                gbdt_from_bytes(&bytes).unwrap_err(),
                DecodeError::ChecksumMismatch,
                "flip at byte {pos}"
            );
        }
    }

    #[test]
    fn corrupt_child_index_rejected() {
        // Hand-craft a model with a split pointing past the node table.
        let mut payload = Vec::new();
        payload.extend_from_slice(&0.0f32.to_le_bytes()); // base
        payload.extend_from_slice(&1u32.to_le_bytes()); // input_dim
        payload.extend_from_slice(&0.1f32.to_le_bytes()); // lr
        payload.extend_from_slice(&1u32.to_le_bytes()); // n_trees
        payload.extend_from_slice(&1u32.to_le_bytes()); // n_nodes
        payload.push(1); // split
        payload.extend_from_slice(&0u32.to_le_bytes()); // feature
        payload.extend_from_slice(&0.5f32.to_le_bytes()); // threshold
        payload.extend_from_slice(&7u32.to_le_bytes()); // left (out of range)
        payload.extend_from_slice(&8u32.to_le_bytes()); // right
        assert!(matches!(
            gbdt_from_bytes(&frame(&payload)),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn non_finite_leaf_rejected() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&0.0f32.to_le_bytes()); // base
        payload.extend_from_slice(&1u32.to_le_bytes()); // input_dim
        payload.extend_from_slice(&0.1f32.to_le_bytes()); // lr
        payload.extend_from_slice(&1u32.to_le_bytes()); // n_trees
        payload.extend_from_slice(&1u32.to_le_bytes()); // n_nodes
        payload.push(0); // leaf
        payload.extend_from_slice(&f32::NAN.to_le_bytes());
        assert_eq!(
            gbdt_from_bytes(&frame(&payload)).unwrap_err(),
            DecodeError::Corrupt("non-finite leaf value")
        );
    }
}
