//! Compact binary serialization of trained GBDT models.
//!
//! A trained cardinality estimator must survive a process restart — the
//! paper's deployment story (Section 5.5.2) reconstructs models on data
//! drift but reuses them between drifts. The format is a small
//! little-endian layout with a magic header and explicit versioning; no
//! external serialization crate is needed.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  "QFEGB001"                     8 bytes
//! base   f32                            4
//! input_dim u32                         4
//! learning_rate f32                     4
//! n_trees u32                           4
//! per tree: n_nodes u32, then per node:
//!   tag u8 (0 = leaf, 1 = split)
//!   leaf:  value f32
//!   split: feature u32, threshold f32, left u32, right u32
//! ```

use crate::gbdt::Gbdt;

/// Errors from decoding a serialized model.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong or truncated header.
    BadMagic,
    /// Input ended before the declared structure was complete.
    Truncated,
    /// A structurally invalid entry (unknown node tag, out-of-range child).
    Corrupt(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a QFEGB001 model"),
            DecodeError::Truncated => write!(f, "model bytes truncated"),
            DecodeError::Corrupt(what) => write!(f, "corrupt model: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

pub(crate) const MAGIC: &[u8; 8] = b"QFEGB001";

/// Cursor helpers shared by the `gbdt` module's encode/decode impls.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    pub(crate) fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    pub(crate) fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Serialize a trained model; see the module docs for the layout.
pub fn gbdt_to_bytes(model: &Gbdt) -> Vec<u8> {
    model.encode()
}

/// Deserialize a model previously produced by [`gbdt_to_bytes`].
pub fn gbdt_from_bytes(bytes: &[u8]) -> Result<Gbdt, DecodeError> {
    Gbdt::decode(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbdt::GbdtConfig;
    use crate::matrix::Matrix;
    use crate::train::Regressor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained() -> (Gbdt, Matrix) {
        let mut rng = StdRng::seed_from_u64(8);
        let rows: Vec<Vec<f32>> = (0..400)
            .map(|_| vec![rng.gen::<f32>(), rng.gen::<f32>()])
            .collect();
        let y: Vec<f32> = rows.iter().map(|r| (r[0] * 3.0 + r[1]).sin()).collect();
        let x = Matrix::from_rows(&rows);
        let mut gb = Gbdt::new(GbdtConfig {
            n_trees: 25,
            min_samples_leaf: 3,
            ..GbdtConfig::default()
        });
        gb.fit(&x, &y);
        (gb, x)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (gb, x) = trained();
        let bytes = gbdt_to_bytes(&gb);
        let restored = gbdt_from_bytes(&bytes).unwrap();
        assert_eq!(gb.predict_batch(&x), restored.predict_batch(&x));
        assert_eq!(gb.tree_count(), restored.tree_count());
    }

    #[test]
    fn format_is_compact() {
        let (gb, _) = trained();
        let bytes = gbdt_to_bytes(&gb);
        // Roughly 13–17 bytes per node; far below the in-memory enum size.
        assert!(
            bytes.len() < gb.memory_bytes(),
            "{} encoded vs {} in memory",
            bytes.len(),
            gb.memory_bytes()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let (gb, _) = trained();
        let mut bytes = gbdt_to_bytes(&gb);
        bytes[0] = b'X';
        assert_eq!(gbdt_from_bytes(&bytes).unwrap_err(), DecodeError::BadMagic);
    }

    #[test]
    fn truncation_rejected() {
        let (gb, _) = trained();
        let bytes = gbdt_to_bytes(&gb);
        for cut in [9, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                gbdt_from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (gb, _) = trained();
        let mut bytes = gbdt_to_bytes(&gb);
        bytes.push(0);
        assert_eq!(
            gbdt_from_bytes(&bytes).unwrap_err(),
            DecodeError::Corrupt("trailing bytes")
        );
    }

    #[test]
    fn corrupt_child_index_rejected() {
        // Hand-craft a model with a split pointing past the node table.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&0.0f32.to_le_bytes()); // base
        bytes.extend_from_slice(&1u32.to_le_bytes()); // input_dim
        bytes.extend_from_slice(&0.1f32.to_le_bytes()); // lr
        bytes.extend_from_slice(&1u32.to_le_bytes()); // n_trees
        bytes.extend_from_slice(&1u32.to_le_bytes()); // n_nodes
        bytes.push(1); // split
        bytes.extend_from_slice(&0u32.to_le_bytes()); // feature
        bytes.extend_from_slice(&0.5f32.to_le_bytes()); // threshold
        bytes.extend_from_slice(&7u32.to_le_bytes()); // left (out of range)
        bytes.extend_from_slice(&8u32.to_le_bytes()); // right
        assert!(matches!(
            gbdt_from_bytes(&bytes),
            Err(DecodeError::Corrupt(_))
        ));
    }
}
