//! Compact binary serialization of trained models (GBDT and MLP).
//!
//! A trained cardinality estimator must survive a process restart — the
//! paper's deployment story (Section 5.5.2) reconstructs models on data
//! drift but reuses them between drifts. The format is a small
//! little-endian layout with a magic header, explicit versioning, and an
//! FNV-1a content checksum; no external serialization crate is needed.
//!
//! GBDT layout (all integers little-endian):
//!
//! ```text
//! magic     "QFEGB002"                   8 bytes
//! checksum  FNV-1a-64 of the payload     8
//! payload:
//!   base   f32                           4
//!   input_dim u32                        4
//!   learning_rate f32                    4
//!   n_trees u32                          4
//!   per tree: n_nodes u32, then per node:
//!     tag u8 (0 = leaf, 1 = split)
//!     leaf:  value f32
//!     split: feature u32, threshold f32, left u32, right u32
//! ```
//!
//! MLP layout shares the frame under the `"QFENN001"` magic:
//!
//! ```text
//! magic     "QFENN001"                   8 bytes
//! checksum  FNV-1a-64 of the payload     8
//! payload:
//!   input_dim u32                        4
//!   learning_rate f32                    4
//!   seed u64                             8
//!   epochs u32, batch_size u32           8
//!   adam_t u32                           4
//!   n_layers u32                         4
//!   per layer: in u32, out u32,
//!     weights in×out f32 (row-major), bias out f32
//! ```
//!
//! The checksum is verified **before** any structural parsing, so a
//! bit-flipped or truncated payload is rejected up front — every
//! single-bit corruption of a serialized model yields a typed
//! [`DecodeError`], never a mis-parsed model: a flip in the magic is
//! [`DecodeError::BadMagic`], a flip in the checksum or payload is
//! [`DecodeError::ChecksumMismatch`]. Structural validation (node tags,
//! child indices, layer chaining, finiteness of every `f32`) still runs
//! afterwards to catch hand-crafted or wrongly-assembled inputs whose
//! checksum is self-consistent.

use crate::gbdt::Gbdt;
use crate::mlp::Mlp;
use crate::train::Regressor;

/// Errors from decoding a serialized model.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong or truncated header.
    BadMagic,
    /// Input ended before the declared structure was complete.
    Truncated,
    /// The stored FNV-1a checksum does not match the payload — the bytes
    /// were corrupted (bit flip, partial write) after encoding.
    ChecksumMismatch,
    /// A structurally invalid entry (unknown node tag, out-of-range child,
    /// non-finite parameter).
    Corrupt(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a serialized qfe model"),
            DecodeError::Truncated => write!(f, "model bytes truncated"),
            DecodeError::ChecksumMismatch => {
                write!(f, "model bytes corrupted (checksum mismatch)")
            }
            DecodeError::Corrupt(what) => write!(f, "corrupt model: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

pub(crate) const MAGIC: &[u8; 8] = b"QFEGB002";
pub(crate) const MAGIC_MLP: &[u8; 8] = b"QFENN001";

/// FNV-1a 64-bit hash — tiny, dependency-free, and guaranteed to change
/// under any single-bit flip of the input (xor-then-multiply by an odd
/// prime is injective per step).
///
/// Public so other crates framing their own checksummed payloads (the
/// `qfe-store` checkpoint format, the learned-estimator snapshot) reuse
/// the exact same hash instead of growing a second implementation.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian cursor over a decode payload.
///
/// Shared by the `gbdt`/`mlp` encode/decode impls, and public so
/// downstream crates parsing their own checksummed frames (the
/// learned-estimator snapshot, the `qfe-store` checkpoint manifest) get
/// bounds-checked reads with the same typed [`DecodeError`]s.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Take the next `n` raw bytes, or [`DecodeError::Truncated`].
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Next `u8`.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Next little-endian `f32`.
    pub fn f32(&mut self) -> Result<f32, DecodeError> {
        let b = self.bytes(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Next little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        let b = self.bytes(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// True once every byte has been consumed (decoders reject trailing
    /// garbage by requiring this at the end).
    pub fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Serialize a trained model; see the module docs for the layout.
pub fn gbdt_to_bytes(model: &Gbdt) -> Vec<u8> {
    let payload = model.encode();
    let mut out = Vec::with_capacity(MAGIC.len() + 8 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Deserialize a model previously produced by [`gbdt_to_bytes`].
///
/// # Errors
/// Any corruption of the byte stream — truncation at any offset, any
/// single-bit flip, trailing garbage — returns a typed [`DecodeError`];
/// this function never panics and never returns a silently-wrong model.
pub fn gbdt_from_bytes(bytes: &[u8]) -> Result<Gbdt, DecodeError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let frame = MAGIC.len() + 8;
    if bytes.len() < frame {
        return Err(DecodeError::Truncated);
    }
    let c = &bytes[MAGIC.len()..frame];
    let stored = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
    let payload = &bytes[frame..];
    if fnv1a64(payload) != stored {
        return Err(DecodeError::ChecksumMismatch);
    }
    Gbdt::decode(payload)
}

/// Split a `magic + checksum + payload` frame, verifying the magic and
/// the FNV-1a checksum. Returns the verified payload.
fn checked_payload<'a>(bytes: &'a [u8], magic: &[u8; 8]) -> Result<&'a [u8], DecodeError> {
    if bytes.len() < magic.len() || &bytes[..magic.len()] != magic {
        return Err(DecodeError::BadMagic);
    }
    let frame = magic.len() + 8;
    if bytes.len() < frame {
        return Err(DecodeError::Truncated);
    }
    let c = &bytes[magic.len()..frame];
    let stored = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
    let payload = &bytes[frame..];
    if fnv1a64(payload) != stored {
        return Err(DecodeError::ChecksumMismatch);
    }
    Ok(payload)
}

/// Wrap a payload in the standard `magic + FNV-1a checksum` frame.
fn frame_payload(magic: &[u8; 8], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(magic.len() + 8 + payload.len());
    out.extend_from_slice(magic);
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Serialize a trained MLP under the `QFENN001` frame; see the module
/// docs for the layout.
///
/// # Panics
/// Panics on an untrained network (no layers) — there are no weights to
/// persist, mirroring the `predict before fit` contract. Callers that
/// may hold untrained models should go through
/// [`Regressor::to_bytes`], which
/// returns `None` instead.
pub fn mlp_to_bytes(model: &Mlp) -> Vec<u8> {
    let payload = model.encode();
    assert!(
        !payload.is_empty(),
        "cannot serialize an untrained MLP — it has no weights yet"
    );
    frame_payload(MAGIC_MLP, &payload)
}

/// Deserialize an MLP previously produced by [`mlp_to_bytes`].
///
/// # Errors
/// Any corruption of the byte stream — truncation at any offset, any
/// single-bit flip, trailing garbage — returns a typed [`DecodeError`];
/// this function never panics and never returns a silently-wrong model.
/// Adam optimizer moments are not serialized: the restored model
/// predicts identically, but refitting restarts the optimizer state.
pub fn mlp_from_bytes(bytes: &[u8]) -> Result<Mlp, DecodeError> {
    Mlp::decode(checked_payload(bytes, MAGIC_MLP)?)
}

/// Deserialize any supported model, dispatching on the magic header:
/// `QFEGB002` → [`Gbdt`], `QFENN001` → [`Mlp`]. This is what lets a
/// checkpoint store hold heterogeneous model families behind one opaque
/// byte payload.
///
/// # Errors
/// [`DecodeError::BadMagic`] if the header matches no known family;
/// otherwise whatever the family decoder returns.
pub fn regressor_from_bytes(bytes: &[u8]) -> Result<Box<dyn Regressor + Send + Sync>, DecodeError> {
    if bytes.len() >= MAGIC.len() && &bytes[..MAGIC.len()] == MAGIC {
        return Ok(Box::new(gbdt_from_bytes(bytes)?));
    }
    if bytes.len() >= MAGIC_MLP.len() && &bytes[..MAGIC_MLP.len()] == MAGIC_MLP {
        return Ok(Box::new(mlp_from_bytes(bytes)?));
    }
    Err(DecodeError::BadMagic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbdt::GbdtConfig;
    use crate::matrix::Matrix;
    use crate::train::Regressor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained() -> (Gbdt, Matrix) {
        let mut rng = StdRng::seed_from_u64(8);
        let rows: Vec<Vec<f32>> = (0..400)
            .map(|_| vec![rng.gen::<f32>(), rng.gen::<f32>()])
            .collect();
        let y: Vec<f32> = rows.iter().map(|r| (r[0] * 3.0 + r[1]).sin()).collect();
        let x = Matrix::from_rows(&rows);
        let mut gb = Gbdt::new(GbdtConfig {
            n_trees: 25,
            min_samples_leaf: 3,
            ..GbdtConfig::default()
        });
        gb.fit(&x, &y);
        (gb, x)
    }

    /// Wrap a hand-crafted payload in a valid magic + checksum frame, so
    /// tests can exercise the structural validation behind the checksum.
    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (gb, x) = trained();
        let bytes = gbdt_to_bytes(&gb);
        let restored = gbdt_from_bytes(&bytes).unwrap();
        assert_eq!(gb.predict_batch(&x), restored.predict_batch(&x));
        assert_eq!(gb.tree_count(), restored.tree_count());
    }

    #[test]
    fn format_is_compact() {
        let (gb, _) = trained();
        let bytes = gbdt_to_bytes(&gb);
        // Roughly 13–17 bytes per node; far below the in-memory enum size.
        assert!(
            bytes.len() < gb.memory_bytes(),
            "{} encoded vs {} in memory",
            bytes.len(),
            gb.memory_bytes()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let (gb, _) = trained();
        let mut bytes = gbdt_to_bytes(&gb);
        bytes[0] = b'X';
        assert_eq!(gbdt_from_bytes(&bytes).unwrap_err(), DecodeError::BadMagic);
    }

    #[test]
    fn truncation_rejected() {
        let (gb, _) = trained();
        let bytes = gbdt_to_bytes(&gb);
        for cut in [4, 9, 15, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                gbdt_from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (gb, _) = trained();
        let mut bytes = gbdt_to_bytes(&gb);
        bytes.push(0);
        // The appended byte is part of the checksummed region, so the
        // mismatch is caught before parsing.
        assert_eq!(
            gbdt_from_bytes(&bytes).unwrap_err(),
            DecodeError::ChecksumMismatch
        );
    }

    #[test]
    fn payload_bit_flip_is_checksum_mismatch() {
        let (gb, _) = trained();
        let clean = gbdt_to_bytes(&gb);
        // One flip in the checksum field, one early and one late in the
        // payload; the exhaustive sweep lives in the corrupt_model
        // property tests.
        for pos in [8, 16, clean.len() - 1] {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x10;
            assert_eq!(
                gbdt_from_bytes(&bytes).unwrap_err(),
                DecodeError::ChecksumMismatch,
                "flip at byte {pos}"
            );
        }
    }

    #[test]
    fn corrupt_child_index_rejected() {
        // Hand-craft a model with a split pointing past the node table.
        let mut payload = Vec::new();
        payload.extend_from_slice(&0.0f32.to_le_bytes()); // base
        payload.extend_from_slice(&1u32.to_le_bytes()); // input_dim
        payload.extend_from_slice(&0.1f32.to_le_bytes()); // lr
        payload.extend_from_slice(&1u32.to_le_bytes()); // n_trees
        payload.extend_from_slice(&1u32.to_le_bytes()); // n_nodes
        payload.push(1); // split
        payload.extend_from_slice(&0u32.to_le_bytes()); // feature
        payload.extend_from_slice(&0.5f32.to_le_bytes()); // threshold
        payload.extend_from_slice(&7u32.to_le_bytes()); // left (out of range)
        payload.extend_from_slice(&8u32.to_le_bytes()); // right
        assert!(matches!(
            gbdt_from_bytes(&frame(&payload)),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn non_finite_leaf_rejected() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&0.0f32.to_le_bytes()); // base
        payload.extend_from_slice(&1u32.to_le_bytes()); // input_dim
        payload.extend_from_slice(&0.1f32.to_le_bytes()); // lr
        payload.extend_from_slice(&1u32.to_le_bytes()); // n_trees
        payload.extend_from_slice(&1u32.to_le_bytes()); // n_nodes
        payload.push(0); // leaf
        payload.extend_from_slice(&f32::NAN.to_le_bytes());
        assert_eq!(
            gbdt_from_bytes(&frame(&payload)).unwrap_err(),
            DecodeError::Corrupt("non-finite leaf value")
        );
    }

    // ── MLP frame ──────────────────────────────────────────────────────

    use crate::mlp::{Mlp, MlpConfig};

    fn trained_mlp() -> (Mlp, Matrix) {
        let mut rng = StdRng::seed_from_u64(11);
        let rows: Vec<Vec<f32>> = (0..128)
            .map(|_| vec![rng.gen::<f32>(), rng.gen::<f32>(), rng.gen::<f32>()])
            .collect();
        let y: Vec<f32> = rows
            .iter()
            .map(|r| 0.5 * r[0] - 0.2 * r[1] + r[2])
            .collect();
        let x = Matrix::from_rows(&rows);
        let mut mlp = Mlp::new(MlpConfig {
            hidden: vec![8, 4],
            epochs: 6,
            batch_size: 32,
            learning_rate: 2e-3,
            seed: 5,
        });
        mlp.fit(&x, &y);
        (mlp, x)
    }

    fn frame_mlp(payload: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_MLP);
        bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes
    }

    #[test]
    fn mlp_round_trip_preserves_predictions() {
        let (mlp, x) = trained_mlp();
        let bytes = mlp_to_bytes(&mlp);
        let restored = mlp_from_bytes(&bytes).unwrap();
        assert_eq!(mlp.predict_batch(&x), restored.predict_batch(&x));
        assert_eq!(mlp.memory_bytes(), restored.memory_bytes());
    }

    #[test]
    fn mlp_truncation_rejected_at_every_cut() {
        let (mlp, _) = trained_mlp();
        let bytes = mlp_to_bytes(&mlp);
        for cut in 0..bytes.len() {
            assert!(
                mlp_from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn mlp_bit_flip_rejected_everywhere() {
        let (mlp, _) = trained_mlp();
        let clean = mlp_to_bytes(&mlp);
        // Flip one bit per stride across the whole frame (full sweep is
        // quadratic in model size; stride keeps the test fast while still
        // hitting magic, checksum, header, weights, and biases).
        for pos in (0..clean.len()).step_by(7) {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x04;
            assert!(mlp_from_bytes(&bytes).is_err(), "flip at byte {pos}");
        }
    }

    #[test]
    fn mlp_trailing_garbage_rejected() {
        let (mlp, _) = trained_mlp();
        let mut bytes = mlp_to_bytes(&mlp);
        bytes.push(0);
        assert_eq!(
            mlp_from_bytes(&bytes).unwrap_err(),
            DecodeError::ChecksumMismatch
        );
    }

    #[test]
    fn mlp_unchained_layer_shapes_rejected() {
        // Header: input_dim 2, then two layers whose shapes don't chain
        // (2×3 followed by 4×1).
        let mut payload = Vec::new();
        payload.extend_from_slice(&2u32.to_le_bytes()); // input_dim
        payload.extend_from_slice(&1e-3f32.to_le_bytes()); // lr
        payload.extend_from_slice(&0u64.to_le_bytes()); // seed
        payload.extend_from_slice(&1u32.to_le_bytes()); // epochs
        payload.extend_from_slice(&32u32.to_le_bytes()); // batch_size
        payload.extend_from_slice(&0u32.to_le_bytes()); // adam_t
        payload.extend_from_slice(&2u32.to_le_bytes()); // n_layers
        payload.extend_from_slice(&2u32.to_le_bytes()); // in
        payload.extend_from_slice(&3u32.to_le_bytes()); // out
        payload.extend_from_slice(&[0u8; (2 * 3 + 3) * 4]); // w + b
        payload.extend_from_slice(&4u32.to_le_bytes()); // in (wrong: expect 3)
        payload.extend_from_slice(&1u32.to_le_bytes()); // out
        payload.extend_from_slice(&[0u8; (4 + 1) * 4]);
        assert_eq!(
            mlp_from_bytes(&frame_mlp(&payload)).unwrap_err(),
            DecodeError::Corrupt("layer shapes do not chain")
        );
    }

    #[test]
    fn mlp_non_finite_weight_rejected() {
        let (mlp, _) = trained_mlp();
        let mut bytes = mlp_to_bytes(&mlp);
        // Overwrite the first weight (offset: frame 16 + payload header
        // 32 + layer shape 8) with NaN and re-checksum, so structural
        // validation — not the checksum — must catch it.
        let frame = 16;
        bytes[frame + 40..frame + 44].copy_from_slice(&f32::NAN.to_le_bytes());
        let sum = fnv1a64(&bytes[frame..]);
        bytes[8..16].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            mlp_from_bytes(&bytes).unwrap_err(),
            DecodeError::Corrupt("non-finite weight")
        );
    }

    #[test]
    fn mlp_wrong_magic_is_bad_magic() {
        let (gb, _) = trained();
        assert_eq!(
            mlp_from_bytes(&gbdt_to_bytes(&gb)).unwrap_err(),
            DecodeError::BadMagic
        );
    }

    // ── magic dispatch + Regressor::to_bytes ───────────────────────────

    #[test]
    fn regressor_from_bytes_dispatches_on_magic() {
        let (gb, x) = trained();
        let restored = regressor_from_bytes(&gbdt_to_bytes(&gb)).unwrap();
        assert_eq!(restored.model_name(), "GB");
        assert_eq!(restored.predict_batch(&x), gb.predict_batch(&x));

        let (mlp, mx) = trained_mlp();
        let restored = regressor_from_bytes(&mlp_to_bytes(&mlp)).unwrap();
        assert_eq!(restored.model_name(), "NN");
        assert_eq!(restored.predict_batch(&mx), mlp.predict_batch(&mx));

        for bad in [b"XXXXXXXX????????".as_slice(), &[]] {
            match regressor_from_bytes(bad) {
                Err(DecodeError::BadMagic) => {}
                Err(e) => panic!("expected BadMagic, got {e:?}"),
                Ok(_) => panic!("unknown magic must not decode"),
            }
        }
    }

    #[test]
    fn to_bytes_matches_free_functions_and_guards_untrained() {
        let (gb, _) = trained();
        assert_eq!(gb.to_bytes().unwrap(), gbdt_to_bytes(&gb));
        let (mlp, _) = trained_mlp();
        assert_eq!(mlp.to_bytes().unwrap(), mlp_to_bytes(&mlp));
        // Untrained models have no durable form.
        assert!(Gbdt::new(crate::gbdt::GbdtConfig::default())
            .to_bytes()
            .is_none());
        assert!(Mlp::new(MlpConfig::default()).to_bytes().is_none());
        // Families without a serializer fall back to the default None.
        assert!(crate::linreg::LinearRegression::new(0).to_bytes().is_none());
    }
}
