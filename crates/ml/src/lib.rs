//! # qfe-ml
//!
//! From-scratch machine-learning substrate for cardinality estimation.
//! The paper's models are reimplemented in pure Rust (the calibration note
//! "ML ecosystem thin; needs candle/tch bindings" is resolved by building
//! the three model families directly — see DESIGN.md):
//!
//! * [`mlp`] — feed-forward neural network (the paper's `NN`, after
//!   Woltmann et al. \[32\]): ReLU MLP with manual backprop and Adam.
//! * [`gbdt`] — gradient-boosted regression trees (the paper's `GB`, after
//!   Dutt et al. \[5\]): histogram-based split finding on binned features.
//! * [`mscn`] — multi-set convolutional network (Kipf et al. \[12\]):
//!   per-set MLPs with masked average pooling over the (table, join,
//!   predicate) sets.
//! * [`linreg`] — linear regression baseline (the paper tried it and found
//!   it "worse by a significant factor"; kept for completeness).
//!
//! All models train on log-transformed cardinalities ([`scaling`]) and are
//! deterministic given their seed — a hard requirement, since featurization
//! + training must satisfy the determinism property of Eq. 4 in the paper.

// Library code must fail with typed errors, never a panic: `unwrap`/`expect`
// are confined to tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod chaos;
pub mod compiled;
pub mod gbdt;
pub mod linreg;
pub mod matrix;
pub mod mlp;
pub mod mscn;
pub mod scaling;
pub mod serialize;
pub mod train;

pub use chaos::{ChaosRegressor, RegressorFault};
pub use compiled::{fma_available, mlp_simd_active, CompiledGbdt, CompiledMlp, MlpScratch};
pub use gbdt::{Gbdt, GbdtConfig};
pub use linreg::LinearRegression;
pub use matrix::Matrix;
pub use mlp::{Mlp, MlpConfig};
pub use mscn::{Mscn, MscnConfig};
pub use scaling::LogScaler;
pub use serialize::{
    fnv1a64, gbdt_from_bytes, gbdt_to_bytes, mlp_from_bytes, mlp_to_bytes, regressor_from_bytes,
    DecodeError,
};
pub use train::{Regressor, TrainError};
