//! Compiled inference: flattened GBDT forests and SIMD-friendly MLP
//! kernels.
//!
//! # GBDT ([`CompiledGbdt`])
//!
//! The reference [`crate::gbdt`] walk chases a `Vec<Node>` of 20-byte
//! enums per tree — every step re-matches the tag and loads a fresh cache
//! line. The compiled form is the treelite/lleaves layout: **splits only**
//! in one contiguous array of 12-byte [`CompiledNode`]s across the whole
//! forest, leaf values in a parallel `f32` array, and a per-tree root ref.
//! A child ref with [`LEAF_BIT`] set indexes the leaf array; otherwise it
//! indexes the node array. The walk is a branch-predictable
//! `while r & LEAF_BIT == 0` loop with no enum tags.
//!
//! Two traversal modes share the structure:
//!
//! * **`f32` rows** compare against a `thresholds` array parallel to the
//!   node array — exactly the reference compare (`x[f] <= t`), so results
//!   are **bit-identical** to the enum walk.
//! * **binned rows** (`u16` bin ids from a
//!   [`FeatureBinner`]) compare `bins[f] <= threshold_bin` — integer
//!   compares, no float loads. The binner is built from the forest's own
//!   split thresholds, and the quantization contract
//!   (`bin(v) <= k ⇔ v <= cuts[k]`, see `qfe_core::featurize::binned`)
//!   makes every branch decision — and therefore every prediction bit —
//!   identical to the `f32` walk.
//!
//! Both modes accumulate per-row leaf sums in tree order, matching the
//! reference accumulation order, so `base + lr * acc` reproduces the
//! reference output exactly. Compilation is total for every forest the
//! trainer or decoder can produce; `CompiledGbdt::compile` returns
//! `None` (callers keep the reference path) only for shapes outside the
//! `u16`/`u32` index space — >65536 features, >65534 distinct thresholds
//! on one feature, or >2³¹ nodes.
//!
//! # MLP ([`CompiledMlp`])
//!
//! The reference forward pass allocates a fresh matrix per layer and
//! clones the input. The compiled form stores each layer's weights
//! **transposed** (`out × in`, one neuron's weights contiguous) so the
//! per-neuron dot product streams both operands sequentially, and runs
//! rows through caller-owned ping-pong scratch ([`MlpScratch`]) with zero
//! allocation after warm-up. The scalar kernel keeps eight independent
//! accumulator lanes (autovectorizable); on `x86_64` a runtime-detected
//! AVX2+FMA kernel ([`mlp_simd_active`]) takes over. FMA fuses the
//! multiply-add rounding, so SIMD output is *tolerance-pinned* — not
//! bit-identical — against the scalar kernel; the equivalence tests pin
//! that tolerance. Set `QFE_MLP_SIMD=0` to force the scalar kernel.

use qfe_core::featurize::FeatureBinner;

use crate::matrix::Matrix;

/// High bit of a child ref: set → the remaining 31 bits index the leaf
/// array; clear → they index the split-node array.
pub const LEAF_BIT: u32 = 1 << 31;

/// One flattened split node. 12 bytes; the split threshold's f32 value
/// lives in a parallel array (only the `f32` traversal mode needs it, and
/// keeping it out of the node makes the binned walk's working set 25%
/// smaller).
#[derive(Debug, Clone, Copy)]
#[repr(C)]
pub struct CompiledNode {
    /// Feature index (`input_dim <= 65536` is enforced at compile time).
    pub feature: u16,
    /// Index of this split's threshold in the feature's cut array: go
    /// left iff `bins[feature] <= threshold_bin`.
    pub threshold_bin: u16,
    /// Child refs ([`LEAF_BIT`]-encoded).
    pub left: u32,
    pub right: u32,
}

/// A whole forest flattened for inference. Built once at fit/decode time
/// by `CompiledGbdt::compile`; immutable afterwards.
#[derive(Debug, Clone)]
pub struct CompiledGbdt {
    /// All trees' split nodes, contiguous, tree-major.
    nodes: Vec<CompiledNode>,
    /// `thresholds[i]` is the f32 threshold of `nodes[i]` (the `f32`
    /// traversal mode's compare operand).
    thresholds: Vec<f32>,
    /// All trees' leaf values, contiguous, tree-major.
    leaves: Vec<f32>,
    /// Per-tree root ref ([`LEAF_BIT`]-encoded: a single-leaf tree's root
    /// points straight into `leaves`).
    roots: Vec<u32>,
    /// Per-feature cut arrays derived from the forest's own split
    /// thresholds — what [`Self::binner`] hands to featurization.
    binner: FeatureBinner,
    input_dim: usize,
}

impl CompiledGbdt {
    /// Flatten a trained forest. Returns `None` when the forest does not
    /// fit the compiled index space (callers keep the reference
    /// representation — never an error):
    ///
    /// * more than 65536 input features (feature ids are `u16`),
    /// * more than [`qfe_core::featurize::binned::MAX_CUTS_PER_FEATURE`]
    ///   distinct thresholds on one feature,
    /// * more than 2³¹ split nodes or leaves (`u32` refs with the high
    ///   bit reserved),
    /// * an empty forest (nothing to compile),
    /// * a non-finite threshold (cannot enter a cut array).
    pub(crate) fn compile(trees: &[crate::gbdt::Tree], input_dim: usize) -> Option<CompiledGbdt> {
        use crate::gbdt::Node;
        if trees.is_empty() || input_dim == 0 || input_dim > u16::MAX as usize + 1 {
            return None;
        }
        // Per-feature threshold sets. Sorting with total_cmp and deduping
        // by `==` leaves a strictly increasing finite cut array (−0.0 and
        // 0.0 compare equal, so only one survives — and `v <= -0.0` agrees
        // with `v <= 0.0` for every v, so either representative preserves
        // branch decisions).
        let mut per_feature: Vec<Vec<f32>> = vec![Vec::new(); input_dim];
        for tree in trees {
            for node in &tree.nodes {
                if let Node::Split {
                    feature, threshold, ..
                } = node
                {
                    per_feature.get_mut(*feature as usize)?.push(*threshold);
                }
            }
        }
        for cuts in &mut per_feature {
            cuts.sort_by(f32::total_cmp);
            cuts.dedup();
        }
        let binner = FeatureBinner::from_cuts(&per_feature)?;

        let mut nodes = Vec::new();
        let mut thresholds = Vec::new();
        let mut leaves = Vec::new();
        let mut roots = Vec::with_capacity(trees.len());
        for tree in trees {
            // Pass 1: give every enum node its compiled ref (splits get
            // node slots, leaves get leaf slots).
            let mut refs = vec![0u32; tree.nodes.len()];
            for (i, node) in tree.nodes.iter().enumerate() {
                match node {
                    Node::Leaf(v) => {
                        if leaves.len() >= LEAF_BIT as usize {
                            return None;
                        }
                        refs[i] = LEAF_BIT | leaves.len() as u32;
                        leaves.push(*v);
                    }
                    Node::Split {
                        feature, threshold, ..
                    } => {
                        if nodes.len() >= LEAF_BIT as usize {
                            return None;
                        }
                        refs[i] = nodes.len() as u32;
                        nodes.push(CompiledNode {
                            feature: u16::try_from(*feature).ok()?,
                            threshold_bin: binner.cut_index(*feature as usize, *threshold)?,
                            left: 0,
                            right: 0,
                        });
                        thresholds.push(*threshold);
                    }
                }
            }
            // Pass 2: wire children through the ref table.
            for (i, node) in tree.nodes.iter().enumerate() {
                if let Node::Split { left, right, .. } = node {
                    let slot = refs[i] as usize;
                    let l = *refs.get(*left as usize)?;
                    let r = *refs.get(*right as usize)?;
                    let n = nodes.get_mut(slot)?;
                    n.left = l;
                    n.right = r;
                }
            }
            roots.push(*refs.first()?);
        }
        Some(CompiledGbdt {
            nodes,
            thresholds,
            leaves,
            roots,
            binner,
            input_dim,
        })
    }

    /// The per-feature cut arrays the forest's splits induce — hand this
    /// to `Featurizer::featurize_binned_into` / `BinnedFeatureMatrix` to
    /// produce rows for [`Self::accumulate_binned`].
    pub fn binner(&self) -> &FeatureBinner {
        &self.binner
    }

    /// Feature width the forest was trained on.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Total split-node count across the forest.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Walk one tree from `root` over an `f32` row. Identical branch
    /// decisions to the reference enum walk.
    #[inline]
    fn walk_f32(&self, root: u32, row: &[f32]) -> f32 {
        let mut r = root;
        while r & LEAF_BIT == 0 {
            let n = &self.nodes[r as usize];
            r = if row[n.feature as usize] <= self.thresholds[r as usize] {
                n.left
            } else {
                n.right
            };
        }
        self.leaves[(r & !LEAF_BIT) as usize]
    }

    /// Walk one tree from `root` over a binned row. Integer compares
    /// only; branch decisions match [`Self::walk_f32`] by the
    /// quantization contract.
    #[inline]
    fn walk_binned(&self, root: u32, row: &[u16]) -> f32 {
        let mut r = root;
        while r & LEAF_BIT == 0 {
            let n = &self.nodes[r as usize];
            r = if row[n.feature as usize] <= n.threshold_bin {
                n.left
            } else {
                n.right
            };
        }
        self.leaves[(r & !LEAF_BIT) as usize]
    }

    /// Add every tree's contribution for rows `base_row ..
    /// base_row + acc.len()` of `x` into `acc`, trees-outer / rows-inner
    /// (one tree's nodes stay hot while the batch streams through).
    /// Accumulation is in tree order per row — the reference order — so
    /// the sums are bit-identical to the enum walk.
    pub fn accumulate_rows(&self, x: &Matrix, base_row: usize, acc: &mut [f32]) {
        for &root in &self.roots {
            for (j, a) in acc.iter_mut().enumerate() {
                *a += self.walk_f32(root, x.row(base_row + j));
            }
        }
    }

    /// [`Self::accumulate_rows`] over a row-major `u16` bin arena
    /// (`input_dim` ids per row) — the all-integer hot path.
    ///
    /// Rows advance eight abreast (lleaves-style): the tree walk is a
    /// chain of dependent loads, so eight independent cursors hide most
    /// of each other's latency. Per row the trees still accumulate in
    /// tree order — the reference order — so the sums stay bit-identical.
    pub fn accumulate_binned(&self, bins: &[u16], base_row: usize, acc: &mut [f32]) {
        const LANES: usize = 8;
        let cols = self.input_dim;
        let row_of = |j: usize| &bins[(base_row + j) * cols..(base_row + j + 1) * cols];
        for &root in &self.roots {
            let mut blocks = acc.chunks_exact_mut(LANES);
            let mut j = 0;
            for block in &mut blocks {
                let rows: [&[u16]; LANES] = std::array::from_fn(|k| row_of(j + k));
                let mut r = [root; LANES];
                loop {
                    let mut descended = false;
                    for (c, row) in r.iter_mut().zip(&rows) {
                        if *c & LEAF_BIT == 0 {
                            let n = &self.nodes[*c as usize];
                            *c = if row[n.feature as usize] <= n.threshold_bin {
                                n.left
                            } else {
                                n.right
                            };
                            descended = true;
                        }
                    }
                    if !descended {
                        break;
                    }
                }
                for (a, c) in block.iter_mut().zip(&r) {
                    *a += self.leaves[(c & !LEAF_BIT) as usize];
                }
                j += LANES;
            }
            for (k, a) in blocks.into_remainder().iter_mut().enumerate() {
                *a += self.walk_binned(root, row_of(j + k));
            }
        }
    }

    /// True in-memory footprint of the compiled arrays (what
    /// `Gbdt::memory_bytes` adds to the retained reference trees).
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<CompiledNode>()
            + self.thresholds.len() * 4
            + self.leaves.len() * 4
            + self.roots.len() * 4
            + self.binner.memory_bytes()
    }

    /// Deterministic byte image of the compiled layout (little-endian
    /// indices, f32 bit patterns). This is fingerprint material for the
    /// 1-vs-4-thread determinism gate: compiled construction must produce
    /// identical bytes at any thread count. Not a durable format — the
    /// snapshot format serializes the reference trees and recompiles on
    /// decode.
    pub fn fingerprint_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.nodes.len() * 12 + self.leaves.len() * 4 + 64);
        out.extend_from_slice(&(self.nodes.len() as u64).to_le_bytes());
        for n in &self.nodes {
            out.extend_from_slice(&n.feature.to_le_bytes());
            out.extend_from_slice(&n.threshold_bin.to_le_bytes());
            out.extend_from_slice(&n.left.to_le_bytes());
            out.extend_from_slice(&n.right.to_le_bytes());
        }
        for &t in &self.thresholds {
            out.extend_from_slice(&t.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(self.leaves.len() as u64).to_le_bytes());
        for &v in &self.leaves {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        for &r in &self.roots {
            out.extend_from_slice(&r.to_le_bytes());
        }
        self.binner.fingerprint_bytes(&mut out);
        out
    }
}

/// One MLP layer with weights transposed for compiled inference:
/// `w_t[o * input .. (o + 1) * input]` is neuron `o`'s weight row, so the
/// per-neuron dot product reads both operands contiguously.
#[derive(Debug, Clone)]
struct CompiledLayer {
    w_t: Vec<f32>,
    bias: Vec<f32>,
    input: usize,
    output: usize,
}

/// Ping-pong activation buffers for [`CompiledMlp::forward_row`]. Own one
/// per thread (or thread-local) and every forward pass after warm-up is
/// allocation-free.
#[derive(Debug, Default)]
pub struct MlpScratch {
    a: Vec<f32>,
    b: Vec<f32>,
}

impl MlpScratch {
    /// Empty scratch; buffers grow to the network's widest layer on first
    /// use and are reused afterwards.
    pub fn new() -> Self {
        MlpScratch::default()
    }
}

/// A feed-forward network compiled for inference (see the module docs).
#[derive(Debug, Clone)]
pub struct CompiledMlp {
    layers: Vec<CompiledLayer>,
    input_dim: usize,
}

impl CompiledMlp {
    /// Transpose every layer's weights into the contiguous-per-neuron
    /// layout. Infallible: any trained network compiles.
    pub(crate) fn compile(layers: &[crate::mlp::Linear]) -> CompiledMlp {
        let compiled = layers
            .iter()
            .map(|l| {
                let (input, output) = (l.w.rows(), l.w.cols());
                let mut w_t = vec![0.0f32; input * output];
                for i in 0..input {
                    for o in 0..output {
                        w_t[o * input + i] = l.w.get(i, o);
                    }
                }
                CompiledLayer {
                    w_t,
                    bias: l.b.clone(),
                    input,
                    output,
                }
            })
            .collect::<Vec<_>>();
        let input_dim = compiled.first().map_or(0, |l| l.input);
        CompiledMlp {
            layers: compiled,
            input_dim,
        }
    }

    /// Feature width the network was trained on.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Forward one row, dispatching to the FMA kernel when the host
    /// supports it (see [`mlp_simd_active`]).
    #[inline]
    pub fn forward_row(&self, row: &[f32], scratch: &mut MlpScratch) -> f32 {
        self.forward_row_with(row, scratch, mlp_simd_active())
    }

    /// Forward one row with an explicit kernel choice. `use_simd` is only
    /// honored on hosts where the FMA kernel exists and is safe to run —
    /// this is the hook the scalar-vs-SIMD tolerance tests use to drive
    /// both kernels on the same host.
    pub fn forward_row_with(&self, row: &[f32], scratch: &mut MlpScratch, use_simd: bool) -> f32 {
        debug_assert_eq!(row.len(), self.input_dim);
        let MlpScratch { a, b } = scratch;
        a.clear();
        a.extend_from_slice(row);
        let last = self.layers.len().saturating_sub(1);
        for (i, layer) in self.layers.iter().enumerate() {
            b.resize(layer.output, 0.0);
            layer_forward(
                &layer.w_t,
                &layer.bias,
                layer.input,
                &a[..layer.input],
                &mut b[..layer.output],
                use_simd,
            );
            if i < last {
                for v in b.iter_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            std::mem::swap(a, b);
        }
        a.first().copied().unwrap_or(0.0)
    }

    /// Footprint of the transposed weight copies.
    pub fn memory_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| (l.w_t.len() + l.bias.len()) * 4)
            .sum()
    }
}

/// `out[o] = bias[o] + x · w_t[o]` for every neuron of one layer.
#[inline]
fn layer_forward(w_t: &[f32], bias: &[f32], input: usize, x: &[f32], out: &mut [f32], simd: bool) {
    #[cfg(target_arch = "x86_64")]
    if simd && fma_available() {
        // Safety: `fma_available` runtime-checked avx2+fma on this host.
        unsafe { x86::layer_forward_fma(w_t, bias, input, x, out) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    for (o, (out_v, &b)) in out.iter_mut().zip(bias).enumerate() {
        *out_v = b + dot_scalar(x, &w_t[o * input..(o + 1) * input]);
    }
}

/// Eight-lane scalar dot product. The fixed lane structure gives the
/// compiler eight independent accumulators to vectorize/unroll, and makes
/// the summation order deterministic (lane tree, then remainder in
/// order) — the scalar reference the SIMD tolerance test compares against.
#[inline]
fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xs, ys) in (&mut ca).zip(&mut cb) {
        for (l, (&x, &y)) in lanes.iter_mut().zip(xs.iter().zip(ys)) {
            *l += x * y;
        }
    }
    let s0 = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    let s1 = (lanes[4] + lanes[5]) + (lanes[6] + lanes[7]);
    let mut s = s0 + s1;
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        s += x * y;
    }
    s
}

/// Whether the MLP FMA kernel is in use on this host: `x86_64` with
/// runtime-detected AVX2+FMA, overridable with `QFE_MLP_SIMD=0` (force
/// scalar) / `QFE_MLP_SIMD=1` (request SIMD — still requires hardware
/// support). Resolved once per process.
pub fn mlp_simd_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static ACTIVE: OnceLock<bool> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            if let Ok(v) = std::env::var("QFE_MLP_SIMD") {
                if v == "0" || v.eq_ignore_ascii_case("off") {
                    return false;
                }
            }
            fma_available()
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Raw hardware capability (no env override): can the FMA kernel run?
#[cfg(target_arch = "x86_64")]
pub fn fma_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

/// Raw hardware capability: no x86_64, no FMA kernel.
#[cfg(not(target_arch = "x86_64"))]
pub fn fma_available() -> bool {
    false
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// FMA layer kernel: per-neuron 8-wide fused multiply-add.
    ///
    /// # Safety
    /// The caller must have verified `avx2` and `fma` via runtime
    /// detection ([`super::fma_available`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn layer_forward_fma(
        w_t: &[f32],
        bias: &[f32],
        input: usize,
        x: &[f32],
        out: &mut [f32],
    ) {
        for (o, (out_v, &b)) in out.iter_mut().zip(bias).enumerate() {
            *out_v = b + dot_fma(x, &w_t[o * input..(o + 1) * input]);
        }
    }

    /// # Safety
    /// Requires `avx2` + `fma` (enforced by the caller's runtime check).
    #[target_feature(enable = "avx2,fma")]
    unsafe fn dot_fma(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 8;
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let va = _mm256_loadu_ps(a.as_ptr().add(c * 8));
            let vb = _mm256_loadu_ps(b.as_ptr().add(c * 8));
            acc = _mm256_fmadd_ps(va, vb, acc);
        }
        // Horizontal sum of the 8 lanes.
        let hi = _mm256_extractf128_ps(acc, 1);
        let lo = _mm256_castps256_ps128(acc);
        let quad = _mm_add_ps(lo, hi);
        let dual = _mm_add_ps(quad, _mm_movehl_ps(quad, quad));
        let single = _mm_add_ss(dual, _mm_shuffle_ps(dual, dual, 0b01));
        let mut s = _mm_cvtss_f32(single);
        for i in chunks * 8..n {
            s += a.get_unchecked(i) * b.get_unchecked(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_node_is_twelve_bytes() {
        // The whole point of the layout: 12-byte nodes (vs the 20-byte
        // reference enum), leaves out-of-line.
        assert_eq!(std::mem::size_of::<CompiledNode>(), 12);
    }

    #[test]
    fn scalar_dot_handles_all_lengths() {
        for n in [0usize, 1, 7, 8, 9, 16, 37] {
            let a: Vec<f32> = (0..n).map(|i| i as f32 * 0.5 - 1.0).collect();
            let b: Vec<f32> = (0..n).map(|i| 0.25 * i as f32 + 0.1).collect();
            let expect: f64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| (x as f64) * (y as f64))
                .sum();
            let got = dot_scalar(&a, &b) as f64;
            assert!((got - expect).abs() < 1e-3, "n={n}: {got} vs {expect}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn fma_dot_matches_scalar_within_tolerance() {
        if !fma_available() {
            eprintln!("skipping: no AVX2+FMA on this host");
            return;
        }
        for n in [1usize, 8, 13, 64, 338] {
            let a: Vec<f32> = (0..n)
                .map(|i| ((i * 37 % 100) as f32 - 50.0) / 25.0)
                .collect();
            let b: Vec<f32> = (0..n)
                .map(|i| ((i * 61 % 100) as f32 - 50.0) / 50.0)
                .collect();
            let mut scalar = vec![0.0f32; 1];
            let mut simd = vec![0.0f32; 1];
            layer_forward(&b, &[0.0], n, &a, &mut scalar, false);
            layer_forward(&b, &[0.0], n, &a, &mut simd, true);
            let denom = scalar[0].abs().max(1.0);
            assert!(
                (scalar[0] - simd[0]).abs() / denom < 1e-5,
                "n={n}: scalar {} vs fma {}",
                scalar[0],
                simd[0]
            );
        }
    }
}
