//! Shared training abstractions: the [`Regressor`] trait all models
//! implement, plus deterministic shuffling and train/validation splitting.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::matrix::Matrix;
use qfe_core::featurize::FeatureBinner;
use qfe_core::QfeError;

/// Typed training/inference failures.
///
/// Every variant names the exact sample (or boosting round) that broke, so
/// a failed training run on a 100k-query workload is debuggable without a
/// debugger. `try_fit` guarantees that on `Err` the model is left exactly
/// as it was before the call — no half-trained state.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The training set has zero samples.
    EmptyTrainingSet,
    /// Feature row count and label count disagree.
    ShapeMismatch { rows: usize, labels: usize },
    /// A feature value is NaN or ±∞.
    NonFiniteFeature { row: usize, col: usize },
    /// A target value is NaN or ±∞.
    NonFiniteLabel { row: usize },
    /// The training loss went NaN/∞ mid-optimization (diverged).
    NonFiniteLoss { round: usize },
    /// A trained model produced a NaN/∞ prediction.
    NonFinitePrediction { index: usize },
    /// Training was interrupted by the caller's continuation check (e.g.
    /// a retraining deadline expired) before the given boosting round /
    /// epoch. The model is unchanged — same no-poisoning guarantee as
    /// every other `try_fit` failure.
    Interrupted { round: usize },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyTrainingSet => write!(f, "cannot train on an empty workload"),
            TrainError::ShapeMismatch { rows, labels } => {
                write!(f, "{rows} feature rows but {labels} labels")
            }
            TrainError::NonFiniteFeature { row, col } => {
                write!(f, "non-finite feature at row {row}, column {col}")
            }
            TrainError::NonFiniteLabel { row } => write!(f, "non-finite label at row {row}"),
            TrainError::NonFiniteLoss { round } => {
                write!(f, "training loss went non-finite at round {round}")
            }
            TrainError::NonFinitePrediction { index } => {
                write!(f, "model produced a non-finite prediction at index {index}")
            }
            TrainError::Interrupted { round } => {
                write!(f, "training interrupted by the caller before round {round}")
            }
        }
    }
}

impl std::error::Error for TrainError {}

impl From<TrainError> for QfeError {
    fn from(e: TrainError) -> Self {
        QfeError::Training(e.to_string())
    }
}

/// Shared input validation for [`Regressor::try_fit`].
pub fn validate_training_set(x: &Matrix, y: &[f32]) -> Result<(), TrainError> {
    if x.rows() == 0 {
        return Err(TrainError::EmptyTrainingSet);
    }
    if x.rows() != y.len() {
        return Err(TrainError::ShapeMismatch {
            rows: x.rows(),
            labels: y.len(),
        });
    }
    for row in 0..x.rows() {
        for (col, &v) in x.row(row).iter().enumerate() {
            if !v.is_finite() {
                return Err(TrainError::NonFiniteFeature { row, col });
            }
        }
    }
    if let Some(row) = y.iter().position(|v| !v.is_finite()) {
        return Err(TrainError::NonFiniteLabel { row });
    }
    Ok(())
}

/// A trainable regression model over dense feature matrices.
///
/// Models are input-agnostic (Section 2.2 of the paper): for a fixed input
/// dimension they work with any numeric vector, which is what allows
/// swapping QFTs without touching model architectures.
pub trait Regressor {
    /// Fit on features `x` (one row per sample) and targets `y`.
    ///
    /// # Panics
    /// Panics if `x.rows() != y.len()` or `x` is empty.
    fn fit(&mut self, x: &Matrix, y: &[f32]);

    /// Predict targets for a batch.
    ///
    /// Contract: the output has exactly `x.rows()` entries; a 0-row input
    /// yields an empty vector (models must not trip their input-dimension
    /// assertions on the degenerate `0×0` of `Matrix::from_rows(&[])`).
    fn predict_batch(&self, x: &Matrix) -> Vec<f32>;

    /// Predict a single sample.
    ///
    /// The default reshapes a thread-local `1×n` buffer around `x` and
    /// calls [`predict_batch`](Self::predict_batch) — after the buffer has
    /// warmed up, the only allocation left on this hot serving path is the
    /// one-element output vector (previously: the row clone *and* the
    /// matrix body, two heap allocations per call).
    fn predict(&self, x: &[f32]) -> f32 {
        use std::cell::RefCell;
        thread_local! {
            static SINGLE_ROW: RefCell<Matrix> = RefCell::new(Matrix::empty(0));
        }
        SINGLE_ROW.with(|slot| {
            let mut m = slot.borrow_mut();
            m.copy_from_row(x);
            self.predict_batch(&m)[0]
        })
    }

    /// Fallible training: validates shape and finiteness of the inputs
    /// before fitting, and returns a typed [`TrainError`] instead of
    /// panicking or silently absorbing NaNs into the weights.
    ///
    /// On `Err` the model is unchanged (validation happens before any
    /// mutation). Models with iterative optimizers override this to also
    /// abort on mid-training divergence ([`TrainError::NonFiniteLoss`]).
    fn try_fit(&mut self, x: &Matrix, y: &[f32]) -> Result<(), TrainError> {
        validate_training_set(x, y)?;
        self.fit(x, y);
        Ok(())
    }

    /// Fallible batch prediction: every output is checked finite, a NaN/∞
    /// surfaces as [`TrainError::NonFinitePrediction`] naming the sample.
    fn try_predict_batch(&self, x: &Matrix) -> Result<Vec<f32>, TrainError> {
        let out = self.predict_batch(x);
        if let Some(index) = out.iter().position(|v| !v.is_finite()) {
            return Err(TrainError::NonFinitePrediction { index });
        }
        Ok(out)
    }

    /// The quantization table for this model's compiled inference form,
    /// if it has one. A `Some` is an offer: the caller may featurize
    /// straight to `u16` bin ids (one pass, half the arena bytes) and
    /// predict through [`predict_batch_binned`](Self::predict_batch_binned)
    /// with results bit-identical to the `f32` path. The default — and
    /// any wrapper that perturbs predictions, like the chaos injector —
    /// returns `None` so callers stay on the `f32` path.
    fn feature_binner(&self) -> Option<&FeatureBinner> {
        None
    }

    /// Predict from a row-major arena of `u16` bin ids produced with this
    /// model's [`feature_binner`](Self::feature_binner) (`rows` rows of
    /// `dim` ids each). `None` means "not supported here" — the model is
    /// not compiled, or the arena shape is wrong — and the caller must
    /// fall back to [`predict_batch`](Self::predict_batch); it is never
    /// an error. Implementations must return exactly `rows` predictions,
    /// bit-identical to the `f32` path on the same featurized rows.
    fn predict_batch_binned(&self, rows: usize, bins: &[u16]) -> Option<Vec<f32>> {
        let _ = (rows, bins);
        None
    }

    /// Interruptible training: `should_continue` is polled at safe points
    /// (between boosting rounds / epochs for iterative models); returning
    /// `false` aborts with [`TrainError::Interrupted`] and leaves the
    /// model unchanged. This is how a deadline-aware retraining loop
    /// bounds its own latency without killing the process.
    ///
    /// The default checks once up front and then trains to completion —
    /// correct for non-iterative models (closed-form linear regression),
    /// overridden by the boosted/gradient models.
    fn try_fit_within(
        &mut self,
        x: &Matrix,
        y: &[f32],
        should_continue: &mut dyn FnMut() -> bool,
    ) -> Result<(), TrainError> {
        if !should_continue() {
            return Err(TrainError::Interrupted { round: 0 });
        }
        self.try_fit(x, y)
    }

    /// Probe-workload validation of a trained model: every prediction on
    /// `probe` must be finite. This is the acceptance gate a serving
    /// layer runs before hot-swapping a freshly trained (or freshly
    /// deserialized) model into the request path — a model that emits
    /// NaN on a known-good probe set must never be published.
    fn validate_probe(&self, probe: &Matrix) -> Result<(), TrainError> {
        self.try_predict_batch(probe).map(|_| ())
    }

    /// Approximate model size in bytes (Section 5.7 compares footprints).
    fn memory_bytes(&self) -> usize;

    /// Model label for experiment output (`GB`, `NN`, `MSCN`, `linreg`).
    fn model_name(&self) -> &'static str;

    /// Serialize the trained model into its checksummed byte format
    /// (decodable by [`crate::serialize::regressor_from_bytes`]).
    ///
    /// `None` means this model has no durable form — either the family
    /// has no serializer yet (MSCN, linreg) or the model is untrained.
    /// A checkpoint store treats `None` as "skip, and count it", never
    /// as an error: durability is best-effort per model family.
    fn to_bytes(&self) -> Option<Vec<u8>> {
        None
    }
}

/// Deterministically shuffled sample indices.
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    idx
}

/// Split `n` samples into train/validation index sets with the given
/// validation fraction (deterministic). The closed endpoints are valid
/// degenerate splits: `0.0` puts every sample in train, `1.0` every
/// sample in validation.
pub fn train_val_split(n: usize, val_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&val_fraction),
        "val_fraction {val_fraction} outside [0, 1]"
    );
    let idx = shuffled_indices(n, seed);
    let val_n = ((n as f64) * val_fraction).round() as usize;
    let (val, train) = idx.split_at(val_n);
    (train.to_vec(), val.to_vec())
}

/// Mean squared error between predictions and targets.
pub fn mse(pred: &[f32], target: &[f32]) -> f64 {
    assert_eq!(pred.len(), target.len());
    assert!(!pred.is_empty());
    pred.iter()
        .zip(target)
        .map(|(&p, &t)| ((p - t) as f64).powi(2))
        .sum::<f64>()
        / pred.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_deterministic_permutation() {
        let a = shuffled_indices(100, 5);
        let b = shuffled_indices(100, 5);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(a, sorted, "should actually shuffle");
    }

    #[test]
    fn split_fractions() {
        let (train, val) = train_val_split(100, 0.2, 1);
        assert_eq!(val.len(), 20);
        assert_eq!(train.len(), 80);
        let mut all: Vec<usize> = train.iter().chain(&val).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_edge_cases() {
        assert!(shuffled_indices(0, 7).is_empty());
        assert_eq!(shuffled_indices(1, 7), vec![0]);
    }

    #[test]
    fn split_edge_cases() {
        // n = 0: both sides empty at any fraction.
        for frac in [0.0, 0.5, 1.0] {
            let (train, val) = train_val_split(0, frac, 3);
            assert!(train.is_empty() && val.is_empty(), "frac {frac}");
        }
        // n = 1: the single sample lands on exactly one side.
        let (train, val) = train_val_split(1, 0.0, 3);
        assert_eq!((train.len(), val.len()), (1, 0));
        let (train, val) = train_val_split(1, 1.0, 3);
        assert_eq!((train.len(), val.len()), (0, 1));
        // Closed endpoints: degenerate but valid full splits.
        let (train, val) = train_val_split(10, 0.0, 3);
        assert_eq!((train.len(), val.len()), (10, 0));
        let (train, val) = train_val_split(10, 1.0, 3);
        assert_eq!((train.len(), val.len()), (0, 10));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn split_rejects_fraction_above_one() {
        let _ = train_val_split(10, 1.5, 0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn split_rejects_negative_fraction() {
        let _ = train_val_split(10, -0.1, 0);
    }

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(mse(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
        assert_eq!(mse(&[3.0], &[1.0]), 4.0);
    }

    #[test]
    #[should_panic]
    fn mse_rejects_mismatched_lengths() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn validation_catches_each_failure_mode() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(
            validate_training_set(&Matrix::zeros(0, 2), &[]),
            Err(TrainError::EmptyTrainingSet)
        );
        assert_eq!(
            validate_training_set(&x, &[1.0]),
            Err(TrainError::ShapeMismatch { rows: 2, labels: 1 })
        );
        let bad_x = Matrix::from_rows(&[vec![1.0, f32::NAN], vec![3.0, 4.0]]);
        assert_eq!(
            validate_training_set(&bad_x, &[1.0, 2.0]),
            Err(TrainError::NonFiniteFeature { row: 0, col: 1 })
        );
        assert_eq!(
            validate_training_set(&x, &[1.0, f32::INFINITY]),
            Err(TrainError::NonFiniteLabel { row: 1 })
        );
        assert_eq!(validate_training_set(&x, &[1.0, 2.0]), Ok(()));
    }

    #[test]
    fn try_fit_rejects_bad_input_without_touching_the_model() {
        let mut m = crate::linreg::LinearRegression::new(0);
        let bad_x = Matrix::from_rows(&[vec![f32::NAN]]);
        assert!(m.try_fit(&bad_x, &[1.0]).is_err());
        // The model must still be untrained: predict should panic exactly
        // as it would on a freshly-constructed model.
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        assert!(m.try_fit(&x, &[1.0, 2.0]).is_ok());
        assert!(m.try_predict_batch(&x).is_ok());
    }

    #[test]
    fn train_error_converts_to_qfe_training_error() {
        let e: QfeError = TrainError::NonFiniteLoss { round: 7 }.into();
        assert!(
            matches!(e, QfeError::Training(ref m) if m.contains("round 7")),
            "{e:?}"
        );
    }
}
