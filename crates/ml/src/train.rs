//! Shared training abstractions: the [`Regressor`] trait all models
//! implement, plus deterministic shuffling and train/validation splitting.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::matrix::Matrix;

/// A trainable regression model over dense feature matrices.
///
/// Models are input-agnostic (Section 2.2 of the paper): for a fixed input
/// dimension they work with any numeric vector, which is what allows
/// swapping QFTs without touching model architectures.
pub trait Regressor {
    /// Fit on features `x` (one row per sample) and targets `y`.
    ///
    /// # Panics
    /// Panics if `x.rows() != y.len()` or `x` is empty.
    fn fit(&mut self, x: &Matrix, y: &[f32]);

    /// Predict targets for a batch.
    fn predict_batch(&self, x: &Matrix) -> Vec<f32>;

    /// Predict a single sample.
    fn predict(&self, x: &[f32]) -> f32 {
        self.predict_batch(&Matrix::from_rows(&[x.to_vec()]))[0]
    }

    /// Approximate model size in bytes (Section 5.7 compares footprints).
    fn memory_bytes(&self) -> usize;

    /// Model label for experiment output (`GB`, `NN`, `MSCN`, `linreg`).
    fn model_name(&self) -> &'static str;
}

/// Deterministically shuffled sample indices.
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    idx
}

/// Split `n` samples into train/validation index sets with the given
/// validation fraction (deterministic).
pub fn train_val_split(n: usize, val_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..1.0).contains(&val_fraction));
    let idx = shuffled_indices(n, seed);
    let val_n = ((n as f64) * val_fraction).round() as usize;
    let (val, train) = idx.split_at(val_n);
    (train.to_vec(), val.to_vec())
}

/// Mean squared error between predictions and targets.
pub fn mse(pred: &[f32], target: &[f32]) -> f64 {
    assert_eq!(pred.len(), target.len());
    assert!(!pred.is_empty());
    pred.iter()
        .zip(target)
        .map(|(&p, &t)| ((p - t) as f64).powi(2))
        .sum::<f64>()
        / pred.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_deterministic_permutation() {
        let a = shuffled_indices(100, 5);
        let b = shuffled_indices(100, 5);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(a, sorted, "should actually shuffle");
    }

    #[test]
    fn split_fractions() {
        let (train, val) = train_val_split(100, 0.2, 1);
        assert_eq!(val.len(), 20);
        assert_eq!(train.len(), 80);
        let mut all: Vec<usize> = train.iter().chain(&val).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(mse(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
        assert_eq!(mse(&[3.0], &[1.0]), 4.0);
    }

    #[test]
    #[should_panic]
    fn mse_rejects_mismatched_lengths() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }
}
