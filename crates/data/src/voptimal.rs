//! V-optimal partitioning (Poosala et al. \[23\]).
//!
//! Section 3.2 of the paper: "One could also apply sophisticated
//! partitioning techniques from the field of histograms, like v-optimal
//! \[23\] and q-optimal \[18\] partitioning." V-optimal chooses bucket
//! boundaries minimizing the total within-bucket frequency variance — the
//! optimal piecewise-constant approximation of the frequency distribution.
//!
//! This is the classic O(d² · b) dynamic program over the `d` distinct
//! values with `b` buckets, using prefix sums for O(1) per-interval
//! variance. The resulting edges plug into
//! [`qfe_core::featurize::EquiDepthConjunctionEncoding`] (which accepts
//! arbitrary sorted edges, not just equi-depth ones).

use crate::column::Column;

/// Frequency histogram of a column's distinct values, sorted by value.
fn value_frequencies(column: &Column) -> Vec<(f64, u64)> {
    let mut values = column.to_f64_vec();
    values.sort_by(f64::total_cmp);
    let mut freqs: Vec<(f64, u64)> = Vec::new();
    for v in values {
        match freqs.last_mut() {
            Some((fv, c)) if *fv == v => *c += 1,
            _ => freqs.push((v, 1)),
        }
    }
    freqs
}

/// Compute v-optimal bucket edges for `column` with at most `buckets`
/// buckets: the returned vector holds the *upper* boundary value of each
/// bucket except the last (`buckets - 1` inner cut points, fewer if the
/// column has fewer distinct values).
///
/// Distinct values beyond `max_distinct` are first coalesced into
/// equi-depth micro-buckets to bound the DP's quadratic cost; this is the
/// standard practical compromise and exact when `d <= max_distinct`.
///
/// # Panics
/// Panics if `buckets == 0` or the column is empty.
pub fn v_optimal_edges(column: &Column, buckets: usize, max_distinct: usize) -> Vec<f64> {
    assert!(buckets >= 1, "need at least one bucket");
    let mut freqs = value_frequencies(column);
    assert!(!freqs.is_empty(), "cannot partition an empty column");

    // Coalesce to bound the DP input size.
    if freqs.len() > max_distinct {
        let mut coalesced: Vec<(f64, u64)> = Vec::with_capacity(max_distinct);
        let chunk = freqs.len().div_ceil(max_distinct);
        for group in freqs.chunks(chunk) {
            let count: u64 = group.iter().map(|&(_, c)| c).sum();
            // Represent the group by its last value so the boundary
            // semantics (bucket = values <= edge) stay exact.
            coalesced.push((group.last().unwrap().0, count));
        }
        freqs = coalesced;
    }
    let d = freqs.len();
    let b = buckets.min(d);
    if b == d {
        // One bucket per distinct value: zero variance, edges between all.
        return freqs[..d - 1].iter().map(|&(v, _)| v).collect();
    }

    // Prefix sums for O(1) interval variance:
    // var(i..=j) = Σc² − (Σc)²/len  over frequencies in the interval.
    let mut sum = vec![0.0f64; d + 1];
    let mut sum_sq = vec![0.0f64; d + 1];
    for (i, &(_, c)) in freqs.iter().enumerate() {
        sum[i + 1] = sum[i] + c as f64;
        sum_sq[i + 1] = sum_sq[i] + (c as f64) * (c as f64);
    }
    let interval_var = |i: usize, j: usize| -> f64 {
        // inclusive i..=j over freqs
        let n = (j - i + 1) as f64;
        let s = sum[j + 1] - sum[i];
        let ss = sum_sq[j + 1] - sum_sq[i];
        ss - s * s / n
    };

    // dp[k][j] = min variance of splitting freqs[0..=j] into k buckets.
    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; d]; b + 1];
    let mut back = vec![vec![0usize; d]; b + 1];
    for (j, slot) in dp[1].iter_mut().enumerate() {
        *slot = interval_var(0, j);
    }
    for k in 2..=b {
        for j in (k - 1)..d {
            for split in (k - 2)..j {
                let cost = dp[k - 1][split] + interval_var(split + 1, j);
                if cost < dp[k][j] {
                    dp[k][j] = cost;
                    back[k][j] = split;
                }
            }
        }
    }

    // Recover edges: the boundary after each bucket is the value at the
    // split position.
    let mut edges = Vec::with_capacity(b - 1);
    let mut k = b;
    let mut j = d - 1;
    while k > 1 {
        let split = back[k][j];
        edges.push(freqs[split].0);
        j = split;
        k -= 1;
    }
    edges.reverse();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_frequencies_split_evenly() {
        // 12 distinct values, each once: any 4-way balanced split is
        // optimal; the DP must produce 3 sorted edges.
        let col = Column::Int((0..12).collect());
        let edges = v_optimal_edges(&col, 4, 1024);
        assert_eq!(edges.len(), 3);
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn isolates_heavy_hitters() {
        // Value 5 occurs 1000×, everything else once. V-optimal must place
        // boundaries isolating the spike so its bucket has zero variance.
        let mut vals: Vec<i64> = (0..10).collect();
        vals.extend(std::iter::repeat_n(5i64, 1000));
        let col = Column::Int(vals);
        let edges = v_optimal_edges(&col, 3, 1024);
        // Bucket boundaries at 4 and 5 isolate {5}: values <= 4 | {5} | > 5.
        assert!(
            edges.contains(&4.0) && edges.contains(&5.0),
            "edges {edges:?} should isolate the spike at 5"
        );
    }

    #[test]
    fn beats_equi_width_on_variance() {
        // Skewed data: compare total within-bucket frequency variance
        // against a fixed equal-width split.
        let mut vals = Vec::new();
        for v in 0..100i64 {
            let reps = if v < 5 { 200 } else { 2 };
            vals.extend(std::iter::repeat_n(v, reps));
        }
        let col = Column::Int(vals);
        let b = 8;
        let vopt = v_optimal_edges(&col, b, 1024);

        let variance_of = |edges: &[f64]| -> f64 {
            let freqs = value_frequencies(&col);
            let mut total = 0.0;
            let mut start = 0;
            let mut boundaries: Vec<f64> = edges.to_vec();
            boundaries.push(f64::INFINITY);
            for &edge in &boundaries {
                let mut counts = Vec::new();
                while start < freqs.len() && freqs[start].0 <= edge {
                    counts.push(freqs[start].1 as f64);
                    start += 1;
                }
                if counts.is_empty() {
                    continue;
                }
                let mean = counts.iter().sum::<f64>() / counts.len() as f64;
                total += counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>();
            }
            total
        };
        let equal_width: Vec<f64> = (1..b).map(|i| (i * 100 / b) as f64 - 1.0).collect();
        let v_var = variance_of(&vopt);
        let ew_var = variance_of(&equal_width);
        assert!(
            v_var <= ew_var,
            "v-optimal variance {v_var} should not exceed equal-width {ew_var}"
        );
    }

    #[test]
    fn coalescing_bounds_input() {
        let col = Column::Int((0..10_000).collect());
        let edges = v_optimal_edges(&col, 8, 256);
        assert_eq!(edges.len(), 7);
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn fewer_distinct_values_than_buckets() {
        let col = Column::Int(vec![1, 1, 2, 2, 3]);
        let edges = v_optimal_edges(&col, 10, 1024);
        assert_eq!(edges, vec![1.0, 2.0]);
    }

    #[test]
    fn constant_column() {
        let col = Column::Int(vec![7; 50]);
        let edges = v_optimal_edges(&col, 4, 1024);
        assert!(edges.is_empty());
    }

    #[test]
    fn edges_work_with_the_bucketized_encoder() {
        use qfe_core::featurize::{AttributeSpace, EquiDepthConjunctionEncoding, Featurizer};
        use qfe_core::{AttributeDomain, ColumnId, ColumnRef, Query, TableId};

        let mut vals: Vec<i64> = (0..50).collect();
        vals.extend(std::iter::repeat_n(3i64, 500));
        let col = Column::Int(vals);
        let edges = v_optimal_edges(&col, 8, 1024);
        let space = AttributeSpace::new(vec![(
            ColumnRef::new(TableId(0), ColumnId(0)),
            AttributeDomain::integers(0, 49),
        )]);
        let enc = EquiDepthConjunctionEncoding::new(space, vec![edges]);
        let f = enc
            .featurize(&Query::single_table(TableId(0), vec![]))
            .unwrap();
        assert_eq!(f.dim(), enc.dim());
    }
}
