//! Typed in-memory columns.

use qfe_core::schema::AttributeDomain;

use crate::dictionary::Dictionary;

/// A typed column of values.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers (also dates as day numbers).
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Dictionary-encoded strings; `codes[i]` indexes into the dictionary,
    /// and code order equals lexicographic order so string range predicates
    /// behave like numeric ranges (Section 6 of the paper).
    Dict {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// The order-preserving dictionary.
        dict: Dictionary,
    },
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Dict { codes, .. } => codes.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Numeric view of one row (dictionary columns expose their codes).
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn get_f64(&self, row: usize) -> f64 {
        match self {
            Column::Int(v) => v[row] as f64,
            Column::Float(v) => v[row],
            Column::Dict { codes, .. } => codes[row] as f64,
        }
    }

    /// Integer view of one row (floats are truncated).
    pub fn get_i64(&self, row: usize) -> i64 {
        match self {
            Column::Int(v) => v[row],
            Column::Float(v) => v[row] as i64,
            Column::Dict { codes, .. } => codes[row] as i64,
        }
    }

    /// Whether values are integral (integers and dictionary codes).
    pub fn is_integral(&self) -> bool {
        !matches!(self, Column::Float(_))
    }

    /// Collect all values as `f64` (dictionary columns yield codes).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        match self {
            Column::Int(v) => v.iter().map(|&x| x as f64).collect(),
            Column::Float(v) => v.clone(),
            Column::Dict { codes, .. } => codes.iter().map(|&c| c as f64).collect(),
        }
    }

    /// Compute the attribute domain from the stored values.
    ///
    /// # Panics
    /// Panics on empty columns — a domain needs at least one value.
    pub fn domain(&self) -> AttributeDomain {
        assert!(
            !self.is_empty(),
            "cannot derive a domain from an empty column"
        );
        match self {
            Column::Int(v) => {
                let min = *v.iter().min().unwrap();
                let max = *v.iter().max().unwrap();
                AttributeDomain::integers(min, max)
            }
            Column::Float(v) => {
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                for &x in v {
                    min = min.min(x);
                    max = max.max(x);
                }
                AttributeDomain::reals(min, max)
            }
            Column::Dict { codes, dict } => {
                let _ = codes;
                // Dictionary codes span the full dictionary by construction.
                AttributeDomain::integers(0, dict.len().saturating_sub(1) as i64)
            }
        }
    }

    /// Exact number of distinct values.
    pub fn distinct_count(&self) -> u64 {
        match self {
            Column::Int(v) => {
                let mut sorted = v.clone();
                sorted.sort_unstable();
                sorted.dedup();
                sorted.len() as u64
            }
            Column::Float(v) => {
                let mut sorted = v.clone();
                sorted.sort_by(f64::total_cmp);
                sorted.dedup();
                sorted.len() as u64
            }
            Column::Dict { codes, .. } => {
                let mut sorted = codes.clone();
                sorted.sort_unstable();
                sorted.dedup();
                sorted.len() as u64
            }
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            Column::Int(v) => v.len() * 8,
            Column::Float(v) => v.len() * 8,
            Column::Dict { codes, dict } => codes.len() * 4 + dict.memory_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_column_accessors() {
        let c = Column::Int(vec![3, 1, 2]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.get_f64(0), 3.0);
        assert_eq!(c.get_i64(2), 2);
        assert!(c.is_integral());
        let d = c.domain();
        assert_eq!((d.min, d.max), (1.0, 3.0));
        assert!(d.integral);
    }

    #[test]
    fn float_column_domain() {
        let c = Column::Float(vec![1.5, -2.5, 0.0]);
        let d = c.domain();
        assert_eq!((d.min, d.max), (-2.5, 1.5));
        assert!(!d.integral);
        assert!(!c.is_integral());
    }

    #[test]
    fn dict_column_exposes_codes() {
        let dict = Dictionary::from_values(vec!["b".into(), "a".into(), "c".into(), "a".into()]);
        let codes = vec![
            dict.code("b").unwrap(),
            dict.code("a").unwrap(),
            dict.code("c").unwrap(),
        ];
        let c = Column::Dict {
            codes,
            dict: dict.clone(),
        };
        // Codes are lexicographic: a=0, b=1, c=2.
        assert_eq!(c.get_f64(0), 1.0);
        assert_eq!(c.get_f64(1), 0.0);
        assert_eq!(c.get_f64(2), 2.0);
        let d = c.domain();
        assert_eq!((d.min, d.max), (0.0, 2.0));
    }

    #[test]
    fn distinct_counts() {
        assert_eq!(Column::Int(vec![1, 1, 2, 3, 3]).distinct_count(), 3);
        assert_eq!(Column::Float(vec![0.5, 0.5]).distinct_count(), 1);
    }

    #[test]
    fn memory_accounting() {
        assert_eq!(Column::Int(vec![0; 10]).memory_bytes(), 80);
        assert_eq!(Column::Float(vec![0.0; 4]).memory_bytes(), 32);
    }

    #[test]
    #[should_panic(expected = "empty column")]
    fn empty_column_has_no_domain() {
        let _ = Column::Int(vec![]).domain();
    }
}
