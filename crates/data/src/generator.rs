//! Distribution toolkit for the synthetic dataset generators.
//!
//! Everything is driven by a seeded [`rand::rngs::StdRng`], so datasets are
//! bit-for-bit reproducible across runs and platforms.

use rand::rngs::StdRng;
use rand::Rng;

/// Zipf sampler over `{0, 1, …, n-1}` with exponent `s` (rank 0 most
/// frequent). Uses inverted-CDF sampling over precomputed cumulative
/// weights — exact, O(log n) per draw.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build for `n` ranks with skew exponent `s` (`s = 0` is uniform;
    /// `s ≈ 1` is classic zipf).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over empty support");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Draw a rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < u)
    }

    /// Number of ranks.
    pub fn support(&self) -> usize {
        self.cumulative.len()
    }
}

/// Approximately normal sample via the central limit theorem (sum of 12
/// uniforms), scaled to `mean`/`std_dev`. Deterministic given the RNG and
/// free of external dependencies.
pub fn normal_approx(rng: &mut StdRng, mean: f64, std_dev: f64) -> f64 {
    let sum: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
    mean + (sum - 6.0) * std_dev
}

/// Normal sample clamped and rounded into an integer range.
pub fn normal_int(rng: &mut StdRng, mean: f64, std_dev: f64, min: i64, max: i64) -> i64 {
    (normal_approx(rng, mean, std_dev).round() as i64).clamp(min, max)
}

/// Right-skewed sample on `[min, max]`: `min + (max-min) * u^k` with
/// `k > 1` concentrating mass near `min`.
pub fn skewed_int(rng: &mut StdRng, min: i64, max: i64, k: f64) -> i64 {
    let u: f64 = rng.gen();
    let x = u.powf(k);
    min + ((max - min) as f64 * x).round() as i64
}

/// Bernoulli draw with probability `p`.
pub fn bernoulli(rng: &mut StdRng, p: f64) -> bool {
    rng.gen::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(100, 1.2);
        let mut rng = rng();
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[50] * 5);
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = rng();
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5000.0).abs() < 500.0, "count {c}");
        }
    }

    #[test]
    fn zipf_samples_stay_in_support() {
        let z = Zipf::new(5, 2.0);
        let mut rng = rng();
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
        assert_eq!(z.support(), 5);
    }

    #[test]
    fn normal_approx_moments() {
        let mut rng = rng();
        let samples: Vec<f64> = (0..50_000)
            .map(|_| normal_approx(&mut rng, 10.0, 2.0))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn normal_int_respects_bounds() {
        let mut rng = rng();
        for _ in 0..1000 {
            let v = normal_int(&mut rng, 0.0, 100.0, -5, 5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn skewed_int_concentrates_near_min() {
        let mut rng = rng();
        let samples: Vec<i64> = (0..10_000)
            .map(|_| skewed_int(&mut rng, 0, 100, 3.0))
            .collect();
        let below_25 = samples.iter().filter(|&&v| v < 25).count();
        assert!(below_25 > 5000, "below_25 = {below_25}");
        assert!(samples.iter().all(|&v| (0..=100).contains(&v)));
    }

    #[test]
    fn determinism_across_runs() {
        let z = Zipf::new(50, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
