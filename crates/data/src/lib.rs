//! # qfe-data
//!
//! In-memory columnar storage, per-attribute statistics, and the synthetic
//! dataset generators used to reproduce the paper's evaluation.
//!
//! The paper evaluates on two real-world datasets that are not
//! redistributable here:
//!
//! * **forest cover type** (UCI covertype, 581k rows × 55 attributes) —
//!   replaced by [`forest::generate_forest`], a deterministic generator
//!   matching covertype's shape: 10 skewed/correlated quantitative
//!   attributes, 4 binary wilderness-area indicators, 40 binary soil-type
//!   indicators, and the 7-valued cover type label.
//! * **IMDb** (with the JOB-light join benchmark) — replaced by
//!   [`imdb::generate_imdb`], a six-table schema (`title`, `cast_info`,
//!   `movie_info`, `movie_info_idx`, `movie_companies`, `movie_keyword`)
//!   with key/foreign-key edges and zipfian fan-outs.
//!
//! Both generators are seeded and bit-for-bit reproducible. See DESIGN.md
//! for why these substitutions preserve the behaviour the experiments
//! exercise. Users with the real files can load them via [`csv`] and run
//! the identical pipeline.

pub mod column;
pub mod csv;
pub mod dictionary;
pub mod forest;
pub mod generator;
pub mod histogram;
pub mod imdb;
pub mod sample;
pub mod table;
pub mod voptimal;

pub use column::Column;
pub use dictionary::Dictionary;
pub use histogram::EquiDepthHistogram;
pub use table::{Database, Table};
