//! Bernoulli sampling (Section 7, "Sampling"): each row is drawn
//! independently with the same probability. The paper's sampling baseline
//! uses a 0.1 % Bernoulli sample drawn independently per query.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Bernoulli sample of row indices from a table.
#[derive(Debug, Clone)]
pub struct BernoulliSample {
    rows: Vec<u32>,
    rate: f64,
    population: usize,
}

impl BernoulliSample {
    /// Draw a `rate` sample (e.g. `0.001` for 0.1 %) from a table with
    /// `population` rows.
    pub fn draw(population: usize, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity((population as f64 * rate * 1.2) as usize + 4);
        for row in 0..population {
            if rng.gen::<f64>() < rate {
                rows.push(row as u32);
            }
        }
        BernoulliSample {
            rows,
            rate,
            population,
        }
    }

    /// Sampled row indices (ascending).
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    /// The sampling rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Rows in the sampled table.
    pub fn population(&self) -> usize {
        self.population
    }

    /// Scale a count of qualifying sampled rows up to a population
    /// estimate: `|R'(Q)| / p`.
    pub fn scale_up(&self, qualifying: usize) -> f64 {
        if self.rate == 0.0 {
            return 0.0;
        }
        qualifying as f64 / self.rate
    }

    /// Approximate heap footprint in bytes (the paper reports ~142 kB for
    /// a 0.1 % sample of the 142 MB forest table).
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_size_matches_rate() {
        let s = BernoulliSample::draw(100_000, 0.01, 1);
        let n = s.rows().len();
        assert!((800..1200).contains(&n), "sample size {n}");
        assert_eq!(s.population(), 100_000);
        assert_eq!(s.rate(), 0.01);
    }

    #[test]
    fn rows_are_sorted_and_unique() {
        let s = BernoulliSample::draw(10_000, 0.05, 2);
        for w in s.rows().windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn scale_up_inverts_rate() {
        let s = BernoulliSample::draw(10_000, 0.001, 3);
        assert_eq!(s.scale_up(5), 5000.0);
    }

    #[test]
    fn zero_rate_yields_empty_sample() {
        let s = BernoulliSample::draw(1000, 0.0, 4);
        assert!(s.rows().is_empty());
        assert_eq!(s.scale_up(0), 0.0);
    }

    #[test]
    fn determinism_by_seed() {
        let a = BernoulliSample::draw(5000, 0.02, 42);
        let b = BernoulliSample::draw(5000, 0.02, 42);
        assert_eq!(a.rows(), b.rows());
        let c = BernoulliSample::draw(5000, 0.02, 43);
        assert_ne!(a.rows(), c.rows());
    }

    #[test]
    fn memory_scales_with_sample() {
        let s = BernoulliSample::draw(100_000, 0.001, 5);
        assert_eq!(s.memory_bytes(), s.rows().len() * 4);
    }
}
