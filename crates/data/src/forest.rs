//! Synthetic forest-cover-type-shaped dataset.
//!
//! The paper's first dataset is the UCI *covertype* table (581k rows × 55
//! attributes) \[17\]. The original download is not available offline, so
//! this generator produces a table with the same shape and the statistical
//! properties the experiments exercise:
//!
//! * 10 quantitative attributes with covertype-like ranges, skew, and
//!   cross-correlations (elevation ↔ cover type, hydrology distances,
//!   hillshades ↔ aspect),
//! * 4 binary wilderness-area indicators and 40 binary soil-type
//!   indicators (one-hot groups, as in the original),
//! * a 7-valued `cover_type` label correlated with elevation.
//!
//! The correlations matter: they are what makes the attribute-value-
//! independence baseline err and bucketized featurizations informative.
//! Generation is fully deterministic given the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::column::Column;
use crate::generator::{normal_approx, normal_int, Zipf};
use crate::table::{Database, Table};

/// Configuration of the forest generator.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of rows (the original has 581 012; experiments default to a
    /// scaled-down table for runtime).
    pub rows: usize,
    /// If true, only the 10 quantitative attributes plus `cover_type` are
    /// generated (11 columns); otherwise the full 55-column layout.
    pub quantitative_only: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            rows: 60_000,
            quantitative_only: true,
            seed: 0xF0_4E57, // "forest"
        }
    }
}

/// Names of the 10 quantitative attributes (order follows covertype).
pub const QUANTITATIVE_COLUMNS: [&str; 10] = [
    "elevation",
    "aspect",
    "slope",
    "horizontal_distance_to_hydrology",
    "vertical_distance_to_hydrology",
    "horizontal_distance_to_roadways",
    "hillshade_9am",
    "hillshade_noon",
    "hillshade_3pm",
    "horizontal_distance_to_fire_points",
];

/// A tightly coupled monotone transform of the latent gradient plus small
/// noise; `power > 1` skews mass toward the low end like the real distance
/// attributes.
fn coupled(rng: &mut StdRng, z: f64, noise_sd: f64, power: f64) -> f64 {
    let jitter = normal_approx(rng, 0.0, noise_sd);
    (z + jitter).clamp(0.0, 1.0).powf(power)
}

/// Generate the forest table as a single-table [`Database`].
pub fn generate_forest(config: &ForestConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.rows;
    assert!(n > 0, "forest table needs at least one row");

    let mut elevation = Vec::with_capacity(n);
    let mut aspect = Vec::with_capacity(n);
    let mut slope = Vec::with_capacity(n);
    let mut horiz_hydro = Vec::with_capacity(n);
    let mut vert_hydro = Vec::with_capacity(n);
    let mut horiz_road = Vec::with_capacity(n);
    let mut hs_9am = Vec::with_capacity(n);
    let mut hs_noon = Vec::with_capacity(n);
    let mut hs_3pm = Vec::with_capacity(n);
    let mut horiz_fire = Vec::with_capacity(n);
    let mut cover_type = Vec::with_capacity(n);
    let mut wilderness: Vec<Vec<i64>> = (0..4).map(|_| Vec::with_capacity(n)).collect();
    let mut soil: Vec<Vec<i64>> = (0..40).map(|_| Vec::with_capacity(n)).collect();

    let soil_zipf = Zipf::new(40, 0.9);

    for _ in 0..n {
        // A latent terrain gradient couples the quantitative attributes —
        // the real covertype data is strongly correlated (elevation
        // predicts distances, soils, and the cover type), and exactly this
        // correlation is what defeats attribute-value-independence
        // estimators.
        let z: f64 = rng.gen();
        let elev = (1850.0 + 2010.0 * coupled(&mut rng, z, 0.03, 1.0)).round() as i64;
        let asp = rng.gen_range(0..360i64);
        // Steeper terrain at higher sites (negatively coupled noise-free
        // queries on slope vs elevation interact strongly).
        let slp = (66.0 * coupled(&mut rng, z, 0.06, 1.5))
            .round()
            .clamp(0.0, 66.0) as i64;
        // Remote (high-z) sites are far from hydrology, roads, and fire
        // points alike.
        // Riverside cells: a large correlated spike at exactly 0 for both
        // hydrology distances (the real covertype has such a spike).
        // Histograms capture each marginal spike via MCVs, but the joint
        // spike breaks the independence assumption.
        let riverside = rng.gen_bool(0.30);
        let hh = if riverside {
            0
        } else {
            (1400.0 * coupled(&mut rng, z, 0.05, 2.0))
                .round()
                .clamp(1.0, 1400.0) as i64
        };
        // Vertical distance correlates with horizontal distance.
        let vh = if riverside {
            0
        } else {
            (hh as f64 * 0.3 + normal_int(&mut rng, 0.0, 40.0, -170, 600) as f64)
                .round()
                .clamp(-170.0, 600.0) as i64
        };
        let hr = (7120.0 * coupled(&mut rng, z, 0.05, 1.6))
            .round()
            .clamp(0.0, 7120.0) as i64;
        // Hillshades depend on aspect and slope (sun geometry caricature).
        let asp_rad = (asp as f64).to_radians();
        let h9 = (220.0 + 25.0 * (asp_rad - 0.8).cos() - 0.5 * slp as f64
            + normal_int(&mut rng, 0.0, 12.0, -40, 40) as f64)
            .round()
            .clamp(0.0, 254.0) as i64;
        let hn = (225.0 + 8.0 * (asp_rad - 1.5).cos() - 0.3 * slp as f64
            + normal_int(&mut rng, 0.0, 10.0, -30, 30) as f64)
            .round()
            .clamp(0.0, 254.0) as i64;
        let h3 = (0.6 * hn as f64
            + 0.35 * (254.0 - h9 as f64)
            + normal_int(&mut rng, 0.0, 10.0, -30, 30) as f64)
            .round()
            .clamp(0.0, 254.0) as i64;
        let hf = (7170.0 * coupled(&mut rng, z, 0.06, 1.6))
            .round()
            .clamp(0.0, 7170.0) as i64;

        // Cover type is driven by elevation bands with noise, mirroring the
        // strong elevation/cover correlation of the real data.
        let band = match elev {
            e if e < 2300 => 3,
            e if e < 2600 => 2,
            e if e < 2900 => 1,
            e if e < 3200 => 0,
            e if e < 3500 => 6,
            _ => 5,
        };
        let noise: i64 = rng.gen_range(0..10);
        let ct = if noise < 8 {
            band + 1
        } else {
            rng.gen_range(1..=7i64)
        };

        // Wilderness area correlates with elevation.
        let wa = match elev {
            e if e < 2500 => usize::from(rng.gen_bool(0.3)) + 2,
            e if e < 3100 => usize::from(rng.gen_bool(0.5)),
            _ => usize::from(rng.gen_bool(0.7)),
        };
        // Soil type: zipf skewed, shifted by elevation band.
        let st = (soil_zipf.sample(&mut rng) + band as usize * 5) % 40;

        elevation.push(elev);
        aspect.push(asp);
        slope.push(slp);
        horiz_hydro.push(hh);
        vert_hydro.push(vh);
        horiz_road.push(hr);
        hs_9am.push(h9);
        hs_noon.push(hn);
        hs_3pm.push(h3);
        horiz_fire.push(hf);
        cover_type.push(ct);
        for (i, w) in wilderness.iter_mut().enumerate() {
            w.push(i64::from(i == wa));
        }
        for (i, s) in soil.iter_mut().enumerate() {
            s.push(i64::from(i == st));
        }
    }

    let mut columns: Vec<(String, Column)> = vec![
        (QUANTITATIVE_COLUMNS[0].into(), Column::Int(elevation)),
        (QUANTITATIVE_COLUMNS[1].into(), Column::Int(aspect)),
        (QUANTITATIVE_COLUMNS[2].into(), Column::Int(slope)),
        (QUANTITATIVE_COLUMNS[3].into(), Column::Int(horiz_hydro)),
        (QUANTITATIVE_COLUMNS[4].into(), Column::Int(vert_hydro)),
        (QUANTITATIVE_COLUMNS[5].into(), Column::Int(horiz_road)),
        (QUANTITATIVE_COLUMNS[6].into(), Column::Int(hs_9am)),
        (QUANTITATIVE_COLUMNS[7].into(), Column::Int(hs_noon)),
        (QUANTITATIVE_COLUMNS[8].into(), Column::Int(hs_3pm)),
        (QUANTITATIVE_COLUMNS[9].into(), Column::Int(horiz_fire)),
    ];
    if !config.quantitative_only {
        for (i, w) in wilderness.into_iter().enumerate() {
            columns.push((format!("wilderness_area_{}", i + 1), Column::Int(w)));
        }
        for (i, s) in soil.into_iter().enumerate() {
            columns.push((format!("soil_type_{}", i + 1), Column::Int(s)));
        }
    }
    columns.push(("cover_type".into(), Column::Int(cover_type)));

    Database::new(vec![Table::new("forest", columns)], &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::TableId;

    fn small() -> Database {
        generate_forest(&ForestConfig {
            rows: 5_000,
            quantitative_only: true,
            seed: 7,
        })
    }

    #[test]
    fn quantitative_layout() {
        let db = small();
        let t = db.table(TableId(0));
        assert_eq!(t.name, "forest");
        assert_eq!(t.columns.len(), 11);
        assert_eq!(t.row_count(), 5000);
        assert_eq!(t.columns[0].0, "elevation");
        assert_eq!(t.columns[10].0, "cover_type");
    }

    #[test]
    fn full_layout_has_55_columns() {
        let db = generate_forest(&ForestConfig {
            rows: 500,
            quantitative_only: false,
            seed: 7,
        });
        assert_eq!(db.table(TableId(0)).columns.len(), 55);
    }

    #[test]
    fn value_ranges_match_covertype() {
        let db = small();
        let t = db.table(TableId(0));
        let check = |name: &str, lo: f64, hi: f64| {
            let c = t.column_by_name(name).unwrap();
            let d = c.domain();
            assert!(d.min >= lo, "{name} min {} < {lo}", d.min);
            assert!(d.max <= hi, "{name} max {} > {hi}", d.max);
        };
        check("elevation", 1850.0, 3860.0);
        check("aspect", 0.0, 359.0);
        check("slope", 0.0, 66.0);
        check("hillshade_9am", 0.0, 254.0);
        check("cover_type", 1.0, 7.0);
        check("vertical_distance_to_hydrology", -170.0, 600.0);
    }

    #[test]
    fn cover_type_correlates_with_elevation() {
        let db = small();
        let t = db.table(TableId(0));
        let elev = t.column_by_name("elevation").unwrap();
        let ct = t.column_by_name("cover_type").unwrap();
        // Mean elevation of cover type 4 (low band) should be well below
        // cover type 6 (high band).
        let mean_for = |target: i64| {
            let mut sum = 0.0;
            let mut cnt = 0.0;
            for row in 0..t.row_count() {
                if ct.get_i64(row) == target {
                    sum += elev.get_f64(row);
                    cnt += 1.0;
                }
            }
            if cnt == 0.0 {
                f64::NAN
            } else {
                sum / cnt
            }
        };
        let low = mean_for(4);
        let high = mean_for(6);
        assert!(
            low + 300.0 < high,
            "expected elevation correlation, got low={low} high={high}"
        );
    }

    #[test]
    fn one_hot_groups_are_exclusive() {
        let db = generate_forest(&ForestConfig {
            rows: 300,
            quantitative_only: false,
            seed: 9,
        });
        let t = db.table(TableId(0));
        for row in 0..t.row_count() {
            let wa_sum: i64 = (1..=4)
                .map(|i| {
                    t.column_by_name(&format!("wilderness_area_{i}"))
                        .unwrap()
                        .get_i64(row)
                })
                .sum();
            assert_eq!(wa_sum, 1, "wilderness one-hot at row {row}");
            let soil_sum: i64 = (1..=40)
                .map(|i| {
                    t.column_by_name(&format!("soil_type_{i}"))
                        .unwrap()
                        .get_i64(row)
                })
                .sum();
            assert_eq!(soil_sum, 1, "soil one-hot at row {row}");
        }
    }

    #[test]
    fn determinism() {
        let cfg = ForestConfig {
            rows: 1000,
            quantitative_only: true,
            seed: 11,
        };
        let a = generate_forest(&cfg);
        let b = generate_forest(&cfg);
        let (ta, tb) = (a.table(TableId(0)), b.table(TableId(0)));
        for row in (0..1000).step_by(97) {
            for col in 0..ta.columns.len() {
                assert_eq!(
                    ta.columns[col].1.get_i64(row),
                    tb.columns[col].1.get_i64(row)
                );
            }
        }
    }
}
