//! Order-preserving string dictionaries.
//!
//! Section 6 of the paper: "The state-of-the-art approach to support
//! strings is to use a dictionary encoding … range predicates could only be
//! supported for sorted dictionaries." This implementation sorts, so code
//! order equals lexicographic order and string range / prefix predicates
//! reduce to numeric ranges over codes (which the bucketized QFTs encode
//! naturally).

use std::collections::HashMap;

use qfe_core::predicate::{CmpOp, PredicateExpr, SimplePredicate};
use qfe_core::{QfeError, Value};

/// A sorted string dictionary with bidirectional lookup.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<String>,
    codes: HashMap<String, u32>,
}

impl Dictionary {
    /// Build from arbitrary values (deduplicated and sorted).
    pub fn from_values(mut values: Vec<String>) -> Self {
        values.sort();
        values.dedup();
        let codes = values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as u32))
            .collect();
        Dictionary { values, codes }
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Code of `value`, if present.
    pub fn code(&self, value: &str) -> Option<u32> {
        self.codes.get(value).copied()
    }

    /// Value of `code`, if in range.
    pub fn value(&self, code: u32) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    /// Code of the first value `>= value` (for encoding range predicates on
    /// literals that are not themselves stored).
    pub fn lower_bound(&self, value: &str) -> u32 {
        self.values.partition_point(|v| v.as_str() < value) as u32
    }

    /// Translate a predicate on raw strings into an equivalent predicate on
    /// dictionary codes. Returns [`QfeError::InvalidLiteral`] for equality
    /// against a value not in the dictionary (such a predicate matches
    /// nothing; callers typically special-case it).
    pub fn encode_predicate(&self, pred: &SimplePredicate) -> Result<SimplePredicate, QfeError> {
        let Value::Str(s) = &pred.value else {
            return Ok(pred.clone());
        };
        let (op, code) = match pred.op {
            CmpOp::Eq | CmpOp::Ne => (
                pred.op,
                self.code(s).ok_or_else(|| {
                    QfeError::InvalidLiteral(format!("string '{s}' not in dictionary"))
                })?,
            ),
            // For inequalities the lower bound gives the exact frontier:
            // v < s ⟺ code(v) < lower_bound(s), v >= s ⟺ code(v) >= lower_bound(s).
            CmpOp::Lt | CmpOp::Ge => (pred.op, self.lower_bound(s)),
            // With an exact match, v <= s ⟺ code(v) <= code(s); otherwise
            // v <= s ⟺ v < s ⟺ code(v) < lower_bound(s).
            CmpOp::Le => match self.code(s) {
                Some(c) => (CmpOp::Le, c),
                None => (CmpOp::Lt, self.lower_bound(s)),
            },
            // Symmetric: without an exact match, v > s ⟺ v >= s.
            CmpOp::Gt => match self.code(s) {
                Some(c) => (CmpOp::Gt, c),
                None => (CmpOp::Ge, self.lower_bound(s)),
            },
        };
        Ok(SimplePredicate::new(op, code as i64))
    }

    /// Encode a prefix predicate `LIKE 'prefix%'` as a closed code range
    /// (Section 6: bucketized QFTs naturally support such predicates).
    /// Returns `None` when no stored value has the prefix.
    pub fn prefix_range(&self, prefix: &str) -> Option<(u32, u32)> {
        let lo = self.lower_bound(prefix);
        // The exclusive upper frontier: first value >= prefix with
        // incremented last byte; simpler: scan from lo while prefix matches.
        let mut hi = lo;
        while (hi as usize) < self.values.len() && self.values[hi as usize].starts_with(prefix) {
            hi += 1;
        }
        if hi == lo {
            None
        } else {
            Some((lo, hi - 1))
        }
    }

    /// Prefix predicate as a [`PredicateExpr`] over codes.
    pub fn prefix_expr(&self, prefix: &str) -> PredicateExpr {
        match self.prefix_range(prefix) {
            Some((lo, hi)) => PredicateExpr::And(vec![
                PredicateExpr::leaf(CmpOp::Ge, lo as i64),
                PredicateExpr::leaf(CmpOp::Le, hi as i64),
            ]),
            // Unsatisfiable: empty disjunction.
            None => PredicateExpr::Or(vec![]),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.values.iter().map(|v| v.len() + 24).sum::<usize>()
            + self.codes.len() * (std::mem::size_of::<String>() + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> Dictionary {
        Dictionary::from_values(vec![
            "cherry".into(),
            "apple".into(),
            "banana".into(),
            "apricot".into(),
            "apple".into(), // duplicate
        ])
    }

    #[test]
    fn codes_are_lexicographic() {
        let d = dict();
        assert_eq!(d.len(), 4);
        assert_eq!(d.code("apple"), Some(0));
        assert_eq!(d.code("apricot"), Some(1));
        assert_eq!(d.code("banana"), Some(2));
        assert_eq!(d.code("cherry"), Some(3));
        assert_eq!(d.value(2), Some("banana"));
        assert_eq!(d.value(9), None);
        assert_eq!(d.code("durian"), None);
    }

    #[test]
    fn lower_bound_frontiers() {
        let d = dict();
        assert_eq!(d.lower_bound("apple"), 0);
        assert_eq!(d.lower_bound("azalea"), 2); // between apricot and banana
        assert_eq!(d.lower_bound("zzz"), 4);
    }

    #[test]
    fn equality_predicates_encode_to_codes() {
        let d = dict();
        let p = SimplePredicate::new(CmpOp::Eq, "banana");
        assert_eq!(
            d.encode_predicate(&p).unwrap(),
            SimplePredicate::new(CmpOp::Eq, 2i64)
        );
        let missing = SimplePredicate::new(CmpOp::Eq, "durian");
        assert!(d.encode_predicate(&missing).is_err());
    }

    #[test]
    fn range_predicates_encode_to_code_frontiers() {
        let d = dict();
        // v >= "azalea" ⟺ code >= 2 (banana is the first such value).
        let p = d
            .encode_predicate(&SimplePredicate::new(CmpOp::Ge, "azalea"))
            .unwrap();
        assert_eq!(p, SimplePredicate::new(CmpOp::Ge, 2i64));
        // v <= "azalea" ⟺ code < 2 (apricot is the last such value).
        let p = d
            .encode_predicate(&SimplePredicate::new(CmpOp::Le, "azalea"))
            .unwrap();
        assert_eq!(p, SimplePredicate::new(CmpOp::Lt, 2i64));
        // With an exact match the operator is preserved.
        let p = d
            .encode_predicate(&SimplePredicate::new(CmpOp::Le, "banana"))
            .unwrap();
        assert_eq!(p, SimplePredicate::new(CmpOp::Le, 2i64));
    }

    #[test]
    fn encoded_range_semantics_match_string_semantics() {
        let d = dict();
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for literal in ["apple", "azalea", "cherry", "a", "zzz"] {
                let encoded = d
                    .encode_predicate(&SimplePredicate::new(op, literal))
                    .unwrap();
                for code in 0..d.len() as u32 {
                    let s = d.value(code).unwrap();
                    let string_match = match op {
                        CmpOp::Lt => s < literal,
                        CmpOp::Le => s <= literal,
                        CmpOp::Gt => s > literal,
                        CmpOp::Ge => s >= literal,
                        _ => unreachable!(),
                    };
                    assert_eq!(
                        encoded.matches_f64(code as f64),
                        string_match,
                        "op {op:?} literal {literal} code {code}"
                    );
                }
            }
        }
    }

    #[test]
    fn numeric_predicates_pass_through() {
        let d = dict();
        let p = SimplePredicate::new(CmpOp::Gt, 5i64);
        assert_eq!(d.encode_predicate(&p).unwrap(), p);
    }

    #[test]
    fn prefix_ranges() {
        let d = dict();
        assert_eq!(d.prefix_range("ap"), Some((0, 1))); // apple, apricot
        assert_eq!(d.prefix_range("banana"), Some((2, 2)));
        assert_eq!(d.prefix_range("z"), None);
        assert_eq!(d.prefix_range(""), Some((0, 3)));
    }

    #[test]
    fn prefix_expr_semantics() {
        let d = dict();
        let e = d.prefix_expr("ap");
        for code in 0..d.len() as u32 {
            let expected = d.value(code).unwrap().starts_with("ap");
            assert_eq!(e.matches_f64(code as f64), expected);
        }
        let none = d.prefix_expr("zzz");
        assert!(!none.matches_f64(0.0));
    }
}
