//! Tables and databases: named column collections plus the derived
//! [`Catalog`] consumed by featurizers and estimators.

use qfe_core::schema::{AttributeDomain, Catalog, ColumnMeta, FkEdge, TableMeta};
use qfe_core::{ColumnId, TableId};

use crate::column::Column;

/// A named table of equal-length columns.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// `(column name, column data)` pairs in declaration order.
    pub columns: Vec<(String, Column)>,
}

impl Table {
    /// Build a table, checking that all columns have equal length.
    pub fn new(name: impl Into<String>, columns: Vec<(String, Column)>) -> Self {
        let name = name.into();
        if let Some((_, first)) = columns.first() {
            let len = first.len();
            for (cname, c) in &columns {
                assert_eq!(
                    c.len(),
                    len,
                    "column {cname} of table {name} has inconsistent length"
                );
            }
        }
        Table { name, columns }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.columns.first().map_or(0, |(_, c)| c.len())
    }

    /// Column by id.
    pub fn column(&self, id: ColumnId) -> &Column {
        &self.columns[id.0].1
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// Column id by name.
    pub fn column_id(&self, name: &str) -> Option<ColumnId> {
        self.columns
            .iter()
            .position(|(n, _)| n == name)
            .map(ColumnId)
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.columns.iter().map(|(_, c)| c.memory_bytes()).sum()
    }

    fn meta(&self) -> TableMeta {
        TableMeta {
            name: self.name.clone(),
            columns: self
                .columns
                .iter()
                .map(|(n, c)| ColumnMeta {
                    name: n.clone(),
                    domain: if c.is_empty() {
                        AttributeDomain::integers(0, 0)
                    } else {
                        let mut d = c.domain();
                        d.distinct = Some(c.distinct_count());
                        d
                    },
                })
                .collect(),
            row_count: self.row_count() as u64,
        }
    }
}

/// Declared key/foreign-key relationship between database tables, by name.
#[derive(Debug, Clone)]
pub struct ForeignKey {
    /// Referencing table / column.
    pub from: (String, String),
    /// Referenced table / column.
    pub to: (String, String),
}

/// A collection of tables plus the derived catalog.
#[derive(Debug, Clone)]
pub struct Database {
    tables: Vec<Table>,
    catalog: Catalog,
}

impl Database {
    /// Build a database; derives the catalog (domains, distinct counts,
    /// FK edges) from the data.
    ///
    /// # Panics
    /// Panics if a foreign key references an unknown table or column.
    pub fn new(tables: Vec<Table>, foreign_keys: &[ForeignKey]) -> Self {
        let mut catalog = Catalog::new();
        for t in &tables {
            catalog.add_table(t.meta());
        }
        for fk in foreign_keys {
            let (ft, fc) = catalog
                .resolve(&fk.from.0, &fk.from.1)
                .unwrap_or_else(|e| panic!("bad foreign key source: {e}"));
            let (tt, tc) = catalog
                .resolve(&fk.to.0, &fk.to.1)
                .unwrap_or_else(|e| panic!("bad foreign key target: {e}"));
            catalog.add_fk_edge(FkEdge {
                from: (ft, fc),
                to: (tt, tc),
            });
        }
        Database { tables, catalog }
    }

    /// The derived catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// All tables in id order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Table by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0]
    }

    /// Table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.catalog.table_id(name)
    }

    /// Approximate heap footprint of all tables in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.tables.iter().map(Table::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let orders = Table::new(
            "orders",
            vec![
                ("id".into(), Column::Int(vec![0, 1, 2])),
                ("price".into(), Column::Float(vec![9.5, 20.0, 3.25])),
            ],
        );
        let items = Table::new(
            "items",
            vec![
                ("order_id".into(), Column::Int(vec![0, 0, 1, 2, 2])),
                ("qty".into(), Column::Int(vec![1, 2, 3, 4, 5])),
            ],
        );
        Database::new(
            vec![orders, items],
            &[ForeignKey {
                from: ("items".into(), "order_id".into()),
                to: ("orders".into(), "id".into()),
            }],
        )
    }

    #[test]
    fn catalog_is_derived_from_data() {
        let db = db();
        let cat = db.catalog();
        assert_eq!(cat.table_count(), 2);
        let orders = cat.table(TableId(0));
        assert_eq!(orders.row_count, 3);
        assert_eq!(orders.columns[1].name, "price");
        assert_eq!(orders.columns[1].domain.min, 3.25);
        assert_eq!(orders.columns[1].domain.max, 20.0);
        assert_eq!(orders.columns[1].domain.distinct, Some(3));
        assert_eq!(cat.fk_edges().len(), 1);
    }

    #[test]
    fn table_lookups() {
        let db = db();
        let items = db.table(db.table_id("items").unwrap());
        assert_eq!(items.row_count(), 5);
        assert_eq!(items.column_id("qty"), Some(ColumnId(1)));
        assert!(items.column_by_name("qty").is_some());
        assert!(items.column_by_name("nope").is_none());
    }

    #[test]
    fn memory_accounting() {
        let db = db();
        assert_eq!(db.memory_bytes(), 3 * 8 + 3 * 8 + 5 * 8 + 5 * 8);
    }

    #[test]
    #[should_panic(expected = "inconsistent length")]
    fn mismatched_column_lengths_rejected() {
        let _ = Table::new(
            "bad",
            vec![
                ("a".into(), Column::Int(vec![1, 2])),
                ("b".into(), Column::Int(vec![1])),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "bad foreign key")]
    fn unknown_fk_rejected() {
        let t = Table::new("t", vec![("a".into(), Column::Int(vec![1]))]);
        let _ = Database::new(
            vec![t],
            &[ForeignKey {
                from: ("t".into(), "a".into()),
                to: ("missing".into(), "x".into()),
            }],
        );
    }
}
