//! Synthetic IMDB-shaped multi-table dataset for the join experiments.
//!
//! The paper's second dataset is the Internet Movie Database with the
//! JOB-light benchmark [12, 16]. Real IMDb snapshots are licensed and
//! large, so this generator builds the six-table star schema JOB-light
//! touches, with key/foreign-key edges onto `title.id`:
//!
//! ```text
//! title(id, kind_id, production_year)
//! cast_info(movie_id → title.id, person_id, role_id)
//! movie_companies(movie_id → title.id, company_id, company_type_id)
//! movie_info(movie_id → title.id, info_type_id)
//! movie_info_idx(movie_id → title.id, info_type_id)
//! movie_keyword(movie_id → title.id, keyword_id)
//! ```
//!
//! Fan-outs are zipfian (popular movies accumulate more cast entries,
//! keywords, …) and correlated with `production_year` (recent movies have
//! more rows in the fact tables), which is what makes join-cardinality
//! estimation non-trivial — exactly the regime JOB-light stresses.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::column::Column;
use crate::generator::{skewed_int, Zipf};
use crate::table::{Database, ForeignKey, Table};

/// Configuration for the IMDB generator. Row counts of the fact tables are
/// per-title expectations times `titles`.
#[derive(Debug, Clone)]
pub struct ImdbConfig {
    /// Number of `title` rows.
    pub titles: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        ImdbConfig {
            titles: 20_000,
            seed: 0x1_4DB, // "imdb"
        }
    }
}

/// The fact tables joined onto `title` (name, per-title mean fan-out,
/// zipf skew of the per-title popularity, attribute column name, attribute
/// cardinality, attribute zipf skew).
const FACT_TABLES: [(&str, f64, f64, &str, i64, f64); 5] = [
    ("cast_info", 3.6, 1.1, "role_id", 11, 1.0),
    ("movie_companies", 1.3, 0.9, "company_type_id", 2, 0.3),
    ("movie_info", 2.0, 1.0, "info_type_id", 113, 1.1),
    ("movie_info_idx", 1.35, 0.9, "info_type_id", 113, 1.3),
    ("movie_keyword", 1.8, 1.2, "keyword_id", 500, 1.1),
];

/// Generate the IMDB-shaped database.
pub fn generate_imdb(config: &ImdbConfig) -> Database {
    assert!(config.titles > 0, "need at least one title");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_titles = config.titles;

    // title: id (PK), kind_id in 1..=7 (zipf: most titles are movies/eps),
    // production_year in 1900..=2019 skewed toward recent years.
    let kind_zipf = Zipf::new(7, 1.2);
    let mut title_id = Vec::with_capacity(n_titles);
    let mut kind_id = Vec::with_capacity(n_titles);
    let mut production_year = Vec::with_capacity(n_titles);
    for id in 0..n_titles {
        title_id.push(id as i64);
        kind_id.push(kind_zipf.sample(&mut rng) as i64 + 1);
        // Skew toward recent: sample offset from 2019 downward.
        let back = skewed_int(&mut rng, 0, 119, 4.0);
        production_year.push(2019 - back);
    }

    // Popularity rank per title: how strongly it attracts fact rows.
    // Recent titles are more popular on average.
    let mut popularity: Vec<f64> = (0..n_titles)
        .map(|i| {
            let recency = (production_year[i] - 1900) as f64 / 119.0;
            let base: f64 = rng.gen::<f64>().powf(5.0); // heavy-tailed weight
            base * (0.4 + 1.2 * recency)
        })
        .collect();
    let pop_total: f64 = popularity.iter().sum();
    for p in &mut popularity {
        *p /= pop_total;
    }
    // Cumulative distribution for weighted title picks.
    let mut pop_cdf = Vec::with_capacity(n_titles);
    let mut acc = 0.0;
    for &p in &popularity {
        acc += p;
        pop_cdf.push(acc);
    }

    let mut tables = vec![Table::new(
        "title",
        vec![
            ("id".into(), Column::Int(title_id)),
            ("kind_id".into(), Column::Int(kind_id)),
            ("production_year".into(), Column::Int(production_year)),
        ],
    )];
    let mut fks = Vec::new();

    for (name, mean_fanout, _skew, attr_name, attr_card, attr_skew) in FACT_TABLES {
        let rows = (n_titles as f64 * mean_fanout) as usize;
        let attr_zipf = Zipf::new(attr_card as usize, attr_skew);
        let mut movie_id = Vec::with_capacity(rows);
        let mut attr = Vec::with_capacity(rows);
        let mut extra: Vec<i64> = Vec::with_capacity(rows);
        for _ in 0..rows {
            let u: f64 = rng.gen();
            let t = pop_cdf.partition_point(|&c| c < u).min(n_titles - 1);
            movie_id.push(t as i64);
            // Attribute value correlates with the movie's kind via a shift,
            // so per-table selections interact with the join distribution.
            let base = attr_zipf.sample(&mut rng) as i64;
            attr.push((base + (t as i64 % 3)) % attr_card + 1);
            extra.push(skewed_int(&mut rng, 1, 10_000, 1.3));
        }
        let extra_name = match name {
            "cast_info" => "person_id",
            "movie_companies" => "company_id",
            "movie_keyword" => "keyword_rank",
            _ => "info_rank",
        };
        tables.push(Table::new(
            name,
            vec![
                ("movie_id".into(), Column::Int(movie_id)),
                (attr_name.into(), Column::Int(attr)),
                (extra_name.into(), Column::Int(extra)),
            ],
        ));
        fks.push(ForeignKey {
            from: (name.into(), "movie_id".into()),
            to: ("title".into(), "id".into()),
        });
    }

    Database::new(tables, &fks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::TableId;

    fn small() -> Database {
        generate_imdb(&ImdbConfig {
            titles: 2_000,
            seed: 3,
        })
    }

    #[test]
    fn schema_layout() {
        let db = small();
        assert_eq!(db.tables().len(), 6);
        assert_eq!(db.catalog().fk_edges().len(), 5);
        let title = db.table(db.table_id("title").unwrap());
        assert_eq!(title.row_count(), 2000);
        assert!(db.table_id("cast_info").is_some());
        assert!(db.table_id("movie_keyword").is_some());
    }

    #[test]
    fn fk_values_reference_existing_titles() {
        let db = small();
        for name in [
            "cast_info",
            "movie_companies",
            "movie_info",
            "movie_info_idx",
            "movie_keyword",
        ] {
            let t = db.table(db.table_id(name).unwrap());
            let mid = t.column_by_name("movie_id").unwrap();
            for row in 0..t.row_count() {
                let v = mid.get_i64(row);
                assert!((0..2000).contains(&v), "{name} row {row}: movie_id {v}");
            }
        }
    }

    #[test]
    fn fan_outs_are_skewed() {
        let db = small();
        let ci = db.table(db.table_id("cast_info").unwrap());
        let mid = ci.column_by_name("movie_id").unwrap();
        let mut counts = vec![0usize; 2000];
        for row in 0..ci.row_count() {
            counts[mid.get_i64(row) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let mean = ci.row_count() as f64 / 2000.0;
        assert!(
            max as f64 > mean * 5.0,
            "expected skewed fan-out, max {max} mean {mean}"
        );
    }

    #[test]
    fn production_year_skews_recent() {
        let db = small();
        let title = db.table(db.table_id("title").unwrap());
        let year = title.column_by_name("production_year").unwrap();
        let recent = (0..title.row_count())
            .filter(|&r| year.get_i64(r) >= 2000)
            .count();
        assert!(
            recent * 2 > title.row_count(),
            "expected most titles after 2000, got {recent}/2000"
        );
    }

    #[test]
    fn attribute_domains() {
        let db = small();
        let ci = db.table(db.table_id("cast_info").unwrap());
        let role = ci.column_by_name("role_id").unwrap().domain();
        assert!(role.min >= 1.0 && role.max <= 11.0);
        let mc = db.table(db.table_id("movie_companies").unwrap());
        let ct = mc.column_by_name("company_type_id").unwrap().domain();
        assert!(ct.min >= 1.0 && ct.max <= 2.0);
    }

    #[test]
    fn determinism() {
        let cfg = ImdbConfig {
            titles: 500,
            seed: 99,
        };
        let a = generate_imdb(&cfg);
        let b = generate_imdb(&cfg);
        let (ta, tb) = (a.table(TableId(1)), b.table(TableId(1)));
        assert_eq!(ta.row_count(), tb.row_count());
        for row in (0..ta.row_count()).step_by(53) {
            assert_eq!(ta.columns[0].1.get_i64(row), tb.columns[0].1.get_i64(row));
        }
    }
}
