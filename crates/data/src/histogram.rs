//! Per-column statistics for the Postgres-style baseline estimator:
//! equi-depth histograms and most-common-value (MCV) lists, mirroring
//! PostgreSQL's `pg_stats` (`histogram_bounds` + `most_common_vals`).

use qfe_core::predicate::{CmpOp, SimplePredicate};
use qfe_core::schema::AttributeDomain;

use crate::column::Column;

/// An equi-depth histogram over one column plus an MCV list.
///
/// Selectivity estimation follows PostgreSQL's approach: MCVs are matched
/// exactly; the remaining mass is spread over the histogram buckets with
/// linear interpolation inside a bucket.
#[derive(Debug, Clone)]
pub struct EquiDepthHistogram {
    /// Bucket boundaries, `buckets + 1` entries, first = min, last = max.
    bounds: Vec<f64>,
    /// Most common values with their frequencies (fraction of rows).
    mcvs: Vec<(f64, f64)>,
    /// Fraction of rows not covered by the MCV list.
    non_mcv_fraction: f64,
    /// Distinct count estimate of non-MCV values.
    non_mcv_distinct: f64,
    /// Total rows the histogram was built from.
    row_count: usize,
}

impl EquiDepthHistogram {
    /// Build from a column with `buckets` histogram buckets and up to
    /// `mcv_count` most common values.
    ///
    /// # Panics
    /// Panics on empty columns.
    pub fn build(column: &Column, buckets: usize, mcv_count: usize) -> Self {
        let mut values = column.to_f64_vec();
        assert!(
            !values.is_empty(),
            "cannot build histogram over empty column"
        );
        let row_count = values.len();
        values.sort_by(f64::total_cmp);

        // MCV list: run-length over the sorted values.
        let mut runs: Vec<(f64, usize)> = Vec::new();
        for &v in &values {
            match runs.last_mut() {
                Some((rv, c)) if *rv == v => *c += 1,
                _ => runs.push((v, 1)),
            }
        }
        let distinct = runs.len() as f64;
        runs.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let mcvs: Vec<(f64, f64)> = runs
            .iter()
            .take(mcv_count)
            // Only keep values that are genuinely common (PG uses a similar
            // frequency cutoff); a value occurring once is not an MCV.
            .filter(|(_, c)| *c > 1)
            .map(|&(v, c)| (v, c as f64 / row_count as f64))
            .collect();
        let mcv_fraction: f64 = mcvs.iter().map(|(_, f)| f).sum();

        // Histogram over the remaining (non-MCV) values.
        let mcv_values: Vec<f64> = mcvs.iter().map(|&(v, _)| v).collect();
        let rest: Vec<f64> = values
            .iter()
            .copied()
            .filter(|v| !mcv_values.contains(v))
            .collect();
        let hist_source = if rest.is_empty() { &values } else { &rest };
        let buckets = buckets.max(1).min(hist_source.len());
        let mut bounds = Vec::with_capacity(buckets + 1);
        for i in 0..=buckets {
            let pos = (i * (hist_source.len() - 1)) / buckets;
            bounds.push(hist_source[pos]);
        }

        EquiDepthHistogram {
            bounds,
            mcvs,
            non_mcv_fraction: (1.0 - mcv_fraction).max(0.0),
            non_mcv_distinct: (distinct - mcv_values.len() as f64).max(1.0),
            row_count,
        }
    }

    /// Estimated selectivity of `column op literal`.
    pub fn selectivity(&self, pred: &SimplePredicate) -> f64 {
        let Some(v) = pred.value.as_f64() else {
            return 0.0;
        };
        match pred.op {
            CmpOp::Eq => self.eq_selectivity(v),
            CmpOp::Ne => (1.0 - self.eq_selectivity(v)).max(0.0),
            CmpOp::Lt => self.lt_selectivity(v),
            CmpOp::Le => self.lt_selectivity(v) + self.eq_selectivity(v),
            CmpOp::Gt => (1.0 - self.lt_selectivity(v) - self.eq_selectivity(v)).max(0.0),
            CmpOp::Ge => (1.0 - self.lt_selectivity(v)).max(0.0),
        }
        .clamp(0.0, 1.0)
    }

    fn eq_selectivity(&self, v: f64) -> f64 {
        if let Some(&(_, f)) = self.mcvs.iter().find(|&&(mv, _)| mv == v) {
            return f;
        }
        // Uniform share of the non-MCV mass.
        self.non_mcv_fraction / self.non_mcv_distinct
    }

    /// Fraction of rows strictly below `v`.
    fn lt_selectivity(&self, v: f64) -> f64 {
        // MCV contribution.
        let mcv_part: f64 = self
            .mcvs
            .iter()
            .filter(|&&(mv, _)| mv < v)
            .map(|&(_, f)| f)
            .sum();
        // Histogram contribution with linear interpolation.
        let hist_part = self.histogram_fraction_below(v) * self.non_mcv_fraction;
        mcv_part + hist_part
    }

    fn histogram_fraction_below(&self, v: f64) -> f64 {
        let n_buckets = self.bounds.len() - 1;
        if n_buckets == 0 || v <= self.bounds[0] {
            return 0.0;
        }
        if v > *self.bounds.last().unwrap() {
            return 1.0;
        }
        let mut fraction = 0.0;
        for b in 0..n_buckets {
            let (lo, hi) = (self.bounds[b], self.bounds[b + 1]);
            if v > hi {
                fraction += 1.0;
            } else if v > lo && hi > lo {
                fraction += (v - lo) / (hi - lo);
                break;
            } else {
                break;
            }
        }
        fraction / n_buckets as f64
    }

    /// Histogram bucket boundaries.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// The MCV list `(value, frequency)`.
    pub fn mcvs(&self) -> &[(f64, f64)] {
        &self.mcvs
    }

    /// Rows the histogram was built from.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bounds.len() * 8 + self.mcvs.len() * 16 + std::mem::size_of::<Self>()
    }
}

/// Statistics bundle used by the Postgres-style estimator: histogram per
/// column plus the attribute domain.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// The histogram + MCVs.
    pub histogram: EquiDepthHistogram,
    /// Domain of the column.
    pub domain: AttributeDomain,
    /// Exact distinct count (PG keeps `n_distinct`).
    pub distinct: u64,
}

impl ColumnStats {
    /// Build from a column.
    pub fn build(column: &Column, buckets: usize, mcv_count: usize) -> Self {
        ColumnStats {
            histogram: EquiDepthHistogram::build(column, buckets, mcv_count),
            domain: column.domain(),
            distinct: column.distinct_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_column() -> Column {
        Column::Int((0..1000).collect())
    }

    #[test]
    fn uniform_range_selectivity_is_accurate() {
        let h = EquiDepthHistogram::build(&uniform_column(), 32, 8);
        let s = h.selectivity(&SimplePredicate::new(CmpOp::Lt, 500));
        assert!((s - 0.5).abs() < 0.05, "selectivity {s}");
        let s = h.selectivity(&SimplePredicate::new(CmpOp::Ge, 900));
        assert!((s - 0.1).abs() < 0.05, "selectivity {s}");
    }

    #[test]
    fn eq_selectivity_on_uniform_data() {
        let h = EquiDepthHistogram::build(&uniform_column(), 32, 8);
        let s = h.selectivity(&SimplePredicate::new(CmpOp::Eq, 123));
        assert!((s - 0.001).abs() < 0.001, "selectivity {s}");
    }

    #[test]
    fn mcvs_capture_heavy_hitters() {
        // 50% of rows are value 7.
        let mut vals: Vec<i64> = vec![7; 500];
        vals.extend(0..500);
        let col = Column::Int(vals);
        let h = EquiDepthHistogram::build(&col, 16, 4);
        assert!(h.mcvs().iter().any(|&(v, f)| v == 7.0 && f > 0.49));
        let s = h.selectivity(&SimplePredicate::new(CmpOp::Eq, 7));
        assert!(s > 0.49 && s < 0.52, "selectivity {s}");
        let s_ne = h.selectivity(&SimplePredicate::new(CmpOp::Ne, 7));
        assert!((s + s_ne - 1.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_literals() {
        let h = EquiDepthHistogram::build(&uniform_column(), 16, 4);
        assert_eq!(h.selectivity(&SimplePredicate::new(CmpOp::Lt, -10)), 0.0);
        let s = h.selectivity(&SimplePredicate::new(CmpOp::Lt, 10_000));
        assert!(s > 0.99);
        let s = h.selectivity(&SimplePredicate::new(CmpOp::Gt, 10_000));
        assert!(s < 0.01);
    }

    #[test]
    fn le_ge_complementarity() {
        let h = EquiDepthHistogram::build(&uniform_column(), 32, 8);
        for v in [100, 500, 900] {
            let le = h.selectivity(&SimplePredicate::new(CmpOp::Le, v));
            let gt = h.selectivity(&SimplePredicate::new(CmpOp::Gt, v));
            assert!((le + gt - 1.0).abs() < 1e-6, "v = {v}");
        }
    }

    #[test]
    fn skewed_data_beats_uniformity_assumption() {
        // Heavily skewed: 90% of rows in [0, 10), rest in [10, 1000).
        let mut vals = Vec::new();
        for i in 0..900 {
            vals.push(i % 10);
        }
        for i in 0..100 {
            vals.push(10 + i * 9);
        }
        let col = Column::Int(vals);
        let h = EquiDepthHistogram::build(&col, 32, 0);
        let s = h.selectivity(&SimplePredicate::new(CmpOp::Lt, 10));
        assert!(s > 0.8, "histogram should capture the skew, got {s}");
    }

    #[test]
    fn constant_column() {
        let col = Column::Int(vec![5; 100]);
        let h = EquiDepthHistogram::build(&col, 8, 4);
        let s = h.selectivity(&SimplePredicate::new(CmpOp::Eq, 5));
        assert!(s > 0.99);
        assert_eq!(h.row_count(), 100);
    }

    #[test]
    fn column_stats_bundle() {
        let stats = ColumnStats::build(&uniform_column(), 16, 4);
        assert_eq!(stats.distinct, 1000);
        assert_eq!(stats.domain.min, 0.0);
        assert_eq!(stats.domain.max, 999.0);
        assert!(stats.histogram.memory_bytes() > 0);
    }

    #[test]
    fn string_literal_selectivity_is_zero() {
        let h = EquiDepthHistogram::build(&uniform_column(), 8, 2);
        assert_eq!(h.selectivity(&SimplePredicate::new(CmpOp::Eq, "raw")), 0.0);
    }
}

/// Equi-depth bucket edges for one column: `n - 1` sorted inner cut
/// points producing `n` buckets of roughly equal row counts. Used by
/// `qfe_core::featurize::EquiDepthConjunctionEncoding` (the data-driven
/// partitioning refinement Section 3.2 of the paper suggests).
pub fn equi_depth_edges(column: &Column, n: usize) -> Vec<f64> {
    assert!(n >= 1, "need at least one bucket");
    let mut values = column.to_f64_vec();
    assert!(!values.is_empty(), "cannot partition an empty column");
    values.sort_by(f64::total_cmp);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for i in 1..n {
        let pos = i * (values.len() - 1) / n;
        edges.push(values[pos]);
    }
    edges.dedup();
    edges
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn uniform_edges_are_evenly_spaced() {
        let col = Column::Int((0..1000).collect());
        let edges = equi_depth_edges(&col, 4);
        assert_eq!(edges.len(), 3);
        assert!((edges[0] - 249.0).abs() <= 1.0);
        assert!((edges[1] - 499.0).abs() <= 1.0);
        assert!((edges[2] - 749.0).abs() <= 1.0);
    }

    #[test]
    fn skewed_edges_concentrate_in_dense_region() {
        // 90% of values below 10.
        let mut vals: Vec<i64> = (0..900).map(|i| i % 10).collect();
        vals.extend((0..100).map(|i| 10 + i * 10));
        let col = Column::Int(vals);
        let edges = equi_depth_edges(&col, 8);
        let below_10 = edges.iter().filter(|&&e| e < 10.0).count();
        assert!(
            below_10 >= 5,
            "edges below 10: {below_10} of {}",
            edges.len()
        );
    }

    #[test]
    fn constant_column_collapses() {
        let col = Column::Int(vec![7; 100]);
        let edges = equi_depth_edges(&col, 8);
        assert_eq!(edges, vec![7.0]);
    }

    #[test]
    fn single_bucket_has_no_edges() {
        let col = Column::Int(vec![1, 2, 3]);
        assert!(equi_depth_edges(&col, 1).is_empty());
    }
}
