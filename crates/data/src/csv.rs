//! Minimal CSV loading into columnar tables.
//!
//! The synthetic generators are stand-ins for the paper's datasets; this
//! loader lets a user with access to the real files (e.g. the UCI
//! covertype CSV) run the same pipeline on them. No external CSV crate:
//! the format accepted is simple comma-separated values with an optional
//! header, no quoting/escaping (sufficient for the numeric datasets the
//! paper uses; string columns are dictionary-encoded on load).

use std::io::BufRead;
use std::path::Path;

use crate::column::Column;
use crate::dictionary::Dictionary;
use crate::table::Table;

/// How each CSV column should be typed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsvType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Dictionary-encoded string.
    Str,
}

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// I/O failure.
    Io(std::io::Error),
    /// A row had the wrong number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Expected fields.
        expected: usize,
        /// Found fields.
        found: usize,
    },
    /// A field failed to parse under the declared type.
    Parse {
        /// 1-based line number.
        line: usize,
        /// 0-based column.
        column: usize,
        /// Offending text.
        text: String,
    },
    /// The file contained no data rows.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv i/o error: {e}"),
            CsvError::FieldCount {
                line,
                expected,
                found,
            } => write!(f, "line {line}: expected {expected} fields, found {found}"),
            CsvError::Parse { line, column, text } => {
                write!(f, "line {line}, column {column}: cannot parse '{text}'")
            }
            CsvError::Empty => write!(f, "csv contains no data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parse CSV text into a table. `types` declares one entry per column;
/// `header` skips the first line. Column names come from the header when
/// present, else `c0`, `c1`, ….
pub fn parse_csv(
    name: &str,
    reader: impl BufRead,
    types: &[CsvType],
    header: bool,
) -> Result<Table, CsvError> {
    let mut names: Vec<String> = (0..types.len()).map(|i| format!("c{i}")).collect();
    let mut ints: Vec<Vec<i64>> = vec![Vec::new(); types.len()];
    let mut floats: Vec<Vec<f64>> = vec![Vec::new(); types.len()];
    let mut strings: Vec<Vec<String>> = vec![Vec::new(); types.len()];
    let mut rows = 0usize;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if lineno == 0 && header {
            if fields.len() == types.len() {
                names = fields.iter().map(|s| s.trim().to_owned()).collect();
            }
            continue;
        }
        if fields.len() != types.len() {
            return Err(CsvError::FieldCount {
                line: lineno + 1,
                expected: types.len(),
                found: fields.len(),
            });
        }
        for (ci, (field, ty)) in fields.iter().zip(types).enumerate() {
            let field = field.trim();
            match ty {
                CsvType::Int => {
                    let v: i64 = field.parse().map_err(|_| CsvError::Parse {
                        line: lineno + 1,
                        column: ci,
                        text: field.to_owned(),
                    })?;
                    ints[ci].push(v);
                }
                CsvType::Float => {
                    let v: f64 = field.parse().map_err(|_| CsvError::Parse {
                        line: lineno + 1,
                        column: ci,
                        text: field.to_owned(),
                    })?;
                    floats[ci].push(v);
                }
                CsvType::Str => strings[ci].push(field.to_owned()),
            }
        }
        rows += 1;
    }
    if rows == 0 {
        return Err(CsvError::Empty);
    }

    let mut columns = Vec::with_capacity(types.len());
    for (ci, ty) in types.iter().enumerate() {
        let column = match ty {
            CsvType::Int => Column::Int(std::mem::take(&mut ints[ci])),
            CsvType::Float => Column::Float(std::mem::take(&mut floats[ci])),
            CsvType::Str => {
                let values = std::mem::take(&mut strings[ci]);
                let dict = Dictionary::from_values(values.clone());
                let codes = values
                    .iter()
                    .map(|v| dict.code(v).expect("value just inserted"))
                    .collect();
                Column::Dict { codes, dict }
            }
        };
        columns.push((names[ci].clone(), column));
    }
    Ok(Table::new(name, columns))
}

/// Load a CSV file from disk.
pub fn load_csv(
    name: &str,
    path: impl AsRef<Path>,
    types: &[CsvType],
    header: bool,
) -> Result<Table, CsvError> {
    let file = std::fs::File::open(path)?;
    parse_csv(name, std::io::BufReader::new(file), types, header)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_typed_columns() {
        let csv = "id,price,tag\n1,2.5,b\n2,3.5,a\n3,1.0,b\n";
        let t = parse_csv(
            "t",
            csv.as_bytes(),
            &[CsvType::Int, CsvType::Float, CsvType::Str],
            true,
        )
        .unwrap();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.columns[0].0, "id");
        assert_eq!(t.column_by_name("id").unwrap().get_i64(2), 3);
        assert_eq!(t.column_by_name("price").unwrap().get_f64(0), 2.5);
        // Dictionary codes are lexicographic: a=0, b=1.
        assert_eq!(t.column_by_name("tag").unwrap().get_i64(0), 1);
        assert_eq!(t.column_by_name("tag").unwrap().get_i64(1), 0);
    }

    #[test]
    fn headerless_generates_names() {
        let t = parse_csv(
            "t",
            "1,2\n3,4\n".as_bytes(),
            &[CsvType::Int, CsvType::Int],
            false,
        )
        .unwrap();
        assert_eq!(t.columns[0].0, "c0");
        assert_eq!(t.columns[1].0, "c1");
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let t = parse_csv("t", "1\n\n2\n\n".as_bytes(), &[CsvType::Int], false).unwrap();
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn field_count_mismatch_is_reported() {
        let err = parse_csv(
            "t",
            "1,2\n3\n".as_bytes(),
            &[CsvType::Int, CsvType::Int],
            false,
        )
        .unwrap_err();
        assert!(matches!(err, CsvError::FieldCount { line: 2, .. }), "{err}");
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = parse_csv("t", "1\nxyz\n".as_bytes(), &[CsvType::Int], false).unwrap_err();
        match err {
            CsvError::Parse { line, column, text } => {
                assert_eq!((line, column), (2, 0));
                assert_eq!(text, "xyz");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(
            parse_csv("t", "".as_bytes(), &[CsvType::Int], false),
            Err(CsvError::Empty)
        ));
        assert!(matches!(
            parse_csv("t", "a\n".as_bytes(), &[CsvType::Int], true),
            Err(CsvError::Empty)
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("qfe_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.csv");
        std::fs::write(&path, "a,b\n1,x\n2,y\n").unwrap();
        let t = load_csv("t", &path, &[CsvType::Int, CsvType::Str], true).unwrap();
        assert_eq!(t.row_count(), 2);
        let _ = std::fs::remove_file(path);
    }
}
