//! Query-drift splits (Section 5.5.1).
//!
//! "Low-dimensional queries, mentioning at most two distinct attributes,
//! are used for training. For testing, high-dimensional queries,
//! mentioning at least three distinct attributes, are used." The split
//! changes both input characteristics (fewer all-one entries in the
//! feature vectors) and output characteristics (smaller result sizes).

use qfe_core::Query;

/// Indices of queries usable for drift training (at most `max_train_attrs`
/// attributes) and drift testing (strictly more).
pub fn drift_split(queries: &[Query], max_train_attrs: usize) -> (Vec<usize>, Vec<usize>) {
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        if q.attribute_count() <= max_train_attrs {
            train.push(i);
        } else {
            test.push(i);
        }
    }
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conjunctive::{generate_conjunctive, ConjunctiveConfig};
    use qfe_core::TableId;
    use qfe_data::forest::{generate_forest, ForestConfig};

    #[test]
    fn splits_by_attribute_count() {
        let cat = generate_forest(&ForestConfig {
            rows: 200,
            quantitative_only: true,
            seed: 1,
        })
        .catalog()
        .clone();
        let queries = generate_conjunctive(&cat, &ConjunctiveConfig::new(TableId(0), 300, 4));
        let (train, test) = drift_split(&queries, 2);
        assert_eq!(train.len() + test.len(), 300);
        assert!(!train.is_empty() && !test.is_empty());
        for &i in &train {
            assert!(queries[i].attribute_count() <= 2);
        }
        for &i in &test {
            assert!(queries[i].attribute_count() >= 3);
        }
    }

    #[test]
    fn empty_input() {
        let (train, test) = drift_split(&[], 2);
        assert!(train.is_empty() && test.is_empty());
    }
}
