//! # qfe-workload
//!
//! Query workload generators reproducing the paper's evaluation workloads
//! (Section 5, "Data sets & query workloads"):
//!
//! * [`conjunctive`] — forest-style conjunctive queries: `k` distinct
//!   attributes drawn uniformly, a random closed range per attribute, plus
//!   `l ∈ [0, 5]` not-equal predicates excluding values inside the range.
//! * [`mixed`] — mixed queries (Definition 3.3): the per-attribute
//!   generation is repeated `m ∈ [1, 3]` times and the conjunctions are
//!   concatenated with OR.
//! * [`job_light`] — the JOB-light-shaped join benchmark over the
//!   synthetic IMDB schema: a fixed suite of 70 test queries with 2–5
//!   joined tables and 1–5 conjunctive predicates, plus a generator for
//!   large training workloads of the same shape.
//! * [`grouped`] — grouped queries (paper Section 6): conjunctive
//!   selections plus random GROUP BY attribute sets.
//! * [`drift`] — the query-drift split of Section 5.5.1 (train on at most
//!   two attributes, test on at least three).
//!
//! All generators are seeded and deterministic.

pub mod conjunctive;
pub mod drift;
pub mod grouped;
pub mod job_light;
pub mod mixed;

pub use conjunctive::{generate_conjunctive, generate_conjunctive_with_data, ConjunctiveConfig};
pub use grouped::{generate_grouped, GroupedConfig};
pub use job_light::{generate_join_workload, job_light_suite, JoinWorkloadConfig};
pub use mixed::{generate_mixed, generate_mixed_with_data, MixedConfig};
