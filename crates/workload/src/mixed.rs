//! The mixed query workload (Section 5):
//!
//! "The generation is the same as for conjunctive queries, except that we
//! repeat the generation for the per-attribute predicates between `m`,
//! `1 ≤ m ≤ 3` times and concatenate them via OR." This yields mixed
//! queries in the sense of Definition 3.3: conjunctions of per-attribute
//! compound predicates, each an OR of closed-range conjunctions.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use qfe_core::predicate::{CompoundPredicate, PredicateExpr};
use qfe_core::query::ColumnRef;
use qfe_core::schema::Catalog;
use qfe_core::{ColumnId, Query, TableId};

use qfe_data::Database;

use crate::conjunctive::random_attribute_conjunct;

/// Configuration of the mixed workload generator.
#[derive(Debug, Clone)]
pub struct MixedConfig {
    /// The table to query.
    pub table: TableId,
    /// Number of queries to generate.
    pub count: usize,
    /// Minimum distinct attributes per query.
    pub min_attrs: usize,
    /// Maximum distinct attributes per query.
    pub max_attrs: usize,
    /// Maximum `<>` predicates per conjunction (paper: 5).
    pub max_not_equals: usize,
    /// Maximum disjuncts per attribute (paper: 3).
    pub max_disjuncts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MixedConfig {
    /// Paper-style defaults for `table`.
    pub fn new(table: TableId, count: usize, seed: u64) -> Self {
        MixedConfig {
            table,
            count,
            min_attrs: 1,
            max_attrs: 8,
            max_not_equals: 5,
            max_disjuncts: 3,
            seed,
        }
    }
}

/// Generate the mixed workload with domain-uniform literals.
pub fn generate_mixed(catalog: &Catalog, config: &MixedConfig) -> Vec<Query> {
    generate_mixed_inner(catalog, config, None)
}

/// Generate the mixed workload with data-aware literals (see
/// [`crate::conjunctive::generate_conjunctive_with_data`]).
pub fn generate_mixed_with_data(db: &Database, config: &MixedConfig) -> Vec<Query> {
    generate_mixed_inner(db.catalog(), config, Some(db))
}

fn generate_mixed_inner(
    catalog: &Catalog,
    config: &MixedConfig,
    db: Option<&Database>,
) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let columns = catalog.table(config.table).columns.len();
    assert!(columns > 0, "table has no columns");
    let max_attrs = config.max_attrs.min(columns);
    let min_attrs = config.min_attrs.clamp(1, max_attrs);
    let mut queries = Vec::with_capacity(config.count);
    let mut column_ids: Vec<usize> = (0..columns).collect();
    for _ in 0..config.count {
        let k = rng.gen_range(min_attrs..=max_attrs);
        column_ids.shuffle(&mut rng);
        let mut predicates = Vec::with_capacity(k);
        for &ci in column_ids.iter().take(k) {
            let col = ColumnRef::new(config.table, ColumnId(ci));
            let domain = catalog.domain(config.table, ColumnId(ci));
            let m = rng.gen_range(1..=config.max_disjuncts);
            let disjuncts: Vec<PredicateExpr> = (0..m)
                .map(|_| {
                    let preds = match db {
                        Some(db) => {
                            let column = db.table(config.table).column(ColumnId(ci));
                            let rows = column.len();
                            let sampler =
                                move |rng: &mut StdRng| column.get_f64(rng.gen_range(0..rows));
                            random_attribute_conjunct(
                                domain,
                                config.max_not_equals,
                                &mut rng,
                                Some(&sampler),
                            )
                        }
                        None => {
                            random_attribute_conjunct(domain, config.max_not_equals, &mut rng, None)
                        }
                    };
                    PredicateExpr::all_of(preds)
                })
                .collect();
            let expr = if disjuncts.len() == 1 {
                disjuncts.into_iter().next().unwrap()
            } else {
                PredicateExpr::Or(disjuncts)
            };
            predicates.push(CompoundPredicate { column: col, expr });
        }
        queries.push(Query::single_table(config.table, predicates));
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_data::forest::{generate_forest, ForestConfig};

    fn catalog() -> Catalog {
        generate_forest(&ForestConfig {
            rows: 500,
            quantitative_only: true,
            seed: 1,
        })
        .catalog()
        .clone()
    }

    #[test]
    fn contains_disjunctions() {
        let cat = catalog();
        let cfg = MixedConfig::new(TableId(0), 200, 5);
        let queries = generate_mixed(&cat, &cfg);
        let with_or = queries.iter().filter(|q| !q.is_conjunctive()).count();
        assert!(
            with_or > 100,
            "most mixed queries should contain an OR, got {with_or}/200"
        );
        for q in &queries {
            q.validate(&cat).unwrap();
        }
    }

    #[test]
    fn disjunct_counts_bounded() {
        let cat = catalog();
        let cfg = MixedConfig::new(TableId(0), 100, 6);
        for q in generate_mixed(&cat, &cfg) {
            for cp in &q.predicates {
                let dnf = cp.expr.to_dnf().unwrap();
                assert!((1..=3).contains(&dnf.len()), "disjuncts {}", dnf.len());
            }
        }
    }

    #[test]
    fn attribute_counts_respected() {
        let cat = catalog();
        let cfg = MixedConfig {
            min_attrs: 3,
            max_attrs: 5,
            ..MixedConfig::new(TableId(0), 100, 8)
        };
        for q in generate_mixed(&cat, &cfg) {
            assert!((3..=5).contains(&q.attribute_count()));
        }
    }

    #[test]
    fn deterministic() {
        let cat = catalog();
        let cfg = MixedConfig::new(TableId(0), 30, 9);
        assert_eq!(generate_mixed(&cat, &cfg), generate_mixed(&cat, &cfg));
    }

    #[test]
    fn mixed_queries_are_less_selective_than_their_first_disjunct() {
        // OR can only add rows: the full mixed query's cardinality is at
        // least that of the query restricted to first disjuncts.
        let db = generate_forest(&ForestConfig {
            rows: 2000,
            quantitative_only: true,
            seed: 2,
        });
        let cfg = MixedConfig::new(TableId(0), 50, 10);
        for q in generate_mixed(db.catalog(), &cfg) {
            let full = qfe_exec::true_cardinality(&db, &q).unwrap();
            let restricted = Query::single_table(
                TableId(0),
                q.predicates
                    .iter()
                    .map(|cp| {
                        let first = cp.expr.to_dnf().unwrap().into_iter().next().unwrap();
                        CompoundPredicate::conjunction(cp.column, first)
                    })
                    .collect(),
            );
            let sub = qfe_exec::true_cardinality(&db, &restricted).unwrap();
            assert!(full >= sub, "OR removed rows: {full} < {sub}");
        }
    }
}
