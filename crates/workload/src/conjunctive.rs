//! The conjunctive query workload (Section 5):
//!
//! "We draw `k`, `1 ≤ k ≤ 55` distinct attributes uniformly at random and
//! randomly generate a closed range predicate for each. Additionally, we
//! generate `l`, `0 ≤ l ≤ 5` not-equal predicates, for each of the `k`
//! chosen attributes, that exclude values from the aforementioned range."

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use qfe_core::predicate::{CmpOp, CompoundPredicate, SimplePredicate};
use qfe_core::query::ColumnRef;
use qfe_core::schema::{AttributeDomain, Catalog};
use qfe_core::{ColumnId, Query, TableId};
use qfe_data::Database;

/// Configuration of the conjunctive workload generator.
#[derive(Debug, Clone)]
pub struct ConjunctiveConfig {
    /// The table to query.
    pub table: TableId,
    /// Number of queries to generate.
    pub count: usize,
    /// Minimum distinct attributes per query (paper: 1).
    pub min_attrs: usize,
    /// Maximum distinct attributes per query (paper: up to 55; the figure
    /// experiments group by 1–8).
    pub max_attrs: usize,
    /// Maximum `<>` predicates per attribute (paper: 5).
    pub max_not_equals: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ConjunctiveConfig {
    /// Paper-style defaults for `table` (attrs 1..=8, up to 5 nots).
    pub fn new(table: TableId, count: usize, seed: u64) -> Self {
        ConjunctiveConfig {
            table,
            count,
            min_attrs: 1,
            max_attrs: 8,
            max_not_equals: 5,
            seed,
        }
    }
}

/// A per-attribute sampler of *data* values: queries in real workloads
/// reference values that occur, so range endpoints and especially `<>`
/// exclusions should hit frequent values with their data frequency (the
/// paper's own example excludes July 4th — a meaningful value).
pub type ValueSampler<'a> = dyn Fn(&mut StdRng) -> f64 + 'a;

/// Draw a random closed-range conjunction plus `<>` exclusions on one
/// attribute, per the paper's recipe. With a sampler, endpoints mix
/// domain-uniform and data-drawn values and `<>` literals are data values
/// inside the range (frequency-weighted). Shared with the mixed workload.
pub(crate) fn random_attribute_conjunct(
    domain: &AttributeDomain,
    max_not_equals: usize,
    rng: &mut StdRng,
    sampler: Option<&ValueSampler<'_>>,
) -> Vec<SimplePredicate> {
    let (lo, hi) = match sampler {
        Some(sample) if rng.gen_bool(0.5) => {
            let a = sample(rng);
            let b = sample(rng);
            (a.min(b), a.max(b))
        }
        _ => random_range(domain, rng),
    };
    let mut preds = vec![
        SimplePredicate::new(CmpOp::Ge, literal(domain, lo)),
        SimplePredicate::new(CmpOp::Le, literal(domain, hi)),
    ];
    let l = rng.gen_range(0..=max_not_equals);
    for _ in 0..l {
        let v = match sampler {
            Some(sample) => {
                // Retry for a data value inside the range; fall back to a
                // uniform draw if the range is off-data.
                let mut v = None;
                for _ in 0..8 {
                    let cand = sample(rng);
                    if cand >= lo && cand <= hi {
                        v = Some(cand);
                        break;
                    }
                }
                v.unwrap_or_else(|| uniform_in(domain, lo, hi, rng))
            }
            None => uniform_in(domain, lo, hi, rng),
        };
        preds.push(SimplePredicate::new(CmpOp::Ne, literal(domain, v)));
    }
    preds
}

fn uniform_in(domain: &AttributeDomain, lo: f64, hi: f64, rng: &mut StdRng) -> f64 {
    if domain.integral {
        rng.gen_range(lo as i64..=hi as i64) as f64
    } else {
        rng.gen_range(lo..=hi)
    }
}

fn random_range(domain: &AttributeDomain, rng: &mut StdRng) -> (f64, f64) {
    if domain.integral {
        let a = rng.gen_range(domain.min as i64..=domain.max as i64);
        let b = rng.gen_range(domain.min as i64..=domain.max as i64);
        (a.min(b) as f64, a.max(b) as f64)
    } else {
        let a = rng.gen_range(domain.min..=domain.max);
        let b = rng.gen_range(domain.min..=domain.max);
        (a.min(b), a.max(b))
    }
}

fn literal(domain: &AttributeDomain, v: f64) -> qfe_core::Value {
    if domain.integral {
        qfe_core::Value::Int(v as i64)
    } else {
        qfe_core::Value::Float(v)
    }
}

/// Generate the conjunctive workload with domain-uniform literals only.
pub fn generate_conjunctive(catalog: &Catalog, config: &ConjunctiveConfig) -> Vec<Query> {
    generate_conjunctive_inner(catalog, config, None)
}

/// Generate the conjunctive workload with data-aware literals: range
/// endpoints mix uniform and data-drawn values, and `<>` exclusions are
/// drawn from the data (so they hit frequent values with their actual
/// frequency — the regime where dropping them, as Range Predicate
/// Encoding must, costs real accuracy).
pub fn generate_conjunctive_with_data(db: &Database, config: &ConjunctiveConfig) -> Vec<Query> {
    generate_conjunctive_inner(db.catalog(), config, Some(db))
}

fn generate_conjunctive_inner(
    catalog: &Catalog,
    config: &ConjunctiveConfig,
    db: Option<&Database>,
) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let columns = catalog.table(config.table).columns.len();
    assert!(columns > 0, "table has no columns");
    let max_attrs = config.max_attrs.min(columns);
    let min_attrs = config.min_attrs.clamp(1, max_attrs);
    let mut queries = Vec::with_capacity(config.count);
    let mut column_ids: Vec<usize> = (0..columns).collect();
    for _ in 0..config.count {
        let k = rng.gen_range(min_attrs..=max_attrs);
        column_ids.shuffle(&mut rng);
        let mut predicates = Vec::with_capacity(k);
        for &ci in column_ids.iter().take(k) {
            let col = ColumnRef::new(config.table, ColumnId(ci));
            let domain = catalog.domain(config.table, ColumnId(ci));
            let preds = match db {
                Some(db) => {
                    let column = db.table(config.table).column(ColumnId(ci));
                    let rows = column.len();
                    let sampler = move |rng: &mut StdRng| column.get_f64(rng.gen_range(0..rows));
                    random_attribute_conjunct(
                        domain,
                        config.max_not_equals,
                        &mut rng,
                        Some(&sampler),
                    )
                }
                None => random_attribute_conjunct(domain, config.max_not_equals, &mut rng, None),
            };
            predicates.push(CompoundPredicate::conjunction(col, preds));
        }
        queries.push(Query::single_table(config.table, predicates));
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_data::forest::{generate_forest, ForestConfig};

    fn catalog() -> qfe_core::schema::Catalog {
        generate_forest(&ForestConfig {
            rows: 500,
            quantitative_only: true,
            seed: 1,
        })
        .catalog()
        .clone()
    }

    #[test]
    fn respects_attribute_bounds() {
        let cat = catalog();
        let cfg = ConjunctiveConfig {
            min_attrs: 2,
            max_attrs: 4,
            ..ConjunctiveConfig::new(TableId(0), 200, 7)
        };
        for q in generate_conjunctive(&cat, &cfg) {
            let k = q.attribute_count();
            assert!((2..=4).contains(&k), "k = {k}");
            assert!(q.is_conjunctive());
            q.validate(&cat).unwrap();
        }
    }

    #[test]
    fn attributes_are_distinct_per_query() {
        let cat = catalog();
        let cfg = ConjunctiveConfig::new(TableId(0), 100, 3);
        for q in generate_conjunctive(&cat, &cfg) {
            let mut cols: Vec<_> = q.predicates.iter().map(|cp| cp.column).collect();
            let before = cols.len();
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), before, "duplicate attribute in query");
        }
    }

    #[test]
    fn ranges_are_closed_and_ordered() {
        let cat = catalog();
        let cfg = ConjunctiveConfig::new(TableId(0), 100, 11);
        for q in generate_conjunctive(&cat, &cfg) {
            for cp in &q.predicates {
                let dnf = cp.expr.to_dnf().unwrap();
                let preds = &dnf[0];
                let ge = preds.iter().find(|p| p.op == CmpOp::Ge).unwrap();
                let le = preds.iter().find(|p| p.op == CmpOp::Le).unwrap();
                let (lo, hi) = (ge.value.as_f64().unwrap(), le.value.as_f64().unwrap());
                assert!(lo <= hi);
                // nots are inside the range
                for p in preds.iter().filter(|p| p.op == CmpOp::Ne) {
                    let v = p.value.as_f64().unwrap();
                    assert!(v >= lo && v <= hi, "not-equal outside range");
                }
                // at most 2 + 5 predicates per attribute
                assert!(preds.len() <= 7);
            }
        }
    }

    #[test]
    fn deterministic() {
        let cat = catalog();
        let cfg = ConjunctiveConfig::new(TableId(0), 50, 42);
        assert_eq!(
            generate_conjunctive(&cat, &cfg),
            generate_conjunctive(&cat, &cfg)
        );
    }

    #[test]
    fn workload_has_varied_sizes() {
        // Queries should span a broad selectivity spectrum (needed for
        // useful training data).
        let db = generate_forest(&ForestConfig {
            rows: 2000,
            quantitative_only: true,
            seed: 2,
        });
        let cfg = ConjunctiveConfig::new(TableId(0), 200, 5);
        let queries = generate_conjunctive(db.catalog(), &cfg);
        let mut cards: Vec<u64> = queries
            .iter()
            .map(|q| qfe_exec::true_cardinality(&db, q).unwrap())
            .collect();
        cards.sort_unstable();
        assert_eq!(cards[0], 0, "some queries should be empty-ish");
        assert!(*cards.last().unwrap() > 500, "some queries should be broad");
    }
}
