//! Grouped-query workloads (paper Section 6, "GROUP BY clauses").
//!
//! Each query is a conjunctive selection (same recipe as
//! [`crate::conjunctive`]) plus a random set of grouping attributes; the
//! label is the number of result groups. Kipf et al. \[11\] showed that
//! estimating filtered group-by result sizes is hard — the binary
//! grouping vector of Section 6 lets any QFT participate.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use qfe_core::featurize::GroupedQuery;
use qfe_core::query::ColumnRef;
use qfe_core::schema::Catalog;
use qfe_core::ColumnId;

use crate::conjunctive::{generate_conjunctive, ConjunctiveConfig};

/// Configuration of the grouped workload generator.
#[derive(Debug, Clone)]
pub struct GroupedConfig {
    /// Selection-part configuration.
    pub selection: ConjunctiveConfig,
    /// Maximum grouping attributes per query (at least 1).
    pub max_group_attrs: usize,
}

impl GroupedConfig {
    /// Defaults: paper-style selections plus 1–3 grouping attributes.
    pub fn new(table: qfe_core::TableId, count: usize, seed: u64) -> Self {
        GroupedConfig {
            selection: ConjunctiveConfig::new(table, count, seed),
            max_group_attrs: 3,
        }
    }
}

/// Generate grouped queries.
pub fn generate_grouped(catalog: &Catalog, config: &GroupedConfig) -> Vec<GroupedQuery> {
    let queries = generate_conjunctive(catalog, &config.selection);
    let mut rng = StdRng::seed_from_u64(config.selection.seed ^ 0x6B0B);
    let table = config.selection.table;
    let columns = catalog.table(table).columns.len();
    let mut column_ids: Vec<usize> = (0..columns).collect();
    queries
        .into_iter()
        .map(|q| {
            let g = rng.gen_range(1..=config.max_group_attrs.max(1).min(columns));
            column_ids.shuffle(&mut rng);
            let group_by = column_ids
                .iter()
                .take(g)
                .map(|&ci| ColumnRef::new(table, ColumnId(ci)))
                .collect();
            GroupedQuery::new(q, group_by)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::TableId;
    use qfe_data::forest::{generate_forest, ForestConfig};
    use qfe_exec::count::grouped_cardinality;

    #[test]
    fn grouped_workload_is_labelable() {
        let db = generate_forest(&ForestConfig {
            rows: 2_000,
            quantitative_only: true,
            seed: 9,
        });
        let cfg = GroupedConfig::new(TableId(0), 100, 5);
        let queries = generate_grouped(db.catalog(), &cfg);
        assert_eq!(queries.len(), 100);
        let mut nonzero = 0;
        for g in &queries {
            assert!(!g.group_by.is_empty());
            assert!(g.group_by.len() <= 3);
            let card = grouped_cardinality(&db, g).unwrap();
            if card > 0 {
                nonzero += 1;
            }
        }
        assert!(nonzero > 25, "enough grouped queries non-empty: {nonzero}");
    }

    #[test]
    fn grouping_attributes_are_distinct() {
        let db = generate_forest(&ForestConfig {
            rows: 500,
            quantitative_only: true,
            seed: 10,
        });
        let cfg = GroupedConfig::new(TableId(0), 50, 6);
        for g in generate_grouped(db.catalog(), &cfg) {
            let mut cols = g.group_by.clone();
            let before = cols.len();
            cols.sort();
            cols.dedup();
            assert_eq!(cols.len(), before);
        }
    }

    #[test]
    fn deterministic() {
        let db = generate_forest(&ForestConfig {
            rows: 500,
            quantitative_only: true,
            seed: 11,
        });
        let cfg = GroupedConfig::new(TableId(0), 30, 12);
        assert_eq!(
            generate_grouped(db.catalog(), &cfg),
            generate_grouped(db.catalog(), &cfg)
        );
    }
}
