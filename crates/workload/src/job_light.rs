//! JOB-light-shaped join workloads over the synthetic IMDB schema.
//!
//! JOB-light \[12\] is a set of 70 hand-written queries on IMDb with 2–5
//! joined tables (all star joins onto `title`), conjunctive selections of
//! 1–5 predicates over 1–4 attributes, and at most one range per
//! attribute. [`job_light_suite`] generates a fixed 70-query suite with
//! exactly those characteristics; [`generate_join_workload`] produces the
//! large randomized training workloads (the paper uses 231k generated
//! training queries).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use qfe_core::predicate::{CmpOp, CompoundPredicate, SimplePredicate};
use qfe_core::query::{ColumnRef, JoinPredicate};
use qfe_core::schema::Catalog;
use qfe_core::{ColumnId, Query, TableId};

/// Configuration of the join workload generator.
#[derive(Debug, Clone)]
pub struct JoinWorkloadConfig {
    /// Number of queries.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
    /// Minimum joined tables (including `title`); paper: 2.
    pub min_tables: usize,
    /// Maximum joined tables; paper: 5.
    pub max_tables: usize,
}

impl JoinWorkloadConfig {
    /// Paper-style defaults.
    pub fn new(count: usize, seed: u64) -> Self {
        JoinWorkloadConfig {
            count,
            seed,
            min_tables: 2,
            max_tables: 5,
        }
    }
}

/// The selectable attributes of the IMDB schema: `(table, column, is_range)`.
/// Ranges only on `production_year`, equality elsewhere — mirroring
/// JOB-light's predicate shapes.
fn predicate_columns(catalog: &Catalog) -> Vec<(TableId, ColumnId, bool)> {
    let mut cols = Vec::new();
    let title = catalog.table_id("title").expect("IMDB schema has title");
    let t = catalog.table(title);
    cols.push((title, t.column_id("production_year").unwrap(), true));
    cols.push((title, t.column_id("kind_id").unwrap(), false));
    for name in [
        ("cast_info", "role_id"),
        ("movie_companies", "company_type_id"),
        ("movie_info", "info_type_id"),
        ("movie_info_idx", "info_type_id"),
        ("movie_keyword", "keyword_id"),
    ] {
        if let Some(tid) = catalog.table_id(name.0) {
            if let Some(cid) = catalog.table(tid).column_id(name.1) {
                cols.push((tid, cid, false));
            }
        }
    }
    cols
}

/// The fact tables joinable onto `title` via their first FK edge.
fn fact_tables(catalog: &Catalog) -> Vec<TableId> {
    [
        "cast_info",
        "movie_companies",
        "movie_info",
        "movie_info_idx",
        "movie_keyword",
    ]
    .iter()
    .filter_map(|n| catalog.table_id(n))
    .collect()
}

fn build_query(
    catalog: &Catalog,
    rng: &mut StdRng,
    n_tables: usize,
    max_pred_attrs: usize,
) -> Query {
    let title = catalog.table_id("title").expect("IMDB schema has title");
    let title_id = catalog.table(title).column_id("id").unwrap();
    let mut facts = fact_tables(catalog);
    facts.shuffle(rng);
    facts.truncate(n_tables.saturating_sub(1));
    let mut tables = vec![title];
    tables.extend(facts.iter().copied());
    let joins: Vec<JoinPredicate> = facts
        .iter()
        .map(|&f| JoinPredicate {
            left: ColumnRef::new(f, ColumnId(0)), // movie_id is column 0
            right: ColumnRef::new(title, title_id),
        })
        .collect();

    // Selection predicates: 1–4 distinct attributes among the accessed
    // tables' predicate columns, at most one range per attribute.
    let mut eligible: Vec<(TableId, ColumnId, bool)> = predicate_columns(catalog)
        .into_iter()
        .filter(|(t, _, _)| tables.contains(t))
        .collect();
    eligible.shuffle(rng);
    let n_attrs = rng.gen_range(1..=max_pred_attrs.min(eligible.len()));
    let mut predicates = Vec::with_capacity(n_attrs);
    for &(t, c, is_range) in eligible.iter().take(n_attrs) {
        let domain = catalog.domain(t, c);
        let (lo, hi) = (domain.min as i64, domain.max as i64);
        let preds = if is_range {
            // A year range or a half-open bound (1 or 2 predicates).
            match rng.gen_range(0..3) {
                0 => {
                    let a = rng.gen_range(lo..=hi);
                    let b = rng.gen_range(lo..=hi);
                    vec![
                        SimplePredicate::new(CmpOp::Ge, a.min(b)),
                        SimplePredicate::new(CmpOp::Le, a.max(b)),
                    ]
                }
                1 => vec![SimplePredicate::new(CmpOp::Gt, rng.gen_range(lo..=hi))],
                _ => vec![SimplePredicate::new(CmpOp::Le, rng.gen_range(lo..=hi))],
            }
        } else {
            vec![SimplePredicate::new(CmpOp::Eq, rng.gen_range(lo..=hi))]
        };
        predicates.push(CompoundPredicate::conjunction(ColumnRef::new(t, c), preds));
    }
    Query {
        tables,
        joins,
        predicates,
    }
}

/// The fixed 70-query JOB-light-shaped test suite.
pub fn job_light_suite(catalog: &Catalog) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(0x1_0B11_647A); // fixed: the suite is part of the benchmark
    let mut queries = Vec::with_capacity(70);
    for i in 0..70 {
        // Cycle join sizes 2..=5 evenly like JOB-light's mixture.
        let n_tables = 2 + (i % 4);
        queries.push(build_query(catalog, &mut rng, n_tables, 4));
    }
    queries
}

/// Randomized training workload of the same shape.
pub fn generate_join_workload(catalog: &Catalog, config: &JoinWorkloadConfig) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.count)
        .map(|_| {
            let n_tables = rng.gen_range(config.min_tables..=config.max_tables);
            build_query(catalog, &mut rng, n_tables, 4)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_data::imdb::{generate_imdb, ImdbConfig};

    fn catalog() -> Catalog {
        generate_imdb(&ImdbConfig {
            titles: 1000,
            seed: 5,
        })
        .catalog()
        .clone()
    }

    #[test]
    fn suite_has_70_valid_queries() {
        let cat = catalog();
        let suite = job_light_suite(&cat);
        assert_eq!(suite.len(), 70);
        for q in &suite {
            q.validate(&cat).unwrap();
            let n = q.sub_schema().len();
            assert!((2..=5).contains(&n), "tables {n}");
            assert!(q.is_conjunctive());
            let attrs = q.attribute_count();
            assert!((1..=4).contains(&attrs), "attrs {attrs}");
            let preds = q.predicate_count();
            assert!((1..=8).contains(&preds), "preds {preds}");
        }
    }

    #[test]
    fn suite_is_stable() {
        let cat = catalog();
        assert_eq!(job_light_suite(&cat), job_light_suite(&cat));
    }

    #[test]
    fn all_joins_are_star_onto_title() {
        let cat = catalog();
        let title = cat.table_id("title").unwrap();
        for q in job_light_suite(&cat) {
            assert!(q.tables.contains(&title));
            for j in &q.joins {
                assert_eq!(j.right.table, title);
            }
        }
    }

    #[test]
    fn training_workload_covers_sub_schemata() {
        let cat = catalog();
        let cfg = JoinWorkloadConfig::new(500, 3);
        let queries = generate_join_workload(&cat, &cfg);
        assert_eq!(queries.len(), 500);
        let mut schemas: Vec<_> = queries.iter().map(|q| q.sub_schema()).collect();
        schemas.sort();
        schemas.dedup();
        // 5 fact tables: at least a dozen distinct sub-schemata expected.
        assert!(
            schemas.len() >= 12,
            "distinct sub-schemata {}",
            schemas.len()
        );
        for q in &queries {
            q.validate(&cat).unwrap();
        }
    }

    #[test]
    fn at_most_one_range_per_attribute() {
        let cat = catalog();
        for q in job_light_suite(&cat) {
            for cp in &q.predicates {
                let dnf = cp.expr.to_dnf().unwrap();
                assert_eq!(dnf.len(), 1);
                // either a single =, a single bound, or a ge/le pair
                assert!(dnf[0].len() <= 2);
            }
        }
    }
}
