//! A small WHERE-clause parser.
//!
//! The workload generators build query ASTs directly; this parser exists
//! for the public API, examples, and tests — it accepts the predicate
//! grammar the paper's QFTs cover and produces [`CompoundPredicate`]s
//! grouped per attribute (Definition 3.3). Grammar:
//!
//! ```text
//! expr    := term ( OR term )*
//! term    := factor ( AND factor )*
//! factor  := '(' expr ')' | comparison
//! comparison := ident op literal
//! op      := '=' | '<' | '>' | '<=' | '>=' | '<>' | '!='
//! literal := integer | float | 'single-quoted string'
//! ```
//!
//! The parsed expression must be a *mixed query* per Definition 3.3: after
//! normalization, every compound predicate may reference only one
//! attribute. Cross-attribute disjunctions are rejected with a clear
//! error (they are outside every QFT's supported class).

use crate::error::QfeError;
use crate::predicate::{CmpOp, CompoundPredicate, PredicateExpr, SimplePredicate};
use crate::query::{ColumnRef, Query};
use crate::schema::{Catalog, TableId};
use crate::value::Value;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Op(CmpOp),
    And,
    Or,
    LParen,
    RParen,
}

fn lex(input: &str) -> Result<Vec<Token>, QfeError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Op(CmpOp::Eq));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op(CmpOp::Le));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Op(CmpOp::Ne));
                    i += 2;
                } else {
                    tokens.push(Token::Op(CmpOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op(CmpOp::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Op(CmpOp::Gt));
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op(CmpOp::Ne));
                    i += 2;
                } else {
                    return Err(QfeError::InvalidQuery(format!(
                        "unexpected '!' at byte {i}"
                    )));
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(QfeError::InvalidQuery("unterminated string".into()));
                }
                tokens.push(Token::Str(input[start..j].to_owned()));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '-' || c == '.' => {
                let start = i;
                i += 1;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                let text = &input[start..i];
                if text.contains('.') {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| QfeError::InvalidLiteral(format!("bad number '{text}'")))?;
                    tokens.push(Token::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| QfeError::InvalidLiteral(format!("bad number '{text}'")))?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'.')
                {
                    i += 1;
                }
                let word = &input[start..i];
                match word.to_ascii_uppercase().as_str() {
                    "AND" => tokens.push(Token::And),
                    "OR" => tokens.push(Token::Or),
                    _ => tokens.push(Token::Ident(word.to_owned())),
                }
            }
            other => {
                return Err(QfeError::InvalidQuery(format!(
                    "unexpected character '{other}' at byte {i}"
                )))
            }
        }
    }
    Ok(tokens)
}

/// An expression tree where leaves carry their attribute.
#[derive(Debug, Clone)]
enum Ast {
    Leaf(ColumnRef, SimplePredicate),
    And(Vec<Ast>),
    Or(Vec<Ast>),
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    catalog: &'a Catalog,
    table: TableId,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expr(&mut self) -> Result<Ast, QfeError> {
        let mut terms = vec![self.term()?];
        while matches!(self.peek(), Some(Token::Or)) {
            self.next();
            terms.push(self.term()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            Ast::Or(terms)
        })
    }

    fn term(&mut self) -> Result<Ast, QfeError> {
        let mut factors = vec![self.factor()?];
        while matches!(self.peek(), Some(Token::And)) {
            self.next();
            factors.push(self.factor()?);
        }
        Ok(if factors.len() == 1 {
            factors.pop().unwrap()
        } else {
            Ast::And(factors)
        })
    }

    fn factor(&mut self) -> Result<Ast, QfeError> {
        match self.next() {
            Some(Token::LParen) => {
                let inner = self.expr()?;
                match self.next() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(QfeError::InvalidQuery("missing ')'".into())),
                }
            }
            Some(Token::Ident(name)) => {
                // Optional "table.column" qualification.
                let column_name = match name.split_once('.') {
                    Some((t, c)) => {
                        let table_name = &self.catalog.table(self.table).name;
                        if t != table_name {
                            return Err(QfeError::UnknownTable(t.to_owned()));
                        }
                        c.to_owned()
                    }
                    None => name,
                };
                let cid = self
                    .catalog
                    .table(self.table)
                    .column_id(&column_name)
                    .ok_or_else(|| QfeError::UnknownColumn(column_name.clone()))?;
                let op = match self.next() {
                    Some(Token::Op(op)) => op,
                    other => {
                        return Err(QfeError::InvalidQuery(format!(
                            "expected comparison operator after '{column_name}', got {other:?}"
                        )))
                    }
                };
                let value = match self.next() {
                    Some(Token::Int(v)) => Value::Int(v),
                    Some(Token::Float(v)) => Value::Float(v),
                    Some(Token::Str(s)) => Value::Str(s),
                    other => {
                        return Err(QfeError::InvalidQuery(format!(
                            "expected literal, got {other:?}"
                        )))
                    }
                };
                Ok(Ast::Leaf(
                    ColumnRef::new(self.table, cid),
                    SimplePredicate { op, value },
                ))
            }
            other => Err(QfeError::InvalidQuery(format!(
                "expected '(' or attribute, got {other:?}"
            ))),
        }
    }
}

/// Which single attribute an AST references, if exactly one.
fn single_attribute(ast: &Ast) -> Option<ColumnRef> {
    fn collect(ast: &Ast, cols: &mut Vec<ColumnRef>) {
        match ast {
            Ast::Leaf(c, _) => {
                if !cols.contains(c) {
                    cols.push(*c);
                }
            }
            Ast::And(children) | Ast::Or(children) => {
                for c in children {
                    collect(c, cols);
                }
            }
        }
    }
    let mut cols = Vec::new();
    collect(ast, &mut cols);
    (cols.len() == 1).then(|| cols[0])
}

fn to_expr(ast: &Ast) -> PredicateExpr {
    match ast {
        Ast::Leaf(_, p) => PredicateExpr::Leaf(p.clone()),
        Ast::And(children) => PredicateExpr::And(children.iter().map(to_expr).collect()),
        Ast::Or(children) => PredicateExpr::Or(children.iter().map(to_expr).collect()),
    }
}

/// Parse a WHERE clause over one table into per-attribute compound
/// predicates (a mixed query per Definition 3.3).
///
/// # Errors
/// * lexical/syntactic errors and unknown columns,
/// * [`QfeError::UnsupportedQuery`] if a disjunction spans more than one
///   attribute — such queries are outside Definition 3.3 and no QFT in
///   the paper can featurize them.
pub fn parse_where(
    catalog: &Catalog,
    table: TableId,
    input: &str,
) -> Result<Vec<CompoundPredicate>, QfeError> {
    let tokens = lex(input)?;
    if tokens.is_empty() {
        return Ok(Vec::new());
    }
    let mut parser = Parser {
        tokens,
        pos: 0,
        catalog,
        table,
    };
    let ast = parser.expr()?;
    if parser.pos != parser.tokens.len() {
        return Err(QfeError::InvalidQuery(format!(
            "trailing tokens at position {}",
            parser.pos
        )));
    }
    // The top level must be a conjunction of per-attribute groups.
    let top: Vec<Ast> = match ast {
        Ast::And(children) => children,
        other => vec![other],
    };
    let mut predicates: Vec<CompoundPredicate> = Vec::new();
    for group in top {
        let Some(col) = single_attribute(&group) else {
            return Err(QfeError::UnsupportedQuery(
                "a disjunction spans multiple attributes; mixed queries \
                 (Definition 3.3) require per-attribute compound predicates"
                    .into(),
            ));
        };
        predicates.push(CompoundPredicate {
            column: col,
            expr: to_expr(&group),
        });
    }
    Ok(predicates)
}

/// Parse a WHERE clause into a single-table [`Query`].
pub fn parse_single_table_query(
    catalog: &Catalog,
    table: TableId,
    where_clause: &str,
) -> Result<Query, QfeError> {
    Ok(Query::single_table(
        table,
        parse_where(catalog, table, where_clause)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeDomain, ColumnMeta, TableMeta};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(TableMeta {
            name: "orders".into(),
            columns: vec![
                ColumnMeta {
                    name: "price".into(),
                    domain: AttributeDomain::integers(0, 1000),
                },
                ColumnMeta {
                    name: "qty".into(),
                    domain: AttributeDomain::integers(0, 10),
                },
            ],
            row_count: 100,
        });
        cat
    }

    #[test]
    fn parses_simple_conjunction() {
        let cat = catalog();
        let preds = parse_where(
            &cat,
            TableId(0),
            "price >= 100 AND price <= 200 AND qty = 3",
        )
        .unwrap();
        // Top-level conjunction yields one compound per factor; the two
        // price factors stay separate compounds here and are merged by
        // `group_by_column` during featurization.
        assert_eq!(preds.len(), 3);
        let total: usize = preds.iter().map(|p| p.predicate_count()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn parses_mixed_query() {
        let cat = catalog();
        let preds = parse_where(
            &cat,
            TableId(0),
            "(price < 100 OR price > 900) AND (qty = 1 OR qty = 2)",
        )
        .unwrap();
        assert_eq!(preds.len(), 2);
        assert!(!preds[0].is_conjunctive());
        // Round-trip through evaluation semantics.
        let price_expr = &preds[0].expr;
        assert!(price_expr.matches_f64(50.0));
        assert!(price_expr.matches_f64(950.0));
        assert!(!price_expr.matches_f64(500.0));
    }

    #[test]
    fn operator_spellings() {
        let cat = catalog();
        for (text, op) in [
            ("price = 1", CmpOp::Eq),
            ("price < 1", CmpOp::Lt),
            ("price > 1", CmpOp::Gt),
            ("price <= 1", CmpOp::Le),
            ("price >= 1", CmpOp::Ge),
            ("price <> 1", CmpOp::Ne),
            ("price != 1", CmpOp::Ne),
        ] {
            let preds = parse_where(&cat, TableId(0), text).unwrap();
            match &preds[0].expr {
                PredicateExpr::Leaf(p) => assert_eq!(p.op, op, "{text}"),
                other => panic!("expected leaf for {text}, got {other:?}"),
            }
        }
    }

    #[test]
    fn literals_and_strings() {
        let cat = catalog();
        let preds = parse_where(&cat, TableId(0), "price >= -2.5").unwrap();
        match &preds[0].expr {
            PredicateExpr::Leaf(p) => assert_eq!(p.value, Value::Float(-2.5)),
            _ => panic!(),
        }
        let preds = parse_where(&cat, TableId(0), "qty = 'abc'").unwrap();
        match &preds[0].expr {
            PredicateExpr::Leaf(p) => assert_eq!(p.value, Value::Str("abc".into())),
            _ => panic!(),
        }
    }

    #[test]
    fn qualified_names() {
        let cat = catalog();
        assert!(parse_where(&cat, TableId(0), "orders.price = 1").is_ok());
        assert!(matches!(
            parse_where(&cat, TableId(0), "items.price = 1"),
            Err(QfeError::UnknownTable(_))
        ));
    }

    #[test]
    fn cross_attribute_disjunction_is_rejected() {
        let cat = catalog();
        assert!(matches!(
            parse_where(&cat, TableId(0), "price < 10 OR qty > 5"),
            Err(QfeError::UnsupportedQuery(_))
        ));
    }

    #[test]
    fn nested_parentheses_and_precedence() {
        let cat = catalog();
        // AND binds tighter than OR.
        let preds = parse_where(&cat, TableId(0), "price > 1 AND price < 9 OR price = 42").unwrap();
        // Without parens this is (>1 AND <9) OR (=42): one attribute →
        // one compound predicate.
        assert_eq!(preds.len(), 1);
        let e = &preds[0].expr;
        assert!(e.matches_f64(5.0));
        assert!(e.matches_f64(42.0));
        assert!(!e.matches_f64(10.0));
    }

    #[test]
    fn errors_are_informative() {
        let cat = catalog();
        assert!(matches!(
            parse_where(&cat, TableId(0), "nope = 1"),
            Err(QfeError::UnknownColumn(_))
        ));
        assert!(parse_where(&cat, TableId(0), "price >").is_err());
        assert!(parse_where(&cat, TableId(0), "(price = 1").is_err());
        assert!(parse_where(&cat, TableId(0), "price = 'unterminated").is_err());
        assert!(parse_where(&cat, TableId(0), "price = 1 garbage = 2").is_err());
    }

    #[test]
    fn empty_clause_is_no_predicates() {
        let cat = catalog();
        assert!(parse_where(&cat, TableId(0), "  ").unwrap().is_empty());
    }

    #[test]
    fn query_round_trips_through_sql_rendering() {
        let cat = catalog();
        let q = parse_single_table_query(
            &cat,
            TableId(0),
            "(price >= 10 AND price <= 20 AND price <> 15) AND qty = 3",
        )
        .unwrap();
        let sql = q.to_sql(&cat);
        assert!(sql.contains("orders.price >= 10"));
        assert!(sql.contains("orders.qty = 3"));
        q.validate(&cat).unwrap();
    }
}
