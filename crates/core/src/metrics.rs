//! Estimation-quality metrics: the q-error and distribution summaries.
//!
//! The q-error `max(x/e, e/x)` (Moerkotte et al. \[19\]) is the standard
//! metric in ML-based cardinality estimation; it is relative and symmetric,
//! unlike the relative error which systematically favors underestimation
//! (Section 5, "Error metric"). Following the paper, truths are non-empty
//! query results and estimates are clamped to `>= 1`, so the q-error is
//! always defined and `>= 1`.

/// q-error between a true cardinality `truth` and an estimate `estimate`.
///
/// Both inputs are clamped to `>= 1` per the paper's evaluation protocol.
pub fn q_error(truth: f64, estimate: f64) -> f64 {
    let x = truth.max(1.0);
    let e = estimate.max(1.0);
    (x / e).max(e / x)
}

/// Why a set of errors could not be summarized.
///
/// `f64::total_cmp` sorts NaN *after* every finite value, so before this
/// guard existed a single NaN in the input silently became the reported
/// `max` and poisoned `mean` — the summary looked plausible while being
/// garbage. Non-finite inputs are now rejected up front, matching the
/// non-finite guards the training and estimation paths already enforce.
#[derive(Debug, Clone, PartialEq)]
pub enum SummaryError {
    /// No samples were provided; every statistic would be undefined.
    Empty,
    /// A sample was NaN or ±∞.
    NonFinite {
        /// Position of the offending sample in the input slice.
        index: usize,
        /// The offending value (NaN or ±∞).
        value: f64,
    },
    /// Paired truth/estimate slices have different lengths.
    LengthMismatch {
        /// Length of the truths slice.
        truths: usize,
        /// Length of the estimates slice.
        estimates: usize,
    },
}

impl std::fmt::Display for SummaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SummaryError::Empty => write!(f, "cannot summarize zero errors"),
            SummaryError::NonFinite { index, value } => {
                write!(f, "non-finite error {value} at index {index}")
            }
            SummaryError::LengthMismatch { truths, estimates } => {
                write!(
                    f,
                    "paired slices required: {truths} truths vs {estimates} estimates"
                )
            }
        }
    }
}

impl std::error::Error for SummaryError {}

/// Distribution summary of a set of errors: the statistics used in the
/// paper's box plots (1 %, 25 %, 50 %, 75 %, 99 % quantiles) and tables
/// (mean, median, 99 %, max).
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorSummary {
    /// Number of samples summarized.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// 1 % quantile (lower whisker).
    pub p01: f64,
    /// 25 % quantile (box bottom).
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75 % quantile (box top).
    pub p75: f64,
    /// 90 % quantile.
    pub p90: f64,
    /// 95 % quantile.
    pub p95: f64,
    /// 99 % quantile (upper whisker).
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Minimum.
    pub min: f64,
}

impl ErrorSummary {
    /// Summarize a non-empty slice of finite errors.
    ///
    /// Rejects empty input and any NaN/±∞ sample (see [`SummaryError`]).
    pub fn try_from_errors(errors: &[f64]) -> Result<Self, SummaryError> {
        if errors.is_empty() {
            return Err(SummaryError::Empty);
        }
        if let Some((index, &value)) = errors.iter().enumerate().find(|(_, e)| !e.is_finite()) {
            return Err(SummaryError::NonFinite { index, value });
        }
        let mut sorted = errors.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Ok(ErrorSummary {
            count: sorted.len(),
            mean,
            p01: quantile(&sorted, 0.01),
            p25: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.50),
            p75: quantile(&sorted, 0.75),
            p90: quantile(&sorted, 0.90),
            p95: quantile(&sorted, 0.95),
            p99: quantile(&sorted, 0.99),
            max: sorted[sorted.len() - 1],
            min: sorted[0],
        })
    }

    /// Summarize q-errors of paired (truth, estimate) slices, rejecting
    /// empty, mismatched, or non-finite input (see [`SummaryError`]).
    pub fn try_from_estimates(truths: &[f64], estimates: &[f64]) -> Result<Self, SummaryError> {
        if truths.len() != estimates.len() {
            return Err(SummaryError::LengthMismatch {
                truths: truths.len(),
                estimates: estimates.len(),
            });
        }
        let errors: Vec<f64> = truths
            .iter()
            .zip(estimates)
            .map(|(&t, &e)| q_error(t, e))
            .collect();
        ErrorSummary::try_from_errors(&errors)
    }

    /// Summarize a non-empty slice of errors.
    ///
    /// # Panics
    /// Panics if `errors` is empty or contains a non-finite value; use
    /// [`try_from_errors`](Self::try_from_errors) to handle those cases.
    pub fn from_errors(errors: &[f64]) -> Self {
        match Self::try_from_errors(errors) {
            Ok(summary) => summary,
            Err(e) => panic!("{e}"),
        }
    }

    /// Summarize q-errors of paired (truth, estimate) slices.
    ///
    /// # Panics
    /// Panics if the slices have different lengths, are empty, or yield a
    /// non-finite q-error; use
    /// [`try_from_estimates`](Self::try_from_estimates) instead to handle
    /// those cases.
    pub fn from_estimates(truths: &[f64], estimates: &[f64]) -> Self {
        match Self::try_from_estimates(truths, estimates) {
            Ok(summary) => summary,
            Err(e) => panic!("{e}"),
        }
    }

    /// One-line rendering used by the experiment harness tables.
    pub fn table_row(&self) -> String {
        format!(
            "mean {:>10.2}  median {:>8.2}  p99 {:>10.2}  max {:>10.2}",
            self.mean, self.median, self.p99, self.max
        )
    }
}

/// Linear-interpolation quantile of an already-sorted slice, `q` in `[0, 1]`.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Geometric mean of errors — useful as a drift-robust aggregate.
pub fn geometric_mean(errors: &[f64]) -> f64 {
    assert!(!errors.is_empty());
    let log_sum: f64 = errors.iter().map(|e| e.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / errors.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_is_symmetric() {
        assert_eq!(q_error(100.0, 10.0), q_error(10.0, 100.0));
        assert_eq!(q_error(100.0, 10.0), 10.0);
    }

    #[test]
    fn q_error_perfect_estimate_is_one() {
        assert_eq!(q_error(7.0, 7.0), 1.0);
    }

    #[test]
    fn q_error_clamps_to_one() {
        // Estimates below 1 and truths below 1 are clamped per the paper.
        assert_eq!(q_error(1.0, 0.0), 1.0);
        assert_eq!(q_error(0.5, 0.25), 1.0);
        assert_eq!(q_error(0.0, 100.0), 100.0);
    }

    #[test]
    fn q_error_never_below_one() {
        for t in [0.0, 0.5, 1.0, 3.0, 1e9] {
            for e in [0.0, 0.9, 1.0, 2.0, 1e12] {
                assert!(q_error(t, e) >= 1.0, "q({t}, {e})");
            }
        }
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&sorted, 0.0), 1.0);
        assert_eq!(quantile(&sorted, 0.5), 3.0);
        assert_eq!(quantile(&sorted, 1.0), 5.0);
        assert_eq!(quantile(&sorted, 0.25), 2.0);
        assert_eq!(quantile(&sorted, 0.1), 1.4);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn summary_of_constant_errors() {
        let s = ErrorSummary::from_errors(&[2.0; 10]);
        assert_eq!(s.count, 10);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.p99, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.min, 2.0);
    }

    #[test]
    fn summary_orders_quantiles() {
        let errors: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let s = ErrorSummary::from_errors(&errors);
        assert!(s.p01 <= s.p25);
        assert!(s.p25 <= s.median);
        assert!(s.median <= s.p75);
        assert!(s.p75 <= s.p90);
        assert!(s.p90 <= s.p95);
        assert!(s.p95 <= s.p99);
        assert!(s.p99 <= s.max);
        assert!((s.mean - 500.5).abs() < 1e-9);
    }

    #[test]
    fn summary_from_estimate_pairs() {
        let truths = [10.0, 100.0, 1000.0];
        let ests = [10.0, 10.0, 100.0];
        let s = ErrorSummary::from_estimates(&truths, &ests);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
    }

    #[test]
    #[should_panic(expected = "cannot summarize zero errors")]
    fn summary_rejects_empty_input() {
        let _ = ErrorSummary::from_errors(&[]);
    }

    #[test]
    fn try_summary_rejects_empty_input() {
        assert_eq!(ErrorSummary::try_from_errors(&[]), Err(SummaryError::Empty));
    }

    #[test]
    fn try_summary_rejects_non_finite_input() {
        // Regression: a NaN sorted last by total_cmp used to become `max`
        // and poison `mean` without any signal.
        let err = ErrorSummary::try_from_errors(&[1.0, f64::NAN, 3.0]).unwrap_err();
        match err {
            SummaryError::NonFinite { index, value } => {
                assert_eq!(index, 1);
                assert!(value.is_nan());
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
        let err = ErrorSummary::try_from_errors(&[f64::INFINITY]).unwrap_err();
        assert!(matches!(err, SummaryError::NonFinite { index: 0, .. }));
    }

    #[test]
    #[should_panic(expected = "non-finite error")]
    fn summary_panics_on_nan_instead_of_poisoning() {
        let _ = ErrorSummary::from_errors(&[1.0, f64::NAN]);
    }

    #[test]
    fn try_summary_rejects_mismatched_pairs() {
        let err = ErrorSummary::try_from_estimates(&[1.0, 2.0], &[1.0]).unwrap_err();
        assert_eq!(
            err,
            SummaryError::LengthMismatch {
                truths: 2,
                estimates: 1,
            }
        );
    }

    #[test]
    fn try_summary_matches_panicking_path_on_valid_input() {
        let errors = [1.0, 2.0, 4.0, 8.0];
        assert_eq!(
            ErrorSummary::try_from_errors(&errors).unwrap(),
            ErrorSummary::from_errors(&errors)
        );
    }

    #[test]
    fn summary_error_displays() {
        assert_eq!(
            SummaryError::Empty.to_string(),
            "cannot summarize zero errors"
        );
        let nf = SummaryError::NonFinite {
            index: 3,
            value: f64::NEG_INFINITY,
        };
        assert!(nf.to_string().contains("index 3"));
        let lm = SummaryError::LengthMismatch {
            truths: 2,
            estimates: 5,
        };
        assert!(lm.to_string().contains("2 truths"));
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geometric_mean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn table_row_contains_all_fields() {
        let s = ErrorSummary::from_errors(&[1.0, 2.0, 3.0]);
        let row = s.table_row();
        assert!(row.contains("mean"));
        assert!(row.contains("median"));
        assert!(row.contains("p99"));
        assert!(row.contains("max"));
    }
}
