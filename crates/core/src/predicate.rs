//! Predicates: simple comparisons and per-attribute compound predicates.
//!
//! Following Definition 3.3 of the paper, a *compound predicate* for some
//! attribute `A` is an arbitrary AND/OR combination of simple predicates on
//! `A`. Mixed queries are conjunctions of compound predicates over a subset
//! of attributes. Compound predicates do **not** have to be in CNF or DNF;
//! [`PredicateExpr::to_dnf`] normalizes them into the
//! disjunction-of-conjunctions form that Algorithm 2 consumes.

use crate::error::QfeError;
use crate::value::Value;

/// Comparison operators supported in simple predicates
/// (`{=, >, <, >=, <=, <>}`, Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<>` / `!=`
    Ne,
}

impl CmpOp {
    /// SQL spelling of the operator.
    pub fn sql(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::Ne => "<>",
        }
    }

    /// Evaluate the comparison on numeric values.
    pub fn eval_f64(&self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Ne => lhs != rhs,
        }
    }

    /// Evaluate the comparison on integer values.
    pub fn eval_i64(&self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Ne => lhs != rhs,
        }
    }

    /// All six operators, for workload generation and exhaustive tests.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Lt,
        CmpOp::Gt,
        CmpOp::Le,
        CmpOp::Ge,
        CmpOp::Ne,
    ];
}

/// A simple predicate `A op literal` (the attribute is carried by the
/// enclosing [`CompoundPredicate`]; a simple predicate itself only stores
/// the operator and literal).
#[derive(Debug, Clone, PartialEq)]
pub struct SimplePredicate {
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal the attribute is compared against.
    pub value: Value,
}

impl SimplePredicate {
    /// Construct a predicate `op value`.
    pub fn new(op: CmpOp, value: impl Into<Value>) -> Self {
        SimplePredicate {
            op,
            value: value.into(),
        }
    }

    /// Whether a numeric attribute value satisfies this predicate.
    pub fn matches_f64(&self, attr_value: f64) -> bool {
        match self.value.as_f64() {
            Some(rhs) => self.op.eval_f64(attr_value, rhs),
            None => false,
        }
    }
}

/// An arbitrary AND/OR combination of simple predicates on one attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum PredicateExpr {
    /// A simple predicate leaf.
    Leaf(SimplePredicate),
    /// Conjunction of sub-expressions.
    And(Vec<PredicateExpr>),
    /// Disjunction of sub-expressions.
    Or(Vec<PredicateExpr>),
}

impl PredicateExpr {
    /// Leaf constructor.
    pub fn leaf(op: CmpOp, value: impl Into<Value>) -> Self {
        PredicateExpr::Leaf(SimplePredicate::new(op, value))
    }

    /// Conjunction of simple predicates (the common case for conjunctive
    /// workloads).
    pub fn all_of(preds: Vec<SimplePredicate>) -> Self {
        PredicateExpr::And(preds.into_iter().map(PredicateExpr::Leaf).collect())
    }

    /// Number of simple-predicate leaves.
    pub fn leaf_count(&self) -> usize {
        match self {
            PredicateExpr::Leaf(_) => 1,
            PredicateExpr::And(children) | PredicateExpr::Or(children) => {
                children.iter().map(|c| c.leaf_count()).sum()
            }
        }
    }

    /// True if the expression contains no `Or` node (i.e. is a pure
    /// conjunction usable with Universal Conjunction Encoding).
    pub fn is_conjunctive(&self) -> bool {
        match self {
            PredicateExpr::Leaf(_) => true,
            PredicateExpr::And(children) => children.iter().all(|c| c.is_conjunctive()),
            PredicateExpr::Or(children) => {
                children.len() <= 1 && children.iter().all(|c| c.is_conjunctive())
            }
        }
    }

    /// Gather the leaves of a *conjunctive* expression (see
    /// [`Self::is_conjunctive`]) by reference, in exactly the order
    /// [`Self::to_dnf`] would emit them in its single term — depth-first,
    /// left to right, duplicates kept. Returns `false` (leaving `out` in
    /// an unspecified state) when the expression contains an empty
    /// disjunction: its DNF has *no* terms, i.e. it is unsatisfiable.
    ///
    /// This is the zero-clone hot path of per-attribute featurization;
    /// callers must have checked `is_conjunctive()` first — a multi-child
    /// `Or` (not conjunctive) also reports `false` rather than expanding.
    pub(crate) fn conjunct_leaf_refs<'a>(&'a self, out: &mut Vec<&'a SimplePredicate>) -> bool {
        match self {
            PredicateExpr::Leaf(p) => {
                out.push(p);
                true
            }
            PredicateExpr::And(children) => children.iter().all(|c| c.conjunct_leaf_refs(out)),
            PredicateExpr::Or(children) => match children.as_slice() {
                [only] => only.conjunct_leaf_refs(out),
                _ => false,
            },
        }
    }

    /// Evaluate against a single numeric attribute value. Empty `And` is
    /// `true`, empty `Or` is `false` (the usual identities).
    pub fn matches_f64(&self, attr_value: f64) -> bool {
        match self {
            PredicateExpr::Leaf(p) => p.matches_f64(attr_value),
            PredicateExpr::And(children) => children.iter().all(|c| c.matches_f64(attr_value)),
            PredicateExpr::Or(children) => children.iter().any(|c| c.matches_f64(attr_value)),
        }
    }

    /// Normalize into disjunctive normal form: a list of conjunctions, each
    /// a list of simple predicates. This is the `Split(cp, "OR")` step of
    /// Algorithm 2, generalized to arbitrary nesting.
    ///
    /// Exact duplicate conjunctions (same predicates in the same order) are
    /// removed — `x = 1 OR x = 1` yields one term — which keeps the output
    /// stable under input duplication without perturbing term order, so
    /// featurization of the surviving terms is unchanged.
    ///
    /// The expansion is exponential in the worst case; compound predicates
    /// in practice are small (the paper's workloads use at most three
    /// disjuncts per attribute), and we cap the expansion to guard against
    /// adversarial inputs. The cap is enforced *during* expansion in the
    /// `Or` arm — after deduplication, so only distinct terms count — and
    /// an adversarial input fails before materializing its full blow-up
    /// rather than after.
    pub fn to_dnf(&self) -> Result<Vec<Vec<SimplePredicate>>, QfeError> {
        let mut dnf = self.dnf_inner()?;
        dedup_terms(&mut dnf);
        if dnf.len() > MAX_DNF_TERMS {
            return Err(dnf_cap_error());
        }
        Ok(dnf)
    }

    fn dnf_inner(&self) -> Result<Vec<Vec<SimplePredicate>>, QfeError> {
        match self {
            PredicateExpr::Leaf(p) => Ok(vec![vec![p.clone()]]),
            PredicateExpr::Or(children) => {
                let mut terms: Vec<Vec<SimplePredicate>> = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for child in children {
                    for term in child.dnf_inner()? {
                        if seen.insert(term_key(&term)) {
                            terms.push(term);
                        }
                    }
                    // Incremental cap: distinct terms so far already
                    // exceed the budget — fail now instead of expanding
                    // the remaining disjuncts first.
                    if terms.len() > MAX_DNF_TERMS {
                        return Err(dnf_cap_error());
                    }
                }
                Ok(terms)
            }
            PredicateExpr::And(children) => {
                // Cross product of the children's DNFs.
                let mut acc: Vec<Vec<SimplePredicate>> = vec![vec![]];
                for child in children {
                    let child_dnf = child.dnf_inner()?;
                    let mut next = Vec::with_capacity(acc.len() * child_dnf.len());
                    for left in &acc {
                        for right in &child_dnf {
                            let mut term = left.clone();
                            term.extend(right.iter().cloned());
                            next.push(term);
                        }
                    }
                    dedup_terms(&mut next);
                    if next.len() > 1 << 20 {
                        return Err(QfeError::UnsupportedQuery(
                            "DNF expansion blow-up".to_owned(),
                        ));
                    }
                    acc = next;
                }
                Ok(acc)
            }
        }
    }
}

/// Upper bound on DNF terms a single compound predicate may expand to
/// (see [`PredicateExpr::to_dnf`]).
const MAX_DNF_TERMS: usize = 4096;

fn dnf_cap_error() -> QfeError {
    QfeError::UnsupportedQuery(format!(
        "DNF expansion of compound predicate exceeds {MAX_DNF_TERMS} terms"
    ))
}

/// Order-preserving identity key of a DNF term. Two terms are duplicates
/// only when they hold the same predicates in the same order —
/// featurization is order-sensitive in its ternary marks, so reordered
/// terms are *not* collapsed. `SimplePredicate` has no `Hash`/`Ord`
/// (its `Value` carries an `f64`), hence the byte encoding; float
/// literals key by bit pattern.
fn term_key(term: &[SimplePredicate]) -> Vec<u8> {
    let mut out = Vec::with_capacity(term.len() * 10);
    for p in term {
        out.push(match p.op {
            CmpOp::Eq => 0,
            CmpOp::Lt => 1,
            CmpOp::Gt => 2,
            CmpOp::Le => 3,
            CmpOp::Ge => 4,
            CmpOp::Ne => 5,
        });
        match &p.value {
            Value::Int(i) => {
                out.push(b'i');
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(b'f');
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(b's');
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    out
}

/// Remove exact duplicate terms, keeping first occurrences in order.
fn dedup_terms(terms: &mut Vec<Vec<SimplePredicate>>) {
    if terms.len() < 2 {
        return;
    }
    let mut seen = std::collections::HashSet::with_capacity(terms.len());
    terms.retain(|t| seen.insert(term_key(t)));
}

/// A compound predicate: an AND/OR combination of simple predicates over a
/// single attribute of a single table (Definition 3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct CompoundPredicate {
    /// The attribute all simple predicates refer to.
    pub column: crate::query::ColumnRef,
    /// The AND/OR expression.
    pub expr: PredicateExpr,
}

impl CompoundPredicate {
    /// A pure conjunction of simple predicates on `column`.
    pub fn conjunction(column: crate::query::ColumnRef, preds: Vec<SimplePredicate>) -> Self {
        CompoundPredicate {
            column,
            expr: PredicateExpr::all_of(preds),
        }
    }

    /// Number of simple predicates inside.
    pub fn predicate_count(&self) -> usize {
        self.expr.leaf_count()
    }

    /// True if the compound predicate contains no disjunction.
    pub fn is_conjunctive(&self) -> bool {
        self.expr.is_conjunctive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ColumnRef;
    use crate::schema::{ColumnId, TableId};

    fn col() -> ColumnRef {
        ColumnRef {
            table: TableId(0),
            column: ColumnId(0),
        }
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Eq.eval_f64(2.0, 2.0));
        assert!(CmpOp::Lt.eval_f64(1.0, 2.0));
        assert!(CmpOp::Gt.eval_i64(3, 2));
        assert!(CmpOp::Le.eval_i64(2, 2));
        assert!(CmpOp::Ge.eval_f64(2.0, 2.0));
        assert!(CmpOp::Ne.eval_i64(1, 2));
        assert!(!CmpOp::Ne.eval_i64(2, 2));
    }

    #[test]
    fn sql_spellings() {
        let spellings: Vec<_> = CmpOp::ALL.iter().map(|op| op.sql()).collect();
        assert_eq!(spellings, vec!["=", "<", ">", "<=", ">=", "<>"]);
    }

    #[test]
    fn simple_predicate_matching() {
        let p = SimplePredicate::new(CmpOp::Ge, 10);
        assert!(p.matches_f64(10.0));
        assert!(p.matches_f64(11.5));
        assert!(!p.matches_f64(9.9));
    }

    #[test]
    fn expr_evaluation_and_identities() {
        // (x > 0 AND x < 10) OR x = 42
        let e = PredicateExpr::Or(vec![
            PredicateExpr::And(vec![
                PredicateExpr::leaf(CmpOp::Gt, 0),
                PredicateExpr::leaf(CmpOp::Lt, 10),
            ]),
            PredicateExpr::leaf(CmpOp::Eq, 42),
        ]);
        assert!(e.matches_f64(5.0));
        assert!(e.matches_f64(42.0));
        assert!(!e.matches_f64(20.0));
        assert!(PredicateExpr::And(vec![]).matches_f64(1.0));
        assert!(!PredicateExpr::Or(vec![]).matches_f64(1.0));
    }

    #[test]
    fn leaf_count_and_conjunctive_detection() {
        let conj = PredicateExpr::all_of(vec![
            SimplePredicate::new(CmpOp::Ge, 1),
            SimplePredicate::new(CmpOp::Le, 9),
            SimplePredicate::new(CmpOp::Ne, 5),
        ]);
        assert_eq!(conj.leaf_count(), 3);
        assert!(conj.is_conjunctive());

        let disj = PredicateExpr::Or(vec![
            PredicateExpr::leaf(CmpOp::Eq, 1),
            PredicateExpr::leaf(CmpOp::Eq, 2),
        ]);
        assert_eq!(disj.leaf_count(), 2);
        assert!(!disj.is_conjunctive());
    }

    #[test]
    fn dnf_of_conjunction_is_single_term() {
        let conj = PredicateExpr::all_of(vec![
            SimplePredicate::new(CmpOp::Ge, 1),
            SimplePredicate::new(CmpOp::Le, 9),
        ]);
        let dnf = conj.to_dnf().unwrap();
        assert_eq!(dnf.len(), 1);
        assert_eq!(dnf[0].len(), 2);
    }

    #[test]
    fn dnf_distributes_and_over_or() {
        // (a OR b) AND (c OR d) => ac, ad, bc, bd
        let e = PredicateExpr::And(vec![
            PredicateExpr::Or(vec![
                PredicateExpr::leaf(CmpOp::Eq, 1),
                PredicateExpr::leaf(CmpOp::Eq, 2),
            ]),
            PredicateExpr::Or(vec![
                PredicateExpr::leaf(CmpOp::Ne, 3),
                PredicateExpr::leaf(CmpOp::Ne, 4),
            ]),
        ]);
        let dnf = e.to_dnf().unwrap();
        assert_eq!(dnf.len(), 4);
        assert!(dnf.iter().all(|term| term.len() == 2));
    }

    #[test]
    fn dnf_preserves_semantics() {
        // ((x >= 2 AND x <= 5) OR x = 9) evaluated both ways for all x.
        let e = PredicateExpr::Or(vec![
            PredicateExpr::And(vec![
                PredicateExpr::leaf(CmpOp::Ge, 2),
                PredicateExpr::leaf(CmpOp::Le, 5),
            ]),
            PredicateExpr::leaf(CmpOp::Eq, 9),
        ]);
        let dnf = e.to_dnf().unwrap();
        for x in 0..12 {
            let direct = e.matches_f64(x as f64);
            let via_dnf = dnf
                .iter()
                .any(|term| term.iter().all(|p| p.matches_f64(x as f64)));
            assert_eq!(direct, via_dnf, "x = {x}");
        }
    }

    #[test]
    fn dnf_dedups_exact_duplicate_terms() {
        // x = 1 OR x = 1 OR x = 2 → two terms, first occurrence order.
        let e = PredicateExpr::Or(vec![
            PredicateExpr::leaf(CmpOp::Eq, 1),
            PredicateExpr::leaf(CmpOp::Eq, 1),
            PredicateExpr::leaf(CmpOp::Eq, 2),
        ]);
        let dnf = e.to_dnf().unwrap();
        assert_eq!(dnf.len(), 2);
        assert_eq!(dnf[0], vec![SimplePredicate::new(CmpOp::Eq, 1)]);
        assert_eq!(dnf[1], vec![SimplePredicate::new(CmpOp::Eq, 2)]);
        // Reordered conjunctions are distinct terms, not duplicates.
        let ab = PredicateExpr::And(vec![
            PredicateExpr::leaf(CmpOp::Ge, 1),
            PredicateExpr::leaf(CmpOp::Le, 9),
        ]);
        let ba = PredicateExpr::And(vec![
            PredicateExpr::leaf(CmpOp::Le, 9),
            PredicateExpr::leaf(CmpOp::Ge, 1),
        ]);
        let both = PredicateExpr::Or(vec![ab, ba]);
        assert_eq!(both.to_dnf().unwrap().len(), 2);
        // Int and Float literals never collapse into one term.
        let mixed = PredicateExpr::Or(vec![
            PredicateExpr::leaf(CmpOp::Eq, 5),
            PredicateExpr::leaf(CmpOp::Eq, 5.0),
        ]);
        assert_eq!(mixed.to_dnf().unwrap().len(), 2);
    }

    #[test]
    fn dnf_cap_fires_incrementally_in_or_arm() {
        // 2^13 = 8192 distinct terms via 13 ANDed binary disjunctions;
        // must be rejected (and is rejected mid-expansion, before the
        // full cross product of the enclosing Or is realized).
        let or_pair = |v: i64| {
            PredicateExpr::Or(vec![
                PredicateExpr::leaf(CmpOp::Eq, v),
                PredicateExpr::leaf(CmpOp::Ne, v),
            ])
        };
        let big = PredicateExpr::And((0..13).map(or_pair).collect());
        let wide = PredicateExpr::Or(vec![big, PredicateExpr::leaf(CmpOp::Eq, 0)]);
        let err = wide.to_dnf().unwrap_err();
        assert!(matches!(err, QfeError::UnsupportedQuery(_)), "{err:?}");
        // Duplication alone must NOT trip the cap: 5000 copies of the
        // same disjunct dedup to one term.
        let dup = PredicateExpr::Or(vec![PredicateExpr::leaf(CmpOp::Eq, 7); 5000]);
        assert_eq!(dup.to_dnf().unwrap().len(), 1);
    }

    #[test]
    fn conjunct_leaf_refs_matches_dnf_single_term() {
        // Nested And/single-child-Or shape: the gathered references must
        // equal the DNF's one term, in the same depth-first order,
        // duplicates included.
        let expr = PredicateExpr::And(vec![
            PredicateExpr::leaf(CmpOp::Ge, 1),
            PredicateExpr::Or(vec![PredicateExpr::And(vec![
                PredicateExpr::leaf(CmpOp::Le, 9),
                PredicateExpr::leaf(CmpOp::Ne, 5),
                PredicateExpr::leaf(CmpOp::Ne, 5),
            ])]),
        ]);
        assert!(expr.is_conjunctive());
        let mut leaves = Vec::new();
        assert!(expr.conjunct_leaf_refs(&mut leaves));
        let dnf = expr.to_dnf().unwrap();
        assert_eq!(dnf.len(), 1);
        let gathered: Vec<SimplePredicate> = leaves.into_iter().cloned().collect();
        assert_eq!(gathered, dnf[0]);
    }

    #[test]
    fn conjunct_leaf_refs_reports_unsatisfiable_and_non_conjunctive() {
        // An empty disjunction anywhere makes the whole conjunct
        // unsatisfiable: `false`, nothing gathered past it.
        let unsat = PredicateExpr::And(vec![
            PredicateExpr::leaf(CmpOp::Ge, 1),
            PredicateExpr::Or(vec![]),
        ]);
        let mut leaves = Vec::new();
        assert!(!unsat.conjunct_leaf_refs(&mut leaves));
        // A multi-child Or is outside the conjunctive shape; the method
        // declines it (callers gate on `is_conjunctive` first).
        let wide = PredicateExpr::Or(vec![
            PredicateExpr::leaf(CmpOp::Eq, 1),
            PredicateExpr::leaf(CmpOp::Eq, 2),
        ]);
        leaves.clear();
        assert!(!wide.conjunct_leaf_refs(&mut leaves));
    }

    #[test]
    fn compound_predicate_counts() {
        let cp = CompoundPredicate::conjunction(
            col(),
            vec![
                SimplePredicate::new(CmpOp::Ge, 1),
                SimplePredicate::new(CmpOp::Le, 9),
            ],
        );
        assert_eq!(cp.predicate_count(), 2);
        assert!(cp.is_conjunctive());
    }
}
