//! Schema metadata: tables, columns, attribute domains, and join edges.
//!
//! Featurizers never touch stored data; everything they need is the
//! per-attribute domain (`min(A)`, `max(A)`, integrality) plus the catalog's
//! table/join structure for the global-model encodings of Section 2.1.2.
//! The `qfe-data` crate computes domains from actual columns and builds the
//! [`Catalog`].

use crate::error::QfeError;

/// Index of a table within a [`Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub usize);

/// Index of a column within its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub usize);

/// The value domain of one attribute, the basis of all four QFTs.
///
/// Open ranges are closed using `step`: for integer attributes `A < 5`
/// becomes `[min(A), 4]` (step 1); for decimal attributes a small step size
/// is used, exactly as Section 3.1 of the paper prescribes.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeDomain {
    /// Smallest value present in the attribute.
    pub min: f64,
    /// Largest value present in the attribute.
    pub max: f64,
    /// Whether the attribute holds integers (or dictionary codes).
    pub integral: bool,
    /// Number of distinct values if known; enables the exact small-domain
    /// mode of Algorithm 1 (entries only 0/1, never ½).
    pub distinct: Option<u64>,
}

impl AttributeDomain {
    /// Domain for an integer attribute spanning `[min, max]`.
    pub fn integers(min: i64, max: i64) -> Self {
        assert!(min <= max, "empty integer domain [{min}, {max}]");
        AttributeDomain {
            min: min as f64,
            max: max as f64,
            integral: true,
            distinct: Some((max - min + 1) as u64),
        }
    }

    /// Domain for a real-valued attribute spanning `[min, max]`.
    pub fn reals(min: f64, max: f64) -> Self {
        assert!(min <= max, "empty real domain [{min}, {max}]");
        AttributeDomain {
            min,
            max,
            integral: false,
            distinct: None,
        }
    }

    /// Step used to close open ranges (`1` for integral domains, a small
    /// fraction of the width for real domains).
    pub fn step(&self) -> f64 {
        if self.integral {
            1.0
        } else {
            // A 1e-6 fraction of the width keeps `<` and `<=` distinguishable
            // without distorting normalized positions.
            ((self.max - self.min) * 1e-6).max(f64::MIN_POSITIVE)
        }
    }

    /// Width of the domain as used by Algorithm 1's index formula:
    /// `max(A) - min(A) + 1` for integers, `max - min + step` for reals.
    pub fn width(&self) -> f64 {
        self.max - self.min + self.step()
    }

    /// Normalize a literal into `[0, 1]` relative to this domain, clamping
    /// out-of-domain literals (a query may compare against values outside
    /// the stored data).
    pub fn normalize(&self, v: f64) -> f64 {
        if self.max <= self.min {
            return 0.0;
        }
        ((v - self.min) / (self.max - self.min)).clamp(0.0, 1.0)
    }

    /// Number of per-attribute feature entries given a maximum of `n`:
    /// `n_A = min(n, max(A) - min(A) + 1)` (Section 3.2).
    pub fn bucket_count(&self, n: usize) -> usize {
        if self.integral {
            let span = (self.max - self.min) as i64 + 1;
            (span.max(1) as usize).min(n)
        } else {
            n
        }
        .max(1)
    }

    /// Zero-based bucket index of value `v` per Algorithm 1 line 4, clamped
    /// into the valid range so out-of-domain literals map to the border
    /// buckets.
    pub fn bucket_of(&self, v: f64, n_a: usize) -> usize {
        let idx = ((v - self.min) / self.width() * n_a as f64).floor();
        (idx.max(0.0) as usize).min(n_a - 1)
    }

    /// True if with `n_a` buckets every bucket covers exactly one distinct
    /// integer value, enabling the exact 0/1 mode of our Algorithm 1
    /// implementation (final paragraph of Section 3.2).
    pub fn exact_buckets(&self, n_a: usize) -> bool {
        self.integral && ((self.max - self.min) as i64) < n_a as i64
    }
}

/// Metadata of one column.
#[derive(Debug, Clone)]
pub struct ColumnMeta {
    /// Column name, unique within its table.
    pub name: String,
    /// Value domain.
    pub domain: AttributeDomain,
}

/// Metadata of one table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Table name, unique within the catalog.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnMeta>,
    /// Number of rows (used by selectivity-based estimators).
    pub row_count: u64,
}

impl TableMeta {
    /// Find a column id by name.
    pub fn column_id(&self, name: &str) -> Option<ColumnId> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(ColumnId)
    }
}

/// A key/foreign-key edge along which tables may be joined
/// (Section 2.1.2: "assuming that tables are joined following their
/// key/foreign-key relationships").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FkEdge {
    /// Referencing (fact) side.
    pub from: (TableId, ColumnId),
    /// Referenced (primary-key) side.
    pub to: (TableId, ColumnId),
}

/// The database schema seen by featurizers and estimators.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<TableMeta>,
    fk_edges: Vec<FkEdge>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table; returns its id.
    pub fn add_table(&mut self, table: TableMeta) -> TableId {
        assert!(
            self.table_id(&table.name).is_none(),
            "duplicate table name {}",
            table.name
        );
        self.tables.push(table);
        TableId(self.tables.len() - 1)
    }

    /// Register a key/foreign-key edge; returns its index (used by the MSCN
    /// join-set encoding).
    pub fn add_fk_edge(&mut self, edge: FkEdge) -> usize {
        self.fk_edges.push(edge);
        self.fk_edges.len() - 1
    }

    /// All tables in id order.
    pub fn tables(&self) -> &[TableMeta] {
        &self.tables
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// All registered FK edges.
    pub fn fk_edges(&self) -> &[FkEdge] {
        &self.fk_edges
    }

    /// Metadata of `table`.
    pub fn table(&self, table: TableId) -> &TableMeta {
        &self.tables[table.0]
    }

    /// Look up a table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.tables.iter().position(|t| t.name == name).map(TableId)
    }

    /// Metadata of one column.
    pub fn column(&self, table: TableId, column: ColumnId) -> &ColumnMeta {
        &self.tables[table.0].columns[column.0]
    }

    /// Domain of one column.
    pub fn domain(&self, table: TableId, column: ColumnId) -> &AttributeDomain {
        &self.column(table, column).domain
    }

    /// Resolve `"table.column"` or (`table`, `column`) names.
    pub fn resolve(&self, table: &str, column: &str) -> Result<(TableId, ColumnId), QfeError> {
        let tid = self
            .table_id(table)
            .ok_or_else(|| QfeError::UnknownTable(table.to_owned()))?;
        let cid = self
            .table(tid)
            .column_id(column)
            .ok_or_else(|| QfeError::UnknownColumn(format!("{table}.{column}")))?;
        Ok((tid, cid))
    }

    /// Index of the FK edge connecting the two given (table, column) pairs
    /// in either orientation.
    pub fn fk_edge_index(&self, a: (TableId, ColumnId), b: (TableId, ColumnId)) -> Option<usize> {
        self.fk_edges
            .iter()
            .position(|e| (e.from == a && e.to == b) || (e.from == b && e.to == a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let t0 = cat.add_table(TableMeta {
            name: "orders".into(),
            columns: vec![
                ColumnMeta {
                    name: "id".into(),
                    domain: AttributeDomain::integers(0, 999),
                },
                ColumnMeta {
                    name: "price".into(),
                    domain: AttributeDomain::reals(0.0, 100.0),
                },
            ],
            row_count: 1000,
        });
        let t1 = cat.add_table(TableMeta {
            name: "items".into(),
            columns: vec![ColumnMeta {
                name: "order_id".into(),
                domain: AttributeDomain::integers(0, 999),
            }],
            row_count: 5000,
        });
        cat.add_fk_edge(FkEdge {
            from: (t1, ColumnId(0)),
            to: (t0, ColumnId(0)),
        });
        cat
    }

    #[test]
    fn integer_domain_width_and_step() {
        let d = AttributeDomain::integers(-9, 50);
        assert_eq!(d.step(), 1.0);
        assert_eq!(d.width(), 60.0);
        assert_eq!(d.distinct, Some(60));
    }

    #[test]
    fn real_domain_width_close_to_span() {
        let d = AttributeDomain::reals(0.0, 10.0);
        assert!(d.width() > 10.0 && d.width() < 10.001);
        assert!(d.step() > 0.0);
    }

    #[test]
    fn normalize_clamps() {
        let d = AttributeDomain::integers(0, 100);
        assert_eq!(d.normalize(-5.0), 0.0);
        assert_eq!(d.normalize(50.0), 0.5);
        assert_eq!(d.normalize(200.0), 1.0);
    }

    #[test]
    fn bucket_count_caps_at_domain_size() {
        // Attribute C from the paper's example: values in {1, 2}.
        let c = AttributeDomain::integers(1, 2);
        assert_eq!(c.bucket_count(12), 2);
        let a = AttributeDomain::integers(-9, 50);
        assert_eq!(a.bucket_count(12), 12);
        let r = AttributeDomain::reals(0.0, 1.0);
        assert_eq!(r.bucket_count(12), 12);
    }

    #[test]
    fn paper_example_bucket_index() {
        // Paper Section 3.2: min(A) = -9, max(A) = 50, n = 12, literal 7
        // maps to index floor((7 - (-9)) / (50 - (-9) + 1) * 12) = 3.
        let a = AttributeDomain::integers(-9, 50);
        assert_eq!(a.bucket_of(7.0, 12), 3);
    }

    #[test]
    fn bucket_index_clamps_out_of_domain() {
        let a = AttributeDomain::integers(0, 9);
        assert_eq!(a.bucket_of(-100.0, 10), 0);
        assert_eq!(a.bucket_of(100.0, 10), 9);
    }

    #[test]
    fn exact_buckets_detection() {
        let c = AttributeDomain::integers(1, 2);
        assert!(c.exact_buckets(2));
        assert!(c.exact_buckets(12));
        let a = AttributeDomain::integers(-9, 50);
        assert!(!a.exact_buckets(12));
        assert!(a.exact_buckets(60));
        let r = AttributeDomain::reals(0.0, 1.0);
        assert!(!r.exact_buckets(1000));
    }

    #[test]
    fn catalog_resolution() {
        let cat = demo_catalog();
        let (t, c) = cat.resolve("orders", "price").unwrap();
        assert_eq!(cat.column(t, c).name, "price");
        assert!(matches!(
            cat.resolve("nope", "price"),
            Err(QfeError::UnknownTable(_))
        ));
        assert!(matches!(
            cat.resolve("orders", "nope"),
            Err(QfeError::UnknownColumn(_))
        ));
    }

    #[test]
    fn fk_edge_lookup_is_orientation_insensitive() {
        let cat = demo_catalog();
        let a = (TableId(1), ColumnId(0));
        let b = (TableId(0), ColumnId(0));
        assert_eq!(cat.fk_edge_index(a, b), Some(0));
        assert_eq!(cat.fk_edge_index(b, a), Some(0));
        assert_eq!(cat.fk_edge_index(a, a), None);
    }

    #[test]
    #[should_panic(expected = "duplicate table name")]
    fn duplicate_table_names_rejected() {
        let mut cat = demo_catalog();
        cat.add_table(TableMeta {
            name: "orders".into(),
            columns: vec![],
            row_count: 0,
        });
    }
}
