//! Semantic query fingerprints for sub-plan estimate caching.
//!
//! A join-order optimizer probes a cardinality estimator once per
//! connected table subset — up to 2^20 probes per query — and consecutive
//! queries in a real workload overlap heavily in their sub-plans. Caching
//! those estimates (Hyrise's `CardinalityEstimationCache` pattern) needs a
//! key under which *semantically identical* sub-queries collide even when
//! they are written differently: `a < 5 AND b = 2` must hit the entry
//! filled by `b = 2 AND a < 5`.
//!
//! [`QueryFingerprint`] is that key: a stable 128-bit FNV-1a hash of a
//! *canonical encoding* of the query. Canonicalization applies
//!
//! * **table normalization** — the accessed-table set is sorted and
//!   deduplicated (a [`crate::query::SubSchema`] in the paper's terms);
//! * **join normalization** — each equi-join's sides are ordered so the
//!   smaller `(table, column)` pair comes first (`a = b` ≡ `b = a`), and
//!   the join list is sorted and deduplicated;
//! * **predicate normalization** — compound predicates are grouped per
//!   attribute (several compound predicates on one attribute conjoin,
//!   matching [`crate::featurize`] semantics), and each AND/OR expression
//!   is flattened (nested `And` in `And` splice), its children sorted by
//!   canonical encoding and deduplicated, with singleton `And`/`Or`
//!   wrappers unwrapped.
//!
//! The normalization is sound but deliberately incomplete: equal
//! fingerprints are only produced for queries the rules prove equivalent
//! (commutativity, associativity, idempotence); semantically equal queries
//! written with different *literals* (`a < 5 AND a < 7` vs `a < 7`) hash
//! differently and merely cost a duplicate cache entry, never a wrong
//! estimate. Collisions of the 128-bit hash itself are negligible at any
//! realistic cache size.
//!
//! [`CanonicalQuery`] is the optimizer-facing form: it canonicalizes a
//! query **once** and pre-serializes one byte chunk per table (with its
//! predicates) and per join, so the fingerprint of every table-subset
//! sub-plan is a cheap incremental hash over the selected chunks — no
//! sub-`Query` is cloned, no predicate vector copied, just to look up the
//! cache ([`CanonicalQuery::subset_fingerprint`]).

use crate::predicate::{CmpOp, PredicateExpr, SimplePredicate};
use crate::query::{ColumnRef, Query};
use crate::schema::TableId;
use crate::value::Value;

/// Version tag of the canonical encoding; bump on any layout change so
/// persisted or cross-process fingerprints can never be confused across
/// incompatible canonicalization rules.
const ENCODING_VERSION: u8 = 1;

/// Chunk/node tags of the canonical encoding. Distinct tags keep the
/// byte stream prefix-free, so chunk concatenation is unambiguous
/// without outer length framing.
const TAG_LEAF: u8 = b'L';
const TAG_AND: u8 = b'A';
const TAG_OR: u8 = b'O';
const TAG_TABLE: u8 = b'T';
const TAG_COLUMN: u8 = b'P';
const TAG_JOIN: u8 = b'J';
const TAG_ORPHAN: u8 = b'X';

/// 128-bit FNV-1a offset basis.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013B;

/// Incremental 128-bit FNV-1a hasher. FNV is byte-sequential, so a
/// fingerprint can be composed from pre-serialized chunks without
/// materializing the concatenated encoding.
#[derive(Debug, Clone, Copy)]
struct Fnv128(u128);

impl Fnv128 {
    fn new() -> Self {
        Fnv128(FNV128_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
    }

    fn finish(self) -> u128 {
        self.0
    }
}

/// A stable 128-bit semantic fingerprint of a [`Query`] (see the module
/// docs for the equivalence it certifies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryFingerprint(pub u128);

impl QueryFingerprint {
    /// Fingerprint of `query`. Equivalent to
    /// `CanonicalQuery::new(query).fingerprint()`; build a
    /// [`CanonicalQuery`] instead when many sub-plan fingerprints of the
    /// same query are needed.
    pub fn of(query: &Query) -> Self {
        CanonicalQuery::new(query).fingerprint()
    }
}

impl std::fmt::Display for QueryFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Canonical fingerprint of a single per-attribute predicate expression —
/// the memo key of [`crate::featurize::MemoFeaturizer`]: two expressions
/// with equal fingerprints featurize to bit-identical per-attribute
/// segments.
pub fn expr_fingerprint(expr: &PredicateExpr) -> u128 {
    let mut h = Fnv128::new();
    h.write(&[ENCODING_VERSION]);
    h.write(&canon_expr(expr));
    h.finish()
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(b'i');
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(b'f');
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(b's');
            push_u32(out, s.len() as u32);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn op_code(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Lt => 1,
        CmpOp::Gt => 2,
        CmpOp::Le => 3,
        CmpOp::Ge => 4,
        CmpOp::Ne => 5,
    }
}

fn encode_leaf(out: &mut Vec<u8>, p: &SimplePredicate) {
    out.push(TAG_LEAF);
    out.push(op_code(p.op));
    encode_value(out, &p.value);
}

/// Canonical encoding of one AND/OR expression: flattened, children
/// sorted by encoding and deduplicated, singleton wrappers unwrapped.
/// `And([])` (true) and `Or([])` (false) stay distinct.
fn canon_expr(expr: &PredicateExpr) -> Vec<u8> {
    match expr {
        PredicateExpr::Leaf(p) => {
            let mut out = Vec::with_capacity(16);
            encode_leaf(&mut out, p);
            out
        }
        PredicateExpr::And(children) => canon_children(TAG_AND, children),
        PredicateExpr::Or(children) => canon_children(TAG_OR, children),
    }
}

fn canon_children(tag: u8, children: &[PredicateExpr]) -> Vec<u8> {
    // Canonicalize and flatten: a child that canonicalized to the same
    // node type splices its children in (associativity). Splicing is done
    // on the *encoded* form — a same-tag child's encoding is
    // `[tag][count u32][children…]`, so its body can be re-framed without
    // re-walking the AST.
    let mut parts: Vec<Vec<u8>> = Vec::with_capacity(children.len());
    for child in children {
        let enc = canon_expr(child);
        if enc.first() == Some(&tag) {
            let n = u32::from_le_bytes([enc[1], enc[2], enc[3], enc[4]]) as usize;
            parts.extend(split_nodes(&enc[5..], n));
        } else {
            parts.push(enc);
        }
    }
    parts.sort_unstable();
    parts.dedup();
    if parts.len() == 1 {
        // And([x]) ≡ Or([x]) ≡ x.
        return parts.pop().expect("len checked");
    }
    let mut out = Vec::with_capacity(5 + parts.iter().map(Vec::len).sum::<usize>());
    out.push(tag);
    push_u32(&mut out, parts.len() as u32);
    for p in &parts {
        out.extend_from_slice(p);
    }
    out
}

/// Split a concatenation of `n` encoded expression nodes back into the
/// individual encodings (used to splice nested same-tag nodes).
fn split_nodes(mut bytes: &[u8], n: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let len = node_len(bytes);
        out.push(bytes[..len].to_vec());
        bytes = &bytes[len..];
    }
    debug_assert!(bytes.is_empty(), "trailing bytes after {n} nodes");
    out
}

/// Byte length of the encoded expression node starting at `bytes[0]`.
fn node_len(bytes: &[u8]) -> usize {
    match bytes[0] {
        TAG_LEAF => {
            // tag + op + value
            2 + match bytes[2] {
                b'i' | b'f' => 9,
                b's' => {
                    let n = u32::from_le_bytes([bytes[3], bytes[4], bytes[5], bytes[6]]) as usize;
                    5 + n
                }
                other => unreachable!("bad value tag {other}"),
            }
        }
        TAG_AND | TAG_OR => {
            let n = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]) as usize;
            let mut len = 5;
            for _ in 0..n {
                len += node_len(&bytes[len..]);
            }
            len
        }
        other => unreachable!("bad node tag {other}"),
    }
}

/// A query canonicalized once, pre-serialized into per-table and per-join
/// byte chunks so that every table-subset fingerprint is an incremental
/// hash over the selected chunks.
///
/// The table order is the sorted [`crate::query::SubSchema`] order — the
/// same order [`crate::Query::sub_schema`] reports and the optimizer's
/// subset masks index, so bit `i` of a mask selects `tables()[i]`.
#[derive(Debug, Clone)]
pub struct CanonicalQuery {
    tables: Vec<TableId>,
    /// One chunk per entry of `tables`: the table id plus its grouped,
    /// canonicalized predicates.
    table_chunks: Vec<Vec<u8>>,
    /// Sorted, deduplicated join chunks with the indices (into `tables`)
    /// of the two sides.
    join_chunks: Vec<JoinChunk>,
    /// Predicates on tables the query does not access (only possible on
    /// queries that would fail validation). Included in
    /// [`fingerprint`](Self::fingerprint) — they are part of the query —
    /// but never in a subset: table-subset restriction (the optimizer's
    /// `subset_query`) drops them.
    orphan_chunks: Vec<Vec<u8>>,
}

#[derive(Debug, Clone)]
struct JoinChunk {
    left_idx: usize,
    right_idx: usize,
    bytes: Vec<u8>,
}

impl CanonicalQuery {
    /// Canonicalize `query` (see the module docs for the rules).
    pub fn new(query: &Query) -> Self {
        let tables = query.sub_schema().tables().to_vec();
        let index_of = |t: TableId| tables.binary_search(&t).ok();

        // Group predicate expressions per attribute; several compound
        // predicates on one attribute conjoin (Definition 3.3 allows one
        // per attribute; featurization already merges repeats the same
        // way).
        let mut per_column: Vec<(ColumnRef, Vec<&PredicateExpr>)> = Vec::new();
        for cp in &query.predicates {
            match per_column.iter_mut().find(|(c, _)| *c == cp.column) {
                Some((_, exprs)) => exprs.push(&cp.expr),
                None => per_column.push((cp.column, vec![&cp.expr])),
            }
        }
        let mut column_chunks: Vec<(ColumnRef, Vec<u8>)> = per_column
            .into_iter()
            .map(|(col, exprs)| {
                let canon = if exprs.len() == 1 {
                    canon_expr(exprs[0])
                } else {
                    canon_children(
                        TAG_AND,
                        &exprs.iter().map(|e| (*e).clone()).collect::<Vec<_>>(),
                    )
                };
                let mut chunk = Vec::with_capacity(17 + canon.len());
                chunk.push(TAG_COLUMN);
                push_u64(&mut chunk, col.column.0 as u64);
                chunk.extend_from_slice(&canon);
                (col, chunk)
            })
            .collect();
        column_chunks.sort_by(|(a, ab), (b, bb)| a.cmp(b).then_with(|| ab.cmp(bb)));

        let mut table_chunks = Vec::with_capacity(tables.len());
        for &t in &tables {
            let mut chunk = Vec::new();
            chunk.push(TAG_TABLE);
            push_u64(&mut chunk, t.0 as u64);
            let cols: Vec<&[u8]> = column_chunks
                .iter()
                .filter(|(c, _)| c.table == t)
                .map(|(_, b)| b.as_slice())
                .collect();
            push_u32(&mut chunk, cols.len() as u32);
            for c in cols {
                chunk.extend_from_slice(c);
            }
            table_chunks.push(chunk);
        }

        let orphan_chunks: Vec<Vec<u8>> = column_chunks
            .iter()
            .filter(|(c, _)| index_of(c.table).is_none())
            .map(|(c, b)| {
                let mut chunk = Vec::with_capacity(9 + b.len());
                chunk.push(TAG_ORPHAN);
                push_u64(&mut chunk, c.table.0 as u64);
                chunk.extend_from_slice(b);
                chunk
            })
            .collect();

        let mut join_chunks: Vec<JoinChunk> = query
            .joins
            .iter()
            .filter_map(|j| {
                // Commutativity: order the sides by (table, column).
                let (a, b) = if (j.left.table, j.left.column) <= (j.right.table, j.right.column) {
                    (j.left, j.right)
                } else {
                    (j.right, j.left)
                };
                let (left_idx, right_idx) = (index_of(a.table)?, index_of(b.table)?);
                let mut bytes = Vec::with_capacity(33);
                bytes.push(TAG_JOIN);
                push_u64(&mut bytes, a.table.0 as u64);
                push_u64(&mut bytes, a.column.0 as u64);
                push_u64(&mut bytes, b.table.0 as u64);
                push_u64(&mut bytes, b.column.0 as u64);
                Some(JoinChunk {
                    left_idx,
                    right_idx,
                    bytes,
                })
            })
            .collect();
        join_chunks.sort_by(|a, b| a.bytes.cmp(&b.bytes));
        join_chunks.dedup_by(|a, b| a.bytes == b.bytes);

        CanonicalQuery {
            tables,
            table_chunks,
            join_chunks,
            orphan_chunks,
        }
    }

    /// The canonical (sorted, deduplicated) table order; bit `i` of a
    /// subset mask selects `tables()[i]`.
    pub fn tables(&self) -> &[TableId] {
        &self.tables
    }

    /// Fingerprint of the whole query, including any predicates on
    /// non-accessed tables.
    pub fn fingerprint(&self) -> QueryFingerprint {
        let full = self.full_mask();
        let mut h = self.hash_subset(full);
        for chunk in &self.orphan_chunks {
            h.write(chunk);
        }
        QueryFingerprint(h.finish())
    }

    /// Mask selecting every table.
    pub fn full_mask(&self) -> u32 {
        assert!(
            self.tables.len() <= 32,
            "subset masks support at most 32 tables"
        );
        if self.tables.is_empty() {
            0
        } else {
            u32::MAX >> (32 - self.tables.len())
        }
    }

    /// Fingerprint of the query restricted to the tables selected by
    /// `mask`: exactly `QueryFingerprint::of(&subset_query(query, tables,
    /// mask))` for the sorted table order, computed without building the
    /// sub-`Query` (no clones, one incremental hash over pre-serialized
    /// chunks).
    pub fn subset_fingerprint(&self, mask: u32) -> QueryFingerprint {
        QueryFingerprint(self.hash_subset(mask).finish())
    }

    fn hash_subset(&self, mask: u32) -> Fnv128 {
        debug_assert!(self.tables.len() <= 32);
        let mut h = Fnv128::new();
        h.write(&[ENCODING_VERSION]);
        let mut bits = mask & self.full_mask();
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            h.write(&self.table_chunks[i]);
        }
        for j in &self.join_chunks {
            if mask >> j.left_idx & 1 == 1 && mask >> j.right_idx & 1 == 1 {
                h.write(&j.bytes);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CompoundPredicate;
    use crate::query::JoinPredicate;
    use crate::schema::ColumnId;

    fn col(t: usize, c: usize) -> ColumnRef {
        ColumnRef::new(TableId(t), ColumnId(c))
    }

    fn leaf(op: CmpOp, v: i64) -> PredicateExpr {
        PredicateExpr::leaf(op, v)
    }

    fn cp(c: ColumnRef, expr: PredicateExpr) -> CompoundPredicate {
        CompoundPredicate { column: c, expr }
    }

    #[test]
    fn predicate_order_is_commutative() {
        // a < 5 AND b = 2 ≡ b = 2 AND a < 5 (the issue's motivating pair).
        let a = cp(col(0, 0), leaf(CmpOp::Lt, 5));
        let b = cp(col(0, 1), leaf(CmpOp::Eq, 2));
        let q1 = Query::single_table(TableId(0), vec![a.clone(), b.clone()]);
        let q2 = Query::single_table(TableId(0), vec![b, a]);
        assert_eq!(QueryFingerprint::of(&q1), QueryFingerprint::of(&q2));
    }

    #[test]
    fn and_or_children_are_commutative_and_associative() {
        let e1 = PredicateExpr::And(vec![
            leaf(CmpOp::Ge, 1),
            PredicateExpr::And(vec![leaf(CmpOp::Le, 9), leaf(CmpOp::Ne, 5)]),
        ]);
        let e2 = PredicateExpr::And(vec![
            leaf(CmpOp::Ne, 5),
            leaf(CmpOp::Ge, 1),
            leaf(CmpOp::Le, 9),
        ]);
        assert_eq!(expr_fingerprint(&e1), expr_fingerprint(&e2));
        let o1 = PredicateExpr::Or(vec![leaf(CmpOp::Eq, 1), leaf(CmpOp::Eq, 2)]);
        let o2 = PredicateExpr::Or(vec![leaf(CmpOp::Eq, 2), leaf(CmpOp::Eq, 1)]);
        assert_eq!(expr_fingerprint(&o1), expr_fingerprint(&o2));
        assert_ne!(expr_fingerprint(&e1), expr_fingerprint(&o1));
    }

    #[test]
    fn duplicate_children_and_singleton_wrappers_normalize() {
        let dup = PredicateExpr::Or(vec![leaf(CmpOp::Eq, 3), leaf(CmpOp::Eq, 3)]);
        assert_eq!(
            expr_fingerprint(&dup),
            expr_fingerprint(&leaf(CmpOp::Eq, 3))
        );
        let wrapped = PredicateExpr::And(vec![PredicateExpr::Or(vec![leaf(CmpOp::Lt, 7)])]);
        assert_eq!(
            expr_fingerprint(&wrapped),
            expr_fingerprint(&leaf(CmpOp::Lt, 7))
        );
        // Empty And (true) and empty Or (false) stay distinct.
        assert_ne!(
            expr_fingerprint(&PredicateExpr::And(vec![])),
            expr_fingerprint(&PredicateExpr::Or(vec![]))
        );
    }

    #[test]
    fn semantically_different_queries_differ() {
        let base = Query::single_table(TableId(0), vec![cp(col(0, 0), leaf(CmpOp::Lt, 5))]);
        for other in [
            Query::single_table(TableId(0), vec![cp(col(0, 0), leaf(CmpOp::Le, 5))]),
            Query::single_table(TableId(0), vec![cp(col(0, 0), leaf(CmpOp::Lt, 6))]),
            Query::single_table(TableId(0), vec![cp(col(0, 1), leaf(CmpOp::Lt, 5))]),
            Query::single_table(TableId(1), vec![cp(col(1, 0), leaf(CmpOp::Lt, 5))]),
            Query::single_table(TableId(0), vec![]),
        ] {
            assert_ne!(
                QueryFingerprint::of(&base),
                QueryFingerprint::of(&other),
                "{other:?}"
            );
        }
        // Int and Float literals featurize through different integrality
        // rules, so they must not collide.
        let int5 = Query::single_table(TableId(0), vec![cp(col(0, 0), leaf(CmpOp::Lt, 5))]);
        let float5 = Query::single_table(
            TableId(0),
            vec![cp(col(0, 0), PredicateExpr::leaf(CmpOp::Lt, 5.0))],
        );
        assert_ne!(QueryFingerprint::of(&int5), QueryFingerprint::of(&float5));
    }

    #[test]
    fn join_sides_and_order_normalize() {
        let j = |l: ColumnRef, r: ColumnRef| JoinPredicate { left: l, right: r };
        let q1 = Query {
            tables: vec![TableId(0), TableId(1), TableId(2)],
            joins: vec![j(col(0, 0), col(1, 0)), j(col(1, 1), col(2, 0))],
            predicates: vec![],
        };
        let q2 = Query {
            tables: vec![TableId(2), TableId(0), TableId(1)],
            joins: vec![j(col(2, 0), col(1, 1)), j(col(1, 0), col(0, 0))],
            predicates: vec![],
        };
        assert_eq!(QueryFingerprint::of(&q1), QueryFingerprint::of(&q2));
        // Joining along a different column is a different query.
        let q3 = Query {
            joins: vec![j(col(0, 0), col(1, 1)), j(col(1, 1), col(2, 0))],
            ..q1.clone()
        };
        assert_ne!(QueryFingerprint::of(&q1), QueryFingerprint::of(&q3));
    }

    #[test]
    fn repeated_attribute_predicates_conjoin() {
        // [cp(a, X), cp(a, Y)] ≡ [cp(a, And(X, Y))] — the grouping the
        // featurizers apply.
        let x = leaf(CmpOp::Ge, 1);
        let y = leaf(CmpOp::Le, 9);
        let split = Query::single_table(
            TableId(0),
            vec![cp(col(0, 0), x.clone()), cp(col(0, 0), y.clone())],
        );
        let merged = Query::single_table(
            TableId(0),
            vec![cp(col(0, 0), PredicateExpr::And(vec![x, y]))],
        );
        assert_eq!(QueryFingerprint::of(&split), QueryFingerprint::of(&merged));
    }

    #[test]
    fn subset_fingerprints_match_direct_fingerprints() {
        let q = Query {
            tables: vec![TableId(2), TableId(0), TableId(1)],
            joins: vec![
                JoinPredicate {
                    left: col(0, 0),
                    right: col(1, 0),
                },
                JoinPredicate {
                    left: col(1, 1),
                    right: col(2, 0),
                },
            ],
            predicates: vec![
                cp(col(1, 2), leaf(CmpOp::Gt, 10)),
                cp(col(0, 1), leaf(CmpOp::Eq, 3)),
            ],
        };
        let canon = CanonicalQuery::new(&q);
        assert_eq!(canon.tables(), &[TableId(0), TableId(1), TableId(2)]);
        let tables = canon.tables().to_vec();
        for mask in 1u32..=canon.full_mask() {
            // Reference: restrict by hand exactly like the optimizer's
            // subset_query and fingerprint the restricted query directly.
            let selected: Vec<TableId> = tables
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &t)| t)
                .collect();
            let sub = Query {
                joins: q
                    .joins
                    .iter()
                    .filter(|j| {
                        selected.contains(&j.left.table) && selected.contains(&j.right.table)
                    })
                    .cloned()
                    .collect(),
                predicates: q
                    .predicates
                    .iter()
                    .filter(|p| selected.contains(&p.column.table))
                    .cloned()
                    .collect(),
                tables: selected,
            };
            assert_eq!(
                canon.subset_fingerprint(mask),
                QueryFingerprint::of(&sub),
                "mask {mask:b}"
            );
        }
        assert_eq!(
            canon.subset_fingerprint(canon.full_mask()),
            canon.fingerprint()
        );
    }

    #[test]
    fn display_is_stable_hex() {
        let q = Query::single_table(TableId(0), vec![]);
        let fp = QueryFingerprint::of(&q);
        let s = fp.to_string();
        assert_eq!(s.len(), 32);
        assert_eq!(s, QueryFingerprint::of(&q).to_string());
    }
}
