//! Literal values appearing in predicates.
//!
//! The paper's QFTs operate on numeric domains: every literal is mapped into
//! the `[min(A), max(A)]` range of its attribute. Strings are supported via
//! dictionary codes (Section 6 of the paper sketches the extension; the
//! `qfe-data` crate assigns codes so that code order equals lexicographic
//! order, which makes prefix/range predicates on strings behave like numeric
//! ranges).

use std::cmp::Ordering;
use std::fmt;

/// A literal value compared against an attribute in a simple predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer literal (also used for dates encoded as days
    /// and for dictionary-encoded strings).
    Int(i64),
    /// 64-bit float literal.
    Float(f64),
    /// Raw string literal; must be dictionary-encoded (via
    /// `qfe-data::Dictionary`) before featurization.
    Str(String),
}

impl Value {
    /// Numeric view of the literal, used by all featurizers.
    ///
    /// Returns `None` for raw (not yet dictionary-encoded) strings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// True if the literal is an integer (integral domains use step size 1
    /// when closing open ranges, cf. Section 3.1 of the paper).
    pub fn is_integral(&self) -> bool {
        matches!(self, Value::Int(_))
    }

    /// Total order on numeric values; raw strings compare lexicographically
    /// among themselves and sort after all numbers (they should never be
    /// mixed within one attribute).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Str(_), _) => Ordering::Greater,
            (_, Value::Str(_)) => Ordering::Less,
            (a, b) => {
                let (a, b) = (
                    a.as_f64().unwrap_or(f64::NAN),
                    b.as_f64().unwrap_or(f64::NAN),
                );
                a.total_cmp(&b)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(5).as_f64(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn integrality() {
        assert!(Value::Int(3).is_integral());
        assert!(!Value::Float(3.0).is_integral());
        assert!(!Value::Str("a".into()).is_integral());
    }

    #[test]
    fn ordering_mixes_int_and_float() {
        assert_eq!(Value::Int(1).total_cmp(&Value::Float(1.5)), Ordering::Less);
        assert_eq!(Value::Float(2.0).total_cmp(&Value::Int(2)), Ordering::Equal);
        assert_eq!(Value::Int(3).total_cmp(&Value::Int(-3)), Ordering::Greater);
    }

    #[test]
    fn strings_sort_after_numbers() {
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Int(i64::MAX)),
            Ordering::Greater
        );
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Str("b".into())),
            Ordering::Less
        );
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Str("ab".into()).to_string(), "'ab'");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
    }
}
