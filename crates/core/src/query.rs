//! The query model: count queries over a sub-schema with mixed predicates.
//!
//! A [`Query`] corresponds to
//! `SELECT count(*) FROM t1 ⋈ … ⋈ tk WHERE cp1 AND cp2 AND …`
//! where each `cpᵢ` is a per-attribute [`CompoundPredicate`]
//! (Definition 3.3) and the joins follow key/foreign-key edges of the
//! catalog. Single-table queries are the special case with one table and no
//! joins.

use crate::error::QfeError;
use crate::predicate::{CompoundPredicate, PredicateExpr, SimplePredicate};
use crate::schema::{Catalog, ColumnId, TableId};

/// A fully-qualified column reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Table the column belongs to.
    pub table: TableId,
    /// Column within the table.
    pub column: ColumnId,
}

impl ColumnRef {
    /// Convenience constructor.
    pub fn new(table: TableId, column: ColumnId) -> Self {
        ColumnRef { table, column }
    }
}

/// An equi-join predicate `a = b` along a key/foreign-key edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinPredicate {
    /// Left join column.
    pub left: ColumnRef,
    /// Right join column.
    pub right: ColumnRef,
}

/// The set of tables a query touches; identifies the local model
/// responsible for the query (Section 2.1.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubSchema(Vec<TableId>);

impl SubSchema {
    /// Build from an unsorted list of table ids (deduplicated + sorted so
    /// that equal table sets compare equal).
    pub fn new(mut tables: Vec<TableId>) -> Self {
        tables.sort_unstable();
        tables.dedup();
        SubSchema(tables)
    }

    /// Tables in the sub-schema, sorted.
    pub fn tables(&self) -> &[TableId] {
        &self.0
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no tables.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// A `SELECT count(*)` query over one or more joined tables with mixed
/// selection predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Tables accessed (at least one).
    pub tables: Vec<TableId>,
    /// Equi-joins connecting the tables (empty for single-table queries).
    pub joins: Vec<JoinPredicate>,
    /// Per-attribute compound predicates, implicitly ANDed.
    pub predicates: Vec<CompoundPredicate>,
}

impl Query {
    /// A single-table query with the given compound predicates.
    pub fn single_table(table: TableId, predicates: Vec<CompoundPredicate>) -> Self {
        Query {
            tables: vec![table],
            joins: Vec::new(),
            predicates,
        }
    }

    /// The sub-schema this query belongs to.
    pub fn sub_schema(&self) -> SubSchema {
        SubSchema::new(self.tables.clone())
    }

    /// Total number of simple predicates across all compound predicates.
    pub fn predicate_count(&self) -> usize {
        self.predicates.iter().map(|cp| cp.predicate_count()).sum()
    }

    /// Number of distinct attributes mentioned in selection predicates.
    pub fn attribute_count(&self) -> usize {
        let mut cols: Vec<_> = self.predicates.iter().map(|cp| cp.column).collect();
        cols.sort_unstable();
        cols.dedup();
        cols.len()
    }

    /// True if every compound predicate is a pure conjunction (no OR), i.e.
    /// the query is a *conjunctive query* in the paper's terminology.
    pub fn is_conjunctive(&self) -> bool {
        self.predicates.iter().all(|cp| cp.is_conjunctive())
    }

    /// Validate the query against a catalog:
    /// * all tables/columns exist,
    /// * predicate columns belong to accessed tables,
    /// * join predicates connect accessed tables along FK edges,
    /// * the join graph spans all tables (no cross products),
    /// * per-attribute compound predicates reference exactly one attribute
    ///   (guaranteed by construction, revalidated for defense in depth).
    pub fn validate(&self, catalog: &Catalog) -> Result<(), QfeError> {
        if self.tables.is_empty() {
            return Err(QfeError::InvalidQuery("query accesses no table".into()));
        }
        for &t in &self.tables {
            if t.0 >= catalog.table_count() {
                return Err(QfeError::UnknownTable(format!("table id {}", t.0)));
            }
        }
        for cp in &self.predicates {
            let t = cp.column.table;
            if !self.tables.contains(&t) {
                return Err(QfeError::InvalidQuery(format!(
                    "predicate on table id {} which the query does not access",
                    t.0
                )));
            }
            if cp.column.column.0 >= catalog.table(t).columns.len() {
                return Err(QfeError::UnknownColumn(format!(
                    "column id {} of table {}",
                    cp.column.column.0,
                    catalog.table(t).name
                )));
            }
        }
        for j in &self.joins {
            for side in [j.left, j.right] {
                if !self.tables.contains(&side.table) {
                    return Err(QfeError::InvalidQuery(
                        "join references table the query does not access".into(),
                    ));
                }
            }
            if catalog
                .fk_edge_index(
                    (j.left.table, j.left.column),
                    (j.right.table, j.right.column),
                )
                .is_none()
            {
                return Err(QfeError::InvalidQuery(
                    "join predicate does not follow a key/foreign-key edge".into(),
                ));
            }
        }
        if self.tables.len() > 1 {
            self.check_connected()?;
        }
        Ok(())
    }

    fn check_connected(&self) -> Result<(), QfeError> {
        let mut reached = vec![self.tables[0]];
        let mut frontier = vec![self.tables[0]];
        while let Some(t) = frontier.pop() {
            for j in &self.joins {
                for (a, b) in [(j.left.table, j.right.table), (j.right.table, j.left.table)] {
                    if a == t && !reached.contains(&b) {
                        reached.push(b);
                        frontier.push(b);
                    }
                }
            }
        }
        if reached.len() != self.sub_schema().len() {
            return Err(QfeError::InvalidQuery(
                "join graph does not connect all accessed tables".into(),
            ));
        }
        Ok(())
    }

    /// Render as a SQL string (diagnostics and examples; there is no SQL
    /// parser round trip — the workload generators build ASTs directly).
    pub fn to_sql(&self, catalog: &Catalog) -> String {
        let mut sql = String::from("SELECT count(*) FROM ");
        let table_names: Vec<_> = self
            .tables
            .iter()
            .map(|t| catalog.table(*t).name.clone())
            .collect();
        sql.push_str(&table_names.join(", "));
        let mut clauses = Vec::new();
        for j in &self.joins {
            clauses.push(format!(
                "{}.{} = {}.{}",
                catalog.table(j.left.table).name,
                catalog.column(j.left.table, j.left.column).name,
                catalog.table(j.right.table).name,
                catalog.column(j.right.table, j.right.column).name
            ));
        }
        for cp in &self.predicates {
            let attr = format!(
                "{}.{}",
                catalog.table(cp.column.table).name,
                catalog.column(cp.column.table, cp.column.column).name
            );
            clauses.push(format!("({})", render_expr(&cp.expr, &attr)));
        }
        if !clauses.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&clauses.join(" AND "));
        }
        sql.push(';');
        sql
    }
}

fn render_expr(expr: &PredicateExpr, attr: &str) -> String {
    match expr {
        PredicateExpr::Leaf(SimplePredicate { op, value }) => {
            format!("{attr} {} {value}", op.sql())
        }
        PredicateExpr::And(children) => children
            .iter()
            .map(|c| render_expr(c, attr))
            .collect::<Vec<_>>()
            .join(" AND "),
        PredicateExpr::Or(children) => children
            .iter()
            .map(|c| match c {
                PredicateExpr::And(_) => format!("({})", render_expr(c, attr)),
                _ => render_expr(c, attr),
            })
            .collect::<Vec<_>>()
            .join(" OR "),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::schema::{AttributeDomain, ColumnMeta, FkEdge, TableMeta};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let orders = cat.add_table(TableMeta {
            name: "orders".into(),
            columns: vec![
                ColumnMeta {
                    name: "id".into(),
                    domain: AttributeDomain::integers(0, 99),
                },
                ColumnMeta {
                    name: "price".into(),
                    domain: AttributeDomain::integers(0, 1000),
                },
            ],
            row_count: 100,
        });
        let items = cat.add_table(TableMeta {
            name: "items".into(),
            columns: vec![
                ColumnMeta {
                    name: "order_id".into(),
                    domain: AttributeDomain::integers(0, 99),
                },
                ColumnMeta {
                    name: "qty".into(),
                    domain: AttributeDomain::integers(1, 10),
                },
            ],
            row_count: 500,
        });
        cat.add_fk_edge(FkEdge {
            from: (items, ColumnId(0)),
            to: (orders, ColumnId(0)),
        });
        cat
    }

    fn join_query() -> Query {
        Query {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![JoinPredicate {
                left: ColumnRef::new(TableId(1), ColumnId(0)),
                right: ColumnRef::new(TableId(0), ColumnId(0)),
            }],
            predicates: vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(1)),
                vec![
                    SimplePredicate::new(CmpOp::Gt, 100),
                    SimplePredicate::new(CmpOp::Lt, 500),
                ],
            )],
        }
    }

    #[test]
    fn sub_schema_normalizes() {
        let a = SubSchema::new(vec![TableId(2), TableId(0), TableId(2)]);
        let b = SubSchema::new(vec![TableId(0), TableId(2)]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn counts() {
        let q = join_query();
        assert_eq!(q.predicate_count(), 2);
        assert_eq!(q.attribute_count(), 1);
        assert!(q.is_conjunctive());
    }

    #[test]
    fn validation_accepts_well_formed_join() {
        join_query().validate(&catalog()).unwrap();
    }

    #[test]
    fn validation_rejects_disconnected_join_graph() {
        let mut q = join_query();
        q.joins.clear();
        assert!(matches!(
            q.validate(&catalog()),
            Err(QfeError::InvalidQuery(_))
        ));
    }

    #[test]
    fn validation_rejects_foreign_predicate_table() {
        let mut q = join_query();
        q.tables = vec![TableId(1)];
        q.joins.clear();
        // predicate still references table 0
        assert!(matches!(
            q.validate(&catalog()),
            Err(QfeError::InvalidQuery(_))
        ));
    }

    #[test]
    fn validation_rejects_non_fk_join() {
        let mut q = join_query();
        q.joins[0].left = ColumnRef::new(TableId(1), ColumnId(1)); // items.qty
        assert!(matches!(
            q.validate(&catalog()),
            Err(QfeError::InvalidQuery(_))
        ));
    }

    #[test]
    fn sql_rendering_mentions_all_parts() {
        let q = join_query();
        let sql = q.to_sql(&catalog());
        assert!(sql.starts_with("SELECT count(*) FROM orders, items"));
        assert!(sql.contains("items.order_id = orders.id"));
        assert!(sql.contains("orders.price > 100 AND orders.price < 500"));
        assert!(sql.ends_with(';'));
    }

    #[test]
    fn sql_rendering_of_disjunction_parenthesizes() {
        let cp = CompoundPredicate {
            column: ColumnRef::new(TableId(0), ColumnId(1)),
            expr: PredicateExpr::Or(vec![
                PredicateExpr::And(vec![
                    PredicateExpr::leaf(CmpOp::Ge, 1),
                    PredicateExpr::leaf(CmpOp::Le, 5),
                ]),
                PredicateExpr::leaf(CmpOp::Eq, 9),
            ]),
        };
        let q = Query::single_table(TableId(0), vec![cp]);
        let sql = q.to_sql(&catalog());
        assert!(
            sql.contains("(orders.price >= 1 AND orders.price <= 5) OR orders.price = 9"),
            "{sql}"
        );
    }
}
