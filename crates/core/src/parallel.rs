//! Bounded work pool with a deterministic fixed-chunk scheduler.
//!
//! Every hot loop in the workspace — GBDT split finding, MLP minibatch
//! gradients, batched featurization, the experiment grid — parallelizes
//! through this module, and all of them share one hard contract:
//! **thread count never changes results**. Training with `QFE_THREADS=1`
//! and `QFE_THREADS=8` must produce bit-identical models.
//!
//! Two rules make that hold for floating-point work:
//!
//! 1. **Fixed chunk boundaries.** Work is split into chunks whose
//!    boundaries depend only on the input size (call sites use
//!    constants), never on how many threads happen to be available.
//!    A thread picks up whole chunks; it never subdivides one.
//! 2. **Ordered reduction.** Per-chunk partial results are returned to
//!    the caller in chunk order ([`ThreadPool::scoped`] and
//!    [`ThreadPool::par_chunks`] index results by chunk, not by
//!    completion time), and the caller folds them in that order. A
//!    `Σ chunk₀ + Σ chunk₁ + …` sum therefore rounds identically no
//!    matter which thread computed which partial.
//!
//! Scheduling itself is free to be nondeterministic — chunks migrate
//! between workers under load — because no observable value depends on
//! placement, only on the (fixed) chunking and (ordered) reduction.
//!
//! The pool is **nested-parallelism safe**: a task running on a worker
//! may itself call [`ThreadPool::scoped`]. Waiting threads execute
//! queued jobs instead of blocking ("caller runs"), so a pool of any
//! size makes progress even when every worker is parked inside a nested
//! wait.
//!
//! Sizing: [`default_threads`] honours the `QFE_THREADS` environment
//! variable and falls back to [`std::thread::available_parallelism`].
//! With one thread the pool spawns no workers at all and every scoped
//! call runs inline — `QFE_THREADS=1` is a genuinely serial process.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// A lifetime-erased unit of work. Jobs never unwind: every task body is
/// wrapped in `catch_unwind` by the scope that enqueued it, and the
/// panic payload is re-raised on the *calling* thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Queue {
    state: Mutex<QueueState>,
    /// Signalled on every push and on shutdown.
    cv: Condvar,
}

impl Queue {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        // Jobs cannot unwind while holding this lock (task panics are
        // caught inside the job body), but stay total anyway: a poisoned
        // queue must not wedge the whole process.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn push(&self, jobs: impl IntoIterator<Item = Job>) {
        let mut st = self.lock();
        for job in jobs {
            st.jobs.push_back(job);
        }
        drop(st);
        self.cv.notify_all();
    }

    fn try_pop(&self) -> Option<Job> {
        self.lock().jobs.pop_front()
    }
}

/// A bounded pool of worker threads with deterministic chunked
/// scheduling (see the [module docs](self) for the determinism
/// contract).
pub struct ThreadPool {
    queue: Arc<Queue>,
    threads: usize,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Create a pool that uses `threads` threads in total, **including
    /// the calling thread**: `threads - 1` workers are spawned, and the
    /// thread invoking [`scoped`](Self::scoped) participates while it
    /// waits. `threads == 1` spawns nothing and runs everything inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let queue = Arc::new(Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let workers = (0..threads.saturating_sub(1))
            .filter_map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("qfe-pool-{i}"))
                    .spawn(move || worker_loop(&queue))
                    .ok()
                // A failed spawn (resource exhaustion) just means fewer
                // workers; `scoped` callers drain the queue themselves,
                // so the pool stays correct at any worker count ≥ 0.
            })
            .collect();
        ThreadPool {
            queue,
            threads,
            workers,
        }
    }

    /// Total threads this pool uses (workers + the participating caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every task on the pool and return their results **in task
    /// order** (never completion order — that is what keeps ordered
    /// reductions deterministic).
    ///
    /// Tasks may borrow from the caller's stack: `scoped` does not
    /// return until every task has finished. The calling thread
    /// participates — while waiting it pops and runs queued jobs (its
    /// own or a nested scope's), which is what makes nested
    /// `scoped`-inside-`scoped` deadlock-free at any pool size.
    ///
    /// # Panics
    /// If a task panics, the first panic payload (in task order) is
    /// re-raised on the calling thread after *all* tasks have settled —
    /// no detached worker is left borrowing freed stack data, and the
    /// pool remains usable afterwards.
    pub fn scoped<'scope, T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'scope,
        F: FnOnce() -> T + Send + 'scope,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if self.threads == 1 || n == 1 {
            // Inline fast path: identical results by the module contract
            // (fixed chunks + ordered reduction make placement, including
            // "all on the caller", unobservable).
            return tasks.into_iter().map(|t| t()).collect();
        }

        struct Scope<T> {
            results: Vec<Mutex<Option<std::thread::Result<T>>>>,
            pending: Mutex<usize>,
            done: Condvar,
        }
        let scope = Scope::<T> {
            results: (0..n).map(|_| Mutex::new(None)).collect(),
            pending: Mutex::new(n),
            done: Condvar::new(),
        };
        // A `Send`-able pointer to the stack-pinned scope. Jobs reach the
        // result slots through it without borrowing `scope` for `'scope`
        // (which would outlive this function body as far as the borrow
        // checker is concerned).
        struct ScopePtr<T>(*const Scope<T>);
        unsafe impl<T: Send> Send for ScopePtr<T> {}
        impl<T> Clone for ScopePtr<T> {
            fn clone(&self) -> Self {
                ScopePtr(self.0)
            }
        }
        impl<T> ScopePtr<T> {
            /// # Safety
            /// The pointed-to scope must still be alive — guaranteed here
            /// because `scoped` blocks until every job has run.
            /// (A method receiver also forces the closure to capture the
            /// whole `Send` wrapper, not the raw pointer field.)
            unsafe fn get(&self) -> &Scope<T> {
                &*self.0
            }
        }

        {
            let scope_ptr = ScopePtr(&scope as *const Scope<T>);
            let jobs: Vec<Job> = tasks
                .into_iter()
                .enumerate()
                .map(|(i, task)| {
                    let scope_ptr = scope_ptr.clone();
                    let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                        // SAFETY: `scope` is alive until `scoped` returns,
                        // and `scoped` does not return (or move `scope`'s
                        // fields) before every job has run — see the wait
                        // loop below.
                        let scope_ref: &Scope<T> = unsafe { scope_ptr.get() };
                        let result = catch_unwind(AssertUnwindSafe(task));
                        *scope_ref.results[i]
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner) = Some(result);
                        let mut pending = scope_ref
                            .pending
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner);
                        *pending -= 1;
                        if *pending == 0 {
                            scope_ref.done.notify_all();
                        }
                    });
                    // SAFETY: the job borrows `scope` and the task's
                    // captures, all of which outlive `'scope`. We erase
                    // the lifetime to put the job on the 'static queue,
                    // but never return from this function before
                    // `pending == 0`, i.e. before every job has run to
                    // completion (panics included — `catch_unwind`
                    // guarantees the decrement). No job can access the
                    // borrows after `scoped` returns.
                    unsafe {
                        std::mem::transmute::<
                            Box<dyn FnOnce() + Send + 'scope>,
                            Box<dyn FnOnce() + Send + 'static>,
                        >(job)
                    }
                })
                .collect();
            self.queue.push(jobs);

            // Caller-runs wait: drain the queue (our jobs or anyone
            // else's) and only sleep when there is nothing to run. The
            // timeout re-polls the queue so a nested scope's jobs,
            // enqueued after we went to sleep, still find a helper.
            loop {
                while let Some(job) = self.queue.try_pop() {
                    job();
                }
                let pending = scope.pending.lock().unwrap_or_else(PoisonError::into_inner);
                if *pending == 0 {
                    break;
                }
                let _unused = scope
                    .done
                    .wait_timeout(pending, Duration::from_millis(1))
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        let mut out = Vec::with_capacity(n);
        let mut first_panic = None;
        for slot in scope.results {
            match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
                Some(Ok(v)) => out.push(v),
                Some(Err(payload)) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
                None => unreachable!("scoped returned before a task settled"),
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        out
    }

    /// Apply `f` to fixed-size chunks of `items` in parallel, returning
    /// the per-chunk results **in chunk order**.
    ///
    /// `chunk_len` is the determinism knob: call sites must derive it
    /// from the input only (a constant, or a function of `items.len()`),
    /// never from the thread count. `f` receives `(chunk_index, chunk)`.
    pub fn par_chunks<'scope, T, R, F>(&self, items: &'scope [T], chunk_len: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send + 'scope,
        F: Fn(usize, &'scope [T]) -> R + Sync + 'scope,
    {
        let chunk_len = chunk_len.max(1);
        let f = &f;
        let tasks: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(i, chunk)| move || f(i, chunk))
            .collect();
        self.scoped(tasks)
    }

    /// Like [`par_chunks`](Self::par_chunks) but over disjoint mutable
    /// chunks: `f(chunk_index, chunk)` may write its chunk in place.
    /// Same determinism contract: fixed `chunk_len`, results in chunk
    /// order.
    pub fn par_chunks_mut<'scope, T, R, F>(
        &self,
        items: &'scope mut [T],
        chunk_len: usize,
        f: F,
    ) -> Vec<R>
    where
        T: Send,
        R: Send + 'scope,
        F: Fn(usize, &mut [T]) -> R + Sync + 'scope,
    {
        let chunk_len = chunk_len.max(1);
        let f = &f;
        let tasks: Vec<_> = items
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(i, chunk)| move || f(i, chunk))
            .collect();
        self.scoped(tasks)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.queue.lock().shutdown = true;
        self.queue.cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(queue: &Queue) {
    loop {
        let job = {
            let mut st = queue.lock();
            loop {
                if let Some(job) = st.jobs.pop_front() {
                    break Some(job);
                }
                if st.shutdown {
                    break None;
                }
                st = queue.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

/// The thread count the global pool is built with: the `QFE_THREADS`
/// environment variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (1 if even that is unknown).
pub fn default_threads() -> usize {
    if let Ok(raw) = std::env::var("QFE_THREADS") {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!("ignoring invalid QFE_THREADS='{raw}' (want a positive integer)"),
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

static GLOBAL: OnceLock<Arc<ThreadPool>> = OnceLock::new();

/// The process-wide shared pool, built lazily from [`default_threads`].
/// All library call sites reach it through [`current`], so tests (and
/// the scaling bench) can substitute an explicit pool with
/// [`with_pool`].
pub fn global() -> &'static Arc<ThreadPool> {
    GLOBAL.get_or_init(|| Arc::new(ThreadPool::new(default_threads())))
}

thread_local! {
    static OVERRIDE: std::cell::RefCell<Vec<Arc<ThreadPool>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Run `f` with `pool` as the [`current`] pool on this thread.
///
/// This is how the determinism tests and the scaling bench pin an exact
/// thread count in-process instead of re-execing with a different
/// `QFE_THREADS`. Overrides nest; the previous pool is restored when
/// `f` returns (or unwinds).
pub fn with_pool<R>(pool: &Arc<ThreadPool>, f: impl FnOnce() -> R) -> R {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    OVERRIDE.with(|stack| stack.borrow_mut().push(Arc::clone(pool)));
    let _restore = Restore;
    f()
}

/// The pool parallel call sites should use on this thread: the innermost
/// [`with_pool`] override, or the [`global`] pool.
///
/// Resolve this **once** at the top of a parallel operation and pass the
/// pool down — tasks already running on pool workers do not inherit the
/// caller's thread-local override.
pub fn current() -> Arc<ThreadPool> {
    OVERRIDE
        .with(|stack| stack.borrow().last().cloned())
        .unwrap_or_else(|| Arc::clone(global()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_returns_results_in_task_order() {
        let pool = ThreadPool::new(4);
        let results = pool.scoped(
            (0..64)
                .map(|i| {
                    move || {
                        if i % 7 == 0 {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        i * i
                    }
                })
                .collect(),
        );
        assert_eq!(results, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_pool_runs_inline_and_spawns_nothing() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert!(pool.workers.is_empty());
        let tid = std::thread::current().id();
        let results = pool.scoped(vec![move || std::thread::current().id() == tid; 3]);
        assert_eq!(results, vec![true, true, true]);
    }

    #[test]
    fn par_chunks_is_bit_identical_across_thread_counts() {
        // Partial sums reduced in chunk order must not depend on the
        // number of threads — the core of the determinism contract.
        let data: Vec<f32> = (0..10_000).map(|i| (i as f32).sin()).collect();
        let sum = |pool: &ThreadPool| -> f32 {
            pool.par_chunks(&data, 128, |_, chunk| chunk.iter().sum::<f32>())
                .into_iter()
                .sum()
        };
        let serial = sum(&ThreadPool::new(1));
        for threads in [2, 3, 8] {
            let parallel = sum(&ThreadPool::new(threads));
            assert_eq!(serial.to_bits(), parallel.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk_exactly_once() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0u32; 1000];
        let counts = pool.par_chunks_mut(&mut data, 64, |i, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + i as u32;
            }
            chunk.len()
        });
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        for (j, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (j / 64) as u32, "index {j}");
        }
    }

    #[test]
    fn nested_scopes_make_progress_on_a_small_pool() {
        // Every outer task immediately waits on an inner scope. With
        // blocking waits this deadlocks on a 2-thread pool; caller-runs
        // waiting must complete it.
        let pool = ThreadPool::new(2);
        let total: usize = pool
            .scoped(
                (0..8)
                    .map(|i| {
                        let pool = &pool;
                        move || {
                            pool.scoped((0..8).map(|j| move || i * j).collect::<Vec<_>>())
                                .into_iter()
                                .sum::<usize>()
                        }
                    })
                    .collect(),
            )
            .into_iter()
            .sum();
        assert_eq!(total, (0..8).map(|i| i * (0..8).sum::<usize>()).sum());
    }

    #[test]
    fn panicking_task_propagates_without_hanging_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(
                (0..16)
                    .map(|i| {
                        let ran = &ran;
                        move || {
                            ran.fetch_add(1, Ordering::Relaxed);
                            if i == 5 {
                                panic!("worker closure boom");
                            }
                            i
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        }));
        let payload = result.expect_err("panic must propagate to the scoped caller");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "worker closure boom");
        // Every task settled before the panic was re-raised (no detached
        // borrower), and the pool is still usable afterwards.
        assert_eq!(ran.load(Ordering::Relaxed), 16);
        let alive = pool.scoped(vec![|| 7usize; 4]);
        assert_eq!(alive, vec![7; 4]);
        // Drop must join cleanly: no worker is wedged on the dead scope.
        drop(pool);
    }

    #[test]
    fn with_pool_overrides_current_and_restores_on_unwind() {
        let small = Arc::new(ThreadPool::new(1));
        let big = Arc::new(ThreadPool::new(3));
        let outer_threads = current().threads();
        with_pool(&big, || {
            assert_eq!(current().threads(), 3);
            with_pool(&small, || assert_eq!(current().threads(), 1));
            assert_eq!(current().threads(), 3);
        });
        assert_eq!(current().threads(), outer_threads);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            with_pool(&small, || panic!("unwind through the override"))
        }));
        assert_eq!(
            current().threads(),
            outer_threads,
            "override must pop on unwind"
        );
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn empty_task_list_is_a_noop() {
        let pool = ThreadPool::new(2);
        let out: Vec<u8> = pool.scoped(Vec::<fn() -> u8>::new());
        assert!(out.is_empty());
    }
}
