//! Per-request time budgets for estimation.
//!
//! A cardinality estimate is only useful while the optimizer is still
//! waiting for it — the paper's latency argument (Section 5.6, Table 7) is
//! that featurization + inference must fit the plan-search hot path. A
//! [`Deadline`] makes that budget explicit and portable: it is created at
//! admission time, carried through every stage of a fallback chain, and
//! consulted before (and during) each stage call so a slow learned model
//! is abandoned and the *remaining* budget flows to the cheaper
//! histogram/sampling stages instead of being lost.
//!
//! Deadlines are plain values over [`std::time::Instant`]: cheap to copy,
//! meaningful across threads, and immune to wall-clock adjustments.

use std::time::{Duration, Instant};

/// An absolute point in time by which a request must be answered.
///
/// Constructed from a relative budget ([`Deadline::within`]); all
/// consumers then ask only two questions: [`expired`](Deadline::expired)
/// and [`remaining`](Deadline::remaining).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    start: Instant,
    due: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Self {
        let start = Instant::now();
        Deadline {
            start,
            // Saturate instead of panicking on absurd budgets.
            due: start.checked_add(budget).unwrap_or(start),
        }
    }

    /// A deadline that never expires (practically: ~30 years out). Used
    /// when a caller wants the deadline-aware code path without a real
    /// budget.
    pub fn unbounded() -> Self {
        Deadline::within(Duration::from_secs(60 * 60 * 24 * 365 * 30))
    }

    /// The budget this deadline was created with.
    pub fn budget(&self) -> Duration {
        self.due.duration_since(self.start)
    }

    /// Time since the deadline was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Time left before expiry; `Duration::ZERO` once expired.
    pub fn remaining(&self) -> Duration {
        self.due.saturating_duration_since(Instant::now())
    }

    /// True once the budget is exhausted.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_deadline_has_budget_left() {
        let d = Deadline::within(Duration::from_secs(60));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(59));
        assert_eq!(d.budget(), Duration::from_secs(60));
    }

    #[test]
    fn zero_budget_is_immediately_expired() {
        let d = Deadline::within(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
    }

    #[test]
    fn expires_after_the_budget() {
        let d = Deadline::within(Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(20));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        assert!(d.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn unbounded_never_expires_in_practice() {
        let d = Deadline::unbounded();
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(60 * 60));
    }

    #[test]
    fn copies_agree() {
        let d = Deadline::within(Duration::from_secs(5));
        let e = d;
        assert_eq!(d, e);
        assert_eq!(d.budget(), e.budget());
    }
}
