//! # qfe-core
//!
//! Core library for the EDBT 2023 paper *"Enhanced Featurization of Queries
//! with Mixed Combinations of Predicates for ML-based Cardinality
//! Estimation"* (Müller, Woltmann, Lehner).
//!
//! This crate contains the paper's primary contribution: the **query
//! featurization layer** that turns a SQL-like count query into a numeric
//! feature vector consumable by a machine-learning model, together with the
//! query representation it operates on.
//!
//! The four query featurization techniques (QFTs) of the paper live in
//! [`featurize`]:
//!
//! * [`featurize::SingularPredicateEncoding`] — the established baseline
//!   (`simple` in the paper's plots): one predicate slot per attribute.
//! * [`featurize::RangePredicateEncoding`] — `range`: one normalized closed
//!   range per attribute (Section 3.1).
//! * [`featurize::UniversalConjunctionEncoding`] — `conjunctive`: bucketized
//!   per-attribute domain vectors with entries in {0, ½, 1} plus optional
//!   per-attribute selectivity estimates (Section 3.2, Algorithm 1).
//! * [`featurize::LimitedDisjunctionEncoding`] — `complex`: the first QFT
//!   supporting *mixed* queries, i.e. per-attribute AND/OR combinations
//!   (Section 3.3, Algorithm 2).
//!
//! Queries are modeled after Definition 3.3 of the paper: a **mixed query**
//! is a conjunction of *compound predicates*, where each compound predicate
//! is an arbitrary AND/OR combination of simple predicates over a single
//! attribute. Conjunctive queries are the special case where every compound
//! predicate is a plain conjunction.
//!
//! The crate is deliberately independent of any storage engine or ML model:
//! featurizers only need per-attribute domain metadata (a
//! [`schema::Catalog`]), so the same QFT can be plugged into local neural
//! networks, gradient boosting, or MSCN-style set models (see the `qfe-ml`
//! and `qfe-estimators` crates).

pub mod deadline;
pub mod error;
pub mod estimator;
pub mod featurize;
pub mod fingerprint;
pub mod interval;
pub mod metrics;
pub mod parallel;
pub mod parse;
pub mod predicate;
pub mod query;
pub mod schema;
pub mod value;

pub use deadline::Deadline;
pub use error::{EstimateError, EstimateErrorKind, QfeError};
pub use estimator::{CardinalityEstimator, Estimate, GenerationSource};
pub use fingerprint::{expr_fingerprint, CanonicalQuery, QueryFingerprint};
pub use metrics::{q_error, ErrorSummary, SummaryError};
pub use parallel::ThreadPool;
pub use parse::{parse_single_table_query, parse_where};
pub use predicate::{CmpOp, CompoundPredicate, PredicateExpr, SimplePredicate};
pub use query::{ColumnRef, JoinPredicate, Query, SubSchema};
pub use schema::{AttributeDomain, Catalog, ColumnId, ColumnMeta, TableId, TableMeta};
pub use value::Value;
