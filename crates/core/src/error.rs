//! Error types shared across the workspace.

use std::fmt;

/// Errors raised by query construction, featurization, and estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QfeError {
    /// The query references a table that is not part of the catalog.
    UnknownTable(String),
    /// The query references a column that does not exist on its table.
    UnknownColumn(String),
    /// The query uses a construct the chosen featurizer cannot represent
    /// (e.g. disjunctions under Universal Conjunction Encoding).
    UnsupportedQuery(String),
    /// A predicate literal is incompatible with the column type or domain.
    InvalidLiteral(String),
    /// The query is structurally invalid (e.g. a compound predicate mixing
    /// attributes, or a join edge between unrelated tables).
    InvalidQuery(String),
    /// A model or estimator was asked to work on inputs of the wrong shape.
    ShapeMismatch { expected: usize, actual: usize },
    /// A component was constructed with invalid parameters (e.g. zero
    /// histogram buckets). Replaces the panicking constructor asserts.
    InvalidConfig(String),
    /// A model-lifecycle failure: training aborted (empty or non-finite
    /// labels, diverging loss) or inference was requested before training.
    Training(String),
}

impl fmt::Display for QfeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QfeError::UnknownTable(name) => write!(f, "unknown table: {name}"),
            QfeError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            QfeError::UnsupportedQuery(msg) => write!(f, "unsupported query: {msg}"),
            QfeError::InvalidLiteral(msg) => write!(f, "invalid literal: {msg}"),
            QfeError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            QfeError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            QfeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            QfeError::Training(msg) => write!(f, "training failure: {msg}"),
        }
    }
}

impl std::error::Error for QfeError {}

/// Typed failure taxonomy of [`crate::estimator::CardinalityEstimator::try_estimate`].
///
/// The paper's evaluation protocol requires every estimator to return a
/// finite estimate `>= 1` for *any* query (the q-error is undefined
/// otherwise). `EstimateError` classifies every way an estimator can fail
/// to meet that contract, so callers — in particular a fallback chain —
/// can decide per class whether to retry, fall through, or surface the
/// error. Layered on [`QfeError`] via [`From`].
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateError {
    /// The estimator (or its underlying model) has not been trained yet.
    Untrained { estimator: String },
    /// The query references a table unknown to the estimator's catalog.
    UnknownTable(String),
    /// The query references a column unknown to the estimator's catalog.
    UnknownColumn(String),
    /// A predicate literal falls outside the attribute's domain or type.
    OutOfDomain(String),
    /// The query is outside the estimator's supported class (e.g.
    /// disjunctions under Universal Conjunction Encoding).
    UnsupportedQuery(String),
    /// The estimator produced a non-finite or out-of-protocol value
    /// (NaN, ±∞, or < 1 where the protocol demands `>= 1`).
    NonFinite { estimator: String, value: f64 },
    /// An internal fault (injected chaos, poisoned state, IO corruption).
    Internal { estimator: String, message: String },
    /// The request's time budget ran out before (or while) this estimator
    /// was answering. Deadline-aware callers abandon the stage and spend
    /// the remaining budget on cheaper fallbacks.
    DeadlineExceeded { estimator: String },
    /// The estimator's circuit breaker is open: it failed repeatedly and
    /// is being skipped until its cooldown elapses (half-open probe).
    CircuitOpen { estimator: String },
}

/// Coarse classification of an [`EstimateError`], used for per-stage
/// fallback statistics. Indexable via [`EstimateErrorKind::as_index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateErrorKind {
    Untrained,
    UnknownSchema,
    OutOfDomain,
    UnsupportedQuery,
    NonFinite,
    Internal,
    DeadlineExceeded,
    CircuitOpen,
}

impl EstimateErrorKind {
    /// Number of kinds (size of a per-kind counter array).
    pub const COUNT: usize = 8;

    /// Every kind, in [`as_index`](Self::as_index) order.
    pub const ALL: [EstimateErrorKind; EstimateErrorKind::COUNT] = [
        EstimateErrorKind::Untrained,
        EstimateErrorKind::UnknownSchema,
        EstimateErrorKind::OutOfDomain,
        EstimateErrorKind::UnsupportedQuery,
        EstimateErrorKind::NonFinite,
        EstimateErrorKind::Internal,
        EstimateErrorKind::DeadlineExceeded,
        EstimateErrorKind::CircuitOpen,
    ];

    /// Stable index of this kind in `0..COUNT`.
    pub fn as_index(self) -> usize {
        match self {
            EstimateErrorKind::Untrained => 0,
            EstimateErrorKind::UnknownSchema => 1,
            EstimateErrorKind::OutOfDomain => 2,
            EstimateErrorKind::UnsupportedQuery => 3,
            EstimateErrorKind::NonFinite => 4,
            EstimateErrorKind::Internal => 5,
            EstimateErrorKind::DeadlineExceeded => 6,
            EstimateErrorKind::CircuitOpen => 7,
        }
    }

    /// Short label for experiment output.
    pub fn label(self) -> &'static str {
        match self {
            EstimateErrorKind::Untrained => "untrained",
            EstimateErrorKind::UnknownSchema => "unknown-schema",
            EstimateErrorKind::OutOfDomain => "out-of-domain",
            EstimateErrorKind::UnsupportedQuery => "unsupported-query",
            EstimateErrorKind::NonFinite => "non-finite",
            EstimateErrorKind::Internal => "internal",
            EstimateErrorKind::DeadlineExceeded => "deadline-exceeded",
            EstimateErrorKind::CircuitOpen => "circuit-open",
        }
    }
}

impl EstimateError {
    /// The coarse class of this error.
    pub fn kind(&self) -> EstimateErrorKind {
        match self {
            EstimateError::Untrained { .. } => EstimateErrorKind::Untrained,
            EstimateError::UnknownTable(_) | EstimateError::UnknownColumn(_) => {
                EstimateErrorKind::UnknownSchema
            }
            EstimateError::OutOfDomain(_) => EstimateErrorKind::OutOfDomain,
            EstimateError::UnsupportedQuery(_) => EstimateErrorKind::UnsupportedQuery,
            EstimateError::NonFinite { .. } => EstimateErrorKind::NonFinite,
            EstimateError::Internal { .. } => EstimateErrorKind::Internal,
            EstimateError::DeadlineExceeded { .. } => EstimateErrorKind::DeadlineExceeded,
            EstimateError::CircuitOpen { .. } => EstimateErrorKind::CircuitOpen,
        }
    }
}

impl From<QfeError> for EstimateError {
    fn from(e: QfeError) -> Self {
        match e {
            QfeError::UnknownTable(name) => EstimateError::UnknownTable(name),
            QfeError::UnknownColumn(name) => EstimateError::UnknownColumn(name),
            QfeError::InvalidLiteral(msg) => EstimateError::OutOfDomain(msg),
            QfeError::UnsupportedQuery(msg) | QfeError::InvalidQuery(msg) => {
                EstimateError::UnsupportedQuery(msg)
            }
            QfeError::Training(msg) => EstimateError::Untrained { estimator: msg },
            other @ (QfeError::ShapeMismatch { .. } | QfeError::InvalidConfig(_)) => {
                EstimateError::Internal {
                    estimator: String::new(),
                    message: other.to_string(),
                }
            }
        }
    }
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::Untrained { estimator } => {
                write!(f, "estimator not trained: {estimator}")
            }
            EstimateError::UnknownTable(name) => write!(f, "unknown table: {name}"),
            EstimateError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            EstimateError::OutOfDomain(msg) => write!(f, "out-of-domain literal: {msg}"),
            EstimateError::UnsupportedQuery(msg) => write!(f, "unsupported query: {msg}"),
            EstimateError::NonFinite { estimator, value } => {
                write!(f, "estimator {estimator} produced invalid value {value}")
            }
            EstimateError::Internal { estimator, message } => {
                write!(f, "internal estimator fault ({estimator}): {message}")
            }
            EstimateError::DeadlineExceeded { estimator } => {
                write!(f, "deadline exceeded while waiting on {estimator}")
            }
            EstimateError::CircuitOpen { estimator } => {
                write!(
                    f,
                    "circuit open: {estimator} is being skipped until its cooldown"
                )
            }
        }
    }
}

impl std::error::Error for EstimateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = QfeError::UnknownTable("orders".into());
        assert_eq!(e.to_string(), "unknown table: orders");
        let e = QfeError::ShapeMismatch {
            expected: 4,
            actual: 7,
        };
        assert!(e.to_string().contains("expected 4"));
        assert!(e.to_string().contains("got 7"));
    }

    #[test]
    fn estimate_error_classifies_qfe_errors() {
        let cases = [
            (
                QfeError::UnknownTable("t".into()),
                EstimateErrorKind::UnknownSchema,
            ),
            (
                QfeError::UnknownColumn("c".into()),
                EstimateErrorKind::UnknownSchema,
            ),
            (
                QfeError::InvalidLiteral("x".into()),
                EstimateErrorKind::OutOfDomain,
            ),
            (
                QfeError::UnsupportedQuery("or".into()),
                EstimateErrorKind::UnsupportedQuery,
            ),
            (
                QfeError::InvalidQuery("bad".into()),
                EstimateErrorKind::UnsupportedQuery,
            ),
            (
                QfeError::Training("untrained".into()),
                EstimateErrorKind::Untrained,
            ),
            (
                QfeError::InvalidConfig("0 buckets".into()),
                EstimateErrorKind::Internal,
            ),
        ];
        for (qfe, kind) in cases {
            let est: EstimateError = qfe.clone().into();
            assert_eq!(est.kind(), kind, "{qfe:?}");
        }
    }

    #[test]
    fn kind_indices_are_distinct_and_in_range() {
        let mut seen = [false; EstimateErrorKind::COUNT];
        for k in EstimateErrorKind::ALL {
            let i = k.as_index();
            assert!(i < EstimateErrorKind::COUNT);
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
            assert!(!k.label().is_empty());
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn serving_errors_classify_and_display() {
        let d = EstimateError::DeadlineExceeded {
            estimator: "GB + conj".into(),
        };
        assert_eq!(d.kind(), EstimateErrorKind::DeadlineExceeded);
        assert!(d.to_string().contains("deadline"));
        let c = EstimateError::CircuitOpen {
            estimator: "GB + conj".into(),
        };
        assert_eq!(c.kind(), EstimateErrorKind::CircuitOpen);
        assert!(c.to_string().contains("circuit open"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            QfeError::UnknownColumn("a".into()),
            QfeError::UnknownColumn("a".into())
        );
        assert_ne!(
            QfeError::UnknownColumn("a".into()),
            QfeError::UnknownTable("a".into())
        );
    }
}
