//! Error types shared across the workspace.

use std::fmt;

/// Errors raised by query construction, featurization, and estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QfeError {
    /// The query references a table that is not part of the catalog.
    UnknownTable(String),
    /// The query references a column that does not exist on its table.
    UnknownColumn(String),
    /// The query uses a construct the chosen featurizer cannot represent
    /// (e.g. disjunctions under Universal Conjunction Encoding).
    UnsupportedQuery(String),
    /// A predicate literal is incompatible with the column type or domain.
    InvalidLiteral(String),
    /// The query is structurally invalid (e.g. a compound predicate mixing
    /// attributes, or a join edge between unrelated tables).
    InvalidQuery(String),
    /// A model or estimator was asked to work on inputs of the wrong shape.
    ShapeMismatch { expected: usize, actual: usize },
}

impl fmt::Display for QfeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QfeError::UnknownTable(name) => write!(f, "unknown table: {name}"),
            QfeError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            QfeError::UnsupportedQuery(msg) => write!(f, "unsupported query: {msg}"),
            QfeError::InvalidLiteral(msg) => write!(f, "invalid literal: {msg}"),
            QfeError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            QfeError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for QfeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = QfeError::UnknownTable("orders".into());
        assert_eq!(e.to_string(), "unknown table: orders");
        let e = QfeError::ShapeMismatch {
            expected: 4,
            actual: 7,
        };
        assert!(e.to_string().contains("expected 4"));
        assert!(e.to_string().contains("got 7"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            QfeError::UnknownColumn("a".into()),
            QfeError::UnknownColumn("a".into())
        );
        assert_ne!(
            QfeError::UnknownColumn("a".into()),
            QfeError::UnknownTable("a".into())
        );
    }
}
