//! Feature quantization for compiled inference.
//!
//! A [`FeatureBinner`] holds one sorted cut array per feature and maps
//! `f32` feature values to `u16` bin ids. The contract that makes the
//! compiled GBDT path *bit-identical* to the reference tree walk:
//!
//! > `bin(v) <= k` **iff** `v <= cuts[k]` for every finite `v` and every
//! > cut index `k`, where `bin(v)` counts the cuts strictly less than `v`.
//!
//! A split node that stores the *index* of its threshold in the feature's
//! cut array therefore takes exactly the same branch under the integer
//! compare `bin(v) <= threshold_bin` as the reference walk does under the
//! float compare `v <= threshold` — including for values that land
//! exactly **on** a cut (both paths go left). Non-finite values keep the
//! IEEE behaviour of the float compare: `+∞` and `NaN` never satisfy
//! `v <= t`, so they map past every cut; `-∞` satisfies it for every cut,
//! so it maps to bin 0.
//!
//! [`BinnedFeatureMatrix`] is the `u16` sibling of
//! [`FeatureMatrix`](super::FeatureMatrix): one contiguous row-major
//! arena of bin ids with per-row error slots, built through
//! [`super::Featurizer::featurize_binned_into`] so featurization stays
//! zero-alloc and binning happens once, in place.

use crate::error::QfeError;
use crate::query::Query;

use super::Featurizer;

/// Bin id for values past every cut (`NaN`, `+∞`, and any value greater
/// than the last cut on a feature with 65534 cuts). `u16::MAX` is never a
/// valid threshold index, so a compiled split can never send it left.
pub const BIN_OVERFLOW: u16 = u16::MAX;

/// Largest usable number of cuts per feature: bin ids span
/// `0..=cuts.len()`, and [`BIN_OVERFLOW`] must stay out of that range.
pub const MAX_CUTS_PER_FEATURE: usize = u16::MAX as usize - 1;

/// Per-feature sorted cut arrays mapping `f32` features to `u16` bins.
///
/// Stored flattened (one `Vec<f32>` plus offsets) so a binner with
/// hundreds of features is two allocations, not hundreds.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureBinner {
    /// `offsets[f]..offsets[f + 1]` indexes feature `f`'s cuts in `cuts`.
    offsets: Vec<u32>,
    /// All cut values, per-feature ascending and deduplicated.
    cuts: Vec<f32>,
    /// Features with at least one cut, as `(feature, start, end)` into
    /// `cuts`. GBDT splits concentrate on few features, so most features
    /// bin everything to 0 and the `NaN` fix-up path only inspects these.
    active: Vec<(u32, u32, u32)>,
    /// Dense compare operands for the vectorized [`Self::bin_row`] pass:
    /// feature `f`'s first two cuts in `cut1[f]` / `cut2[f]`, padded
    /// with `+∞` — `u16::from(cut1[f] < v) + u16::from(cut2[f] < v)` is
    /// then the correct bin for every feature with at most two cuts
    /// (cutless features compare `v < +∞` twice and stay 0) in one
    /// branch-free, autovectorizable sweep.
    cut1: Vec<f32>,
    cut2: Vec<f32>,
    /// Features with three or more cuts (same layout as `active`) — the
    /// only ones the dense sweep cannot answer.
    multi: Vec<(u32, u32, u32)>,
    /// `bin(1.0)` per feature: the bin row of the all-ones vector. The
    /// conjunctive encoders default every unpredicated attribute to 1.0,
    /// so their fused featurize-and-bin path starts from this template
    /// with one memcpy instead of re-binning the constant majority of the
    /// row — see [`Self::bin_ones_into`].
    ones: Vec<u16>,
}

impl FeatureBinner {
    /// Build from per-feature cut lists.
    ///
    /// Each list must be sorted ascending, deduplicated, finite, and hold
    /// at most [`MAX_CUTS_PER_FEATURE`] cuts; returns `None` otherwise
    /// (callers treat an unbinnable model as "keep the reference path",
    /// never as an error).
    pub fn from_cuts(per_feature: &[Vec<f32>]) -> Option<Self> {
        let mut offsets = Vec::with_capacity(per_feature.len() + 1);
        let mut cuts = Vec::with_capacity(per_feature.iter().map(Vec::len).sum());
        let mut at = 0u32;
        offsets.push(at);
        for fc in per_feature {
            if fc.len() > MAX_CUTS_PER_FEATURE {
                return None;
            }
            if fc.iter().any(|c| !c.is_finite()) {
                return None;
            }
            if fc.windows(2).any(|w| w[0] >= w[1]) {
                return None; // unsorted or duplicated (all finite by now)
            }
            at = at.checked_add(fc.len() as u32)?;
            cuts.extend_from_slice(fc);
            offsets.push(at);
        }
        let active: Vec<(u32, u32, u32)> = offsets
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[0] != w[1])
            .map(|(f, w)| (f as u32, w[0], w[1]))
            .collect();
        let nth_or_inf = |w: &[u32], i: u32| {
            if w[1] - w[0] > i && w[1] - w[0] <= 2 {
                cuts[(w[0] + i) as usize]
            } else {
                f32::INFINITY
            }
        };
        let cut1 = offsets.windows(2).map(|w| nth_or_inf(w, 0)).collect();
        let cut2 = offsets.windows(2).map(|w| nth_or_inf(w, 1)).collect();
        let multi = active
            .iter()
            .copied()
            .filter(|&(_, s, e)| e - s > 2)
            .collect();
        let ones = offsets
            .windows(2)
            .map(|w| bin_in(&cuts[w[0] as usize..w[1] as usize], 1.0))
            .collect();
        Some(FeatureBinner {
            offsets,
            cuts,
            active,
            cut1,
            cut2,
            multi,
            ones,
        })
    }

    /// Number of features this binner covers (== the featurizer `dim()`
    /// it was derived for).
    pub fn features(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The sorted cut array of feature `f`.
    pub fn cuts(&self, f: usize) -> &[f32] {
        &self.cuts[self.offsets[f] as usize..self.offsets[f + 1] as usize]
    }

    /// Index of `threshold` in feature `f`'s cut array, if present
    /// (exact float equality — the compiled-forest builder looks up
    /// thresholds it inserted itself).
    pub fn cut_index(&self, f: usize, threshold: f32) -> Option<u16> {
        let cuts = self.cuts(f);
        let i = cuts.partition_point(|&c| c < threshold);
        (cuts.get(i).copied() == Some(threshold)).then_some(i as u16)
    }

    /// Bin one value of feature `f`: the number of cuts strictly less
    /// than `v` (see the module docs for why this makes integer compares
    /// agree with the reference float compares, cut-exact values
    /// included). `NaN` maps to [`BIN_OVERFLOW`] — except on features
    /// with no cuts at all, where every value (`NaN` included) shares the
    /// single bin 0: such a feature backs no split, so no compiled
    /// compare ever reads the id, and the constant lets [`Self::bin_row`]
    /// skip cutless features entirely.
    #[inline]
    pub fn bin_value(&self, f: usize, v: f32) -> u16 {
        bin_in(self.cuts(f), v)
    }

    /// Bin a full feature row into `out`.
    ///
    /// Three passes, ordered hot to cold: one dense branch-free sweep
    /// answers every cutless and single-cut feature (`cut1` docs), a
    /// short loop patches the multi-cut features, and — only when the
    /// row actually contains a `NaN` — a fix-up re-bins the active
    /// features so `NaN` maps to [`BIN_OVERFLOW`] wherever a split could
    /// read it.
    ///
    /// # Panics
    /// Panics if `row` and `out` are shorter than [`features`](Self::features).
    #[inline]
    pub fn bin_row(&self, row: &[f32], out: &mut [u16]) {
        let n = self.features();
        let (row, out) = (&row[..n], &mut out[..n]);
        for (w, ((&v, &c1), &c2)) in out
            .iter_mut()
            .zip(row.iter().zip(&self.cut1).zip(&self.cut2))
        {
            *w = u16::from(c1 < v) + u16::from(c2 < v);
        }
        for &(f, s, e) in &self.multi {
            out[f as usize] = bin_in(&self.cuts[s as usize..e as usize], row[f as usize]);
        }
        if row.iter().map(|v| u32::from(v.is_nan())).sum::<u32>() != 0 {
            for &(f, s, e) in &self.active {
                out[f as usize] = bin_in(&self.cuts[s as usize..e as usize], row[f as usize]);
            }
        }
    }

    /// Bin a contiguous span of features starting at feature `f0` —
    /// identical bits to [`Self::bin_row`] restricted to
    /// `f0..f0 + seg.len()`, using the same dense sweep. Lets fused
    /// featurize-and-bin paths re-bin just the segments they touched.
    ///
    /// # Panics
    /// Panics if the span exceeds [`features`](Self::features) or `out`
    /// is shorter than `seg`.
    #[inline]
    pub fn bin_span(&self, f0: usize, seg: &[f32], out: &mut [u16]) {
        let n = seg.len();
        let out = &mut out[..n];
        let within = |f: u32| (f as usize) >= f0 && (f as usize) < f0 + n;
        for (w, ((&v, &c1), &c2)) in out.iter_mut().zip(
            seg.iter()
                .zip(&self.cut1[f0..f0 + n])
                .zip(&self.cut2[f0..f0 + n]),
        ) {
            *w = u16::from(c1 < v) + u16::from(c2 < v);
        }
        for &(f, s, e) in &self.multi {
            if within(f) {
                out[f as usize - f0] =
                    bin_in(&self.cuts[s as usize..e as usize], seg[f as usize - f0]);
            }
        }
        if seg.iter().map(|v| u32::from(v.is_nan())).sum::<u32>() != 0 {
            for &(f, s, e) in &self.active {
                if within(f) {
                    out[f as usize - f0] =
                        bin_in(&self.cuts[s as usize..e as usize], seg[f as usize - f0]);
                }
            }
        }
    }

    /// Write the bin row of the all-ones vector — identical to
    /// [`Self::bin_row`] over `[1.0; features()]`, but a straight copy of
    /// the precomputed template (see the `ones` field).
    ///
    /// # Panics
    /// Panics if `out` is shorter than [`features`](Self::features).
    #[inline]
    pub fn bin_ones_into(&self, out: &mut [u16]) {
        out[..self.ones.len()].copy_from_slice(&self.ones);
    }

    /// Bin a whole row-major `f32` arena (`features()` values per row)
    /// into a parallel `u16` arena: [`Self::bin_row`] streamed down the
    /// batch.
    ///
    /// # Panics
    /// Panics if `data` and `out` are not equal-length multiples of
    /// [`features`](Self::features).
    pub fn bin_matrix(&self, data: &[f32], out: &mut [u16]) {
        let n = self.features();
        assert_eq!(data.len(), out.len());
        assert_eq!(data.len() % n.max(1), 0);
        for (r_out, r_in) in out.chunks_exact_mut(n).zip(data.chunks_exact(n)) {
            self.bin_row(r_in, r_out);
        }
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * 4
            + self.cuts.len() * 4
            + (self.cut1.len() + self.cut2.len()) * 4
            + (self.active.len() + self.multi.len()) * std::mem::size_of::<(u32, u32, u32)>()
            + self.ones.len() * 2
    }

    /// Stable byte serialization of the cut layout (little-endian offsets
    /// then cut bit patterns) — determinism-fingerprint material, not a
    /// durable format.
    pub fn fingerprint_bytes(&self, out: &mut Vec<u8>) {
        for &o in &self.offsets {
            out.extend_from_slice(&o.to_le_bytes());
        }
        for &c in &self.cuts {
            out.extend_from_slice(&c.to_bits().to_le_bytes());
        }
    }
}

/// Cuts per feature up to which binning counts linearly (branch-free,
/// autovectorizable) instead of binary-searching. GBDT split thresholds
/// spread over hundreds of features leave most cut arrays this short, so
/// the branchy `partition_point` is reserved for genuinely long arrays.
const LINEAR_SEARCH_CUTS: usize = 64;

/// Count the cuts strictly below `v` — the shared kernel behind
/// [`FeatureBinner::bin_value`] and [`FeatureBinner::bin_row`].
#[inline]
fn bin_in(cuts: &[f32], v: f32) -> u16 {
    if cuts.is_empty() {
        // No splits on this feature: one bin covers the whole line, NaN
        // included (see `bin_value`'s docs).
        return 0;
    }
    if v.is_nan() {
        return BIN_OVERFLOW;
    }
    if cuts.len() <= LINEAR_SEARCH_CUTS {
        // Sums at most `LINEAR_SEARCH_CUTS` ones — no u16 overflow.
        cuts.iter().map(|&c| u16::from(c < v)).sum()
    } else {
        cuts.partition_point(|&c| c < v) as u16
    }
}

/// A batch of featurized-and-quantized queries: one contiguous row-major
/// `u16` arena with per-row error slots — the integer sibling of
/// [`FeatureMatrix`](super::FeatureMatrix).
#[derive(Debug)]
pub struct BinnedFeatureMatrix {
    rows: usize,
    cols: usize,
    bins: Vec<u16>,
    errors: Vec<Option<QfeError>>,
}

impl BinnedFeatureMatrix {
    /// Featurize and quantize every query into a fresh arena,
    /// row-parallel on the shared [`crate::parallel`] pool.
    ///
    /// Rows the featurizer rejects are zero-filled with their error
    /// recorded, exactly like the `f32` arena. The binner must cover the
    /// featurizer's width; a mismatch is a caller bug and poisons every
    /// row with [`QfeError::ShapeMismatch`] rather than panicking.
    pub fn build<F: Featurizer + ?Sized>(
        featurizer: &F,
        binner: &FeatureBinner,
        queries: &[Query],
    ) -> Self {
        let cols = featurizer.dim();
        let rows = queries.len();
        let mut bins = vec![0u16; rows * cols];
        if binner.features() != cols {
            let errors = (0..rows)
                .map(|_| {
                    Some(QfeError::ShapeMismatch {
                        expected: cols,
                        actual: binner.features(),
                    })
                })
                .collect();
            return BinnedFeatureMatrix {
                rows,
                cols,
                bins,
                errors,
            };
        }
        if cols == 0 {
            let errors = queries
                .iter()
                .map(|query| featurizer.featurize_into(query, &mut []).err())
                .collect();
            return BinnedFeatureMatrix {
                rows,
                cols,
                bins,
                errors,
            };
        }
        // Featurize → bin each row through one reused `f32` scratch row
        // per worker: the intermediate float features never materialize
        // as a batch arena, so the only `rows × cols` traffic is the
        // `u16` output. Chunk size is fixed (never thread-derived) so the
        // arena is bit-identical at any `QFE_THREADS` — the same
        // determinism contract as `FeatureMatrix::build`.
        const ROW_CHUNK: usize = 64;
        let bin_rows = |queries: &[Query], out: &mut [u16]| {
            let mut scratch = vec![0.0f32; cols];
            queries
                .iter()
                .zip(out.chunks_exact_mut(cols))
                .map(|(query, row)| {
                    match featurizer.featurize_binned_into(query, binner, &mut scratch, row) {
                        Ok(()) => None,
                        Err(e) => {
                            // Keep the contract of all-zero error rows
                            // (bin 0, not `bin(0.0)` — they differ on
                            // features with negative cuts).
                            row.fill(0);
                            Some(e)
                        }
                    }
                })
                .collect::<Vec<Option<QfeError>>>()
        };
        let errors = if rows <= ROW_CHUNK {
            bin_rows(queries, &mut bins)
        } else {
            let pool = crate::parallel::current();
            let chunks: Vec<(&[Query], &mut [u16])> = queries
                .chunks(ROW_CHUNK)
                .zip(bins.chunks_mut(ROW_CHUNK * cols))
                .collect();
            let bin_rows = &bin_rows;
            pool.scoped(
                chunks
                    .into_iter()
                    .map(|(qs, out)| move || bin_rows(qs, out))
                    .collect(),
            )
            .into_iter()
            .flatten()
            .collect()
        };
        BinnedFeatureMatrix {
            rows,
            cols,
            bins,
            errors,
        }
    }

    /// Number of rows (== number of queries passed to [`build`](Self::build)).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Feature dimension (== the featurizer's `dim()`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The `r`-th bin row. Zero-filled if the row errored.
    pub fn row(&self, r: usize) -> &[u16] {
        &self.bins[r * self.cols..(r + 1) * self.cols]
    }

    /// The error recorded for row `r`, if featurization rejected it.
    pub fn row_error(&self, r: usize) -> Option<&QfeError> {
        self.errors[r].as_ref()
    }

    /// Number of rows that featurized successfully.
    pub fn ok_rows(&self) -> usize {
        self.errors.iter().filter(|e| e.is_none()).count()
    }

    /// The whole arena as one row-major slice.
    pub fn as_slice(&self) -> &[u16] {
        &self.bins
    }

    /// Decompose into `(rows, cols, arena, per-row errors)` without copying.
    pub fn into_raw(self) -> (usize, usize, Vec<u16>, Vec<Option<QfeError>>) {
        (self.rows, self.cols, self.bins, self.errors)
    }

    /// Approximate in-memory footprint in bytes — half the `f32` arena's
    /// data cost, which is the point.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.bins.len() * std::mem::size_of::<u16>()
            + self.errors.len() * std::mem::size_of::<Option<QfeError>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::FeatureVec;
    use crate::predicate::{CmpOp, CompoundPredicate, SimplePredicate};
    use crate::query::ColumnRef;
    use crate::schema::{ColumnId, TableId};

    fn binner2() -> FeatureBinner {
        FeatureBinner::from_cuts(&[vec![0.25, 0.5, 0.75], vec![10.0]]).unwrap()
    }

    #[test]
    fn bin_value_counts_cuts_below() {
        let b = binner2();
        assert_eq!(b.features(), 2);
        assert_eq!(b.bin_value(0, 0.0), 0);
        assert_eq!(b.bin_value(0, 0.25), 0, "value on a cut stays left of it");
        assert_eq!(b.bin_value(0, 0.3), 1);
        assert_eq!(b.bin_value(0, 0.5), 1);
        assert_eq!(b.bin_value(0, 0.7500001), 3);
        assert_eq!(b.bin_value(1, 9.0), 0);
        assert_eq!(b.bin_value(1, 11.0), 1);
    }

    #[test]
    fn bin_agrees_with_float_compare_on_every_cut() {
        // The exact contract the compiled forest relies on: for every cut
        // index k and every probe v, `bin(v) <= k  ⇔  v <= cuts[k]`.
        let b = binner2();
        for f in 0..b.features() {
            let cuts = b.cuts(f).to_vec();
            let mut probes = vec![f32::NEG_INFINITY, f32::INFINITY, -1.0, 0.0, 100.0];
            for &c in &cuts {
                // Adjacent representable floats, MSRV-friendly (f32::next_up
                // is post-1.82): positive cuts step via the bit pattern.
                let below = f32::from_bits(c.to_bits() - 1);
                let above = f32::from_bits(c.to_bits() + 1);
                probes.extend([c, c - f32::EPSILON, c + f32::EPSILON, below, above]);
            }
            for (k, &cut) in cuts.iter().enumerate() {
                for &v in &probes {
                    assert_eq!(
                        b.bin_value(f, v) <= k as u16,
                        v <= cut,
                        "feature {f}, cut {k} ({cut}), probe {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn nan_maps_to_overflow_bin() {
        let b = binner2();
        assert_eq!(b.bin_value(0, f32::NAN), BIN_OVERFLOW);
        // Like `NaN <= t`, the overflow bin never satisfies `bin <= k`.
        assert!(BIN_OVERFLOW > MAX_CUTS_PER_FEATURE as u16);
    }

    #[test]
    fn ones_template_matches_bin_row_of_all_ones() {
        // Includes a >2-cut feature (dense sweep can't answer it) and a
        // cutless one.
        let b =
            FeatureBinner::from_cuts(&[vec![0.25, 0.5, 0.75], vec![10.0], vec![], vec![0.5, 2.0]])
                .unwrap();
        let mut expect = vec![0u16; 4];
        b.bin_row(&[1.0; 4], &mut expect);
        let mut got = vec![9u16; 4];
        b.bin_ones_into(&mut got);
        assert_eq!(got, expect);
    }

    #[test]
    fn bin_span_matches_bin_row_restriction() {
        let b = FeatureBinner::from_cuts(&[
            vec![0.25, 0.5, 0.75], // multi-cut
            vec![10.0],
            vec![],
            vec![-1.0, 2.0],
            vec![0.0],
        ])
        .unwrap();
        let rows: &[[f32; 5]] = &[
            [0.6, 11.0, 3.0, -0.5, 0.0],
            [f32::NAN, 9.0, f32::NAN, 2.0, 0.1],
            [1.0, 1.0, 1.0, 1.0, 1.0],
        ];
        for row in rows {
            let mut full = vec![0u16; 5];
            b.bin_row(row, &mut full);
            for f0 in 0..5 {
                for f1 in f0..=5 {
                    let mut seg = vec![7u16; f1 - f0];
                    b.bin_span(f0, &row[f0..f1], &mut seg);
                    assert_eq!(seg, &full[f0..f1], "span {f0}..{f1} of {row:?}");
                }
            }
        }
    }

    #[test]
    fn cut_index_finds_exact_thresholds_only() {
        let b = binner2();
        assert_eq!(b.cut_index(0, 0.5), Some(1));
        assert_eq!(b.cut_index(0, 0.51), None);
        assert_eq!(b.cut_index(1, 10.0), Some(0));
    }

    #[test]
    fn from_cuts_rejects_malformed_inputs() {
        assert!(FeatureBinner::from_cuts(&[vec![1.0, 1.0]]).is_none(), "dup");
        assert!(
            FeatureBinner::from_cuts(&[vec![2.0, 1.0]]).is_none(),
            "unsorted"
        );
        assert!(
            FeatureBinner::from_cuts(&[vec![f32::NAN]]).is_none(),
            "NaN cut"
        );
        assert!(
            FeatureBinner::from_cuts(&[vec![f32::INFINITY]]).is_none(),
            "infinite cut"
        );
        assert!(FeatureBinner::from_cuts(&[vec![]]).is_some(), "empty ok");
    }

    /// Featurizer emitting `[n_preds, n_preds + 0.4]`, rejecting odd
    /// predicate counts — mirrors the `FeatureMatrix` test double.
    struct Picky;

    impl Featurizer for Picky {
        fn name(&self) -> &'static str {
            "picky"
        }

        fn dim(&self) -> usize {
            2
        }

        fn featurize(&self, query: &Query) -> Result<FeatureVec, QfeError> {
            if query.predicates.len() % 2 == 1 {
                return Err(QfeError::UnsupportedQuery("odd".into()));
            }
            let n = query.predicates.len() as f32;
            Ok(FeatureVec(vec![n, n + 0.4]))
        }
    }

    fn q(n_preds: usize) -> Query {
        let preds = (0..n_preds)
            .map(|i| {
                CompoundPredicate::conjunction(
                    ColumnRef::new(TableId(0), ColumnId(i)),
                    vec![SimplePredicate::new(CmpOp::Eq, 1)],
                )
            })
            .collect();
        Query::single_table(TableId(0), preds)
    }

    #[test]
    fn binned_arena_matches_scalar_binning() {
        let f = Picky;
        let b = FeatureBinner::from_cuts(&[vec![1.0, 3.0], vec![2.4]]).unwrap();
        let queries = [q(0), q(2), q(4)];
        let m = BinnedFeatureMatrix::build(&f, &b, &queries);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        assert_eq!(m.ok_rows(), 3);
        for (i, query) in queries.iter().enumerate() {
            let fv = f.featurize(query).unwrap();
            let mut expect = vec![0u16; 2];
            b.bin_row(fv.as_slice(), &mut expect);
            assert_eq!(m.row(i), &expect[..], "row {i}");
        }
    }

    #[test]
    fn failed_rows_are_zeroed_and_carry_their_error() {
        let b = FeatureBinner::from_cuts(&[vec![1.0], vec![1.0]]).unwrap();
        let m = BinnedFeatureMatrix::build(&Picky, &b, &[q(2), q(1)]);
        assert_eq!(m.ok_rows(), 1);
        assert!(m.row_error(0).is_none());
        assert!(matches!(
            m.row_error(1),
            Some(QfeError::UnsupportedQuery(_))
        ));
        assert_eq!(m.row(1), &[0, 0]);
    }

    #[test]
    fn width_mismatch_poisons_every_row_with_a_typed_error() {
        let b = FeatureBinner::from_cuts(&[vec![1.0]]).unwrap(); // 1 feature, dim 2
        let m = BinnedFeatureMatrix::build(&Picky, &b, &[q(0), q(2)]);
        assert_eq!(m.ok_rows(), 0);
        for r in 0..2 {
            assert!(matches!(
                m.row_error(r),
                Some(QfeError::ShapeMismatch { .. })
            ));
        }
    }

    #[test]
    fn empty_batch_and_raw_decomposition() {
        let b = binner2();
        let m = BinnedFeatureMatrix::build(&Picky, &b, &[]);
        assert_eq!((m.rows(), m.cols()), (0, 2));
        let (rows, cols, bins, errors) = m.into_raw();
        assert_eq!((rows, cols), (0, 2));
        assert!(bins.is_empty() && errors.is_empty());
    }

    #[test]
    fn fingerprint_bytes_are_stable_and_value_sensitive() {
        let mut a = Vec::new();
        binner2().fingerprint_bytes(&mut a);
        let mut b = Vec::new();
        binner2().fingerprint_bytes(&mut b);
        assert_eq!(a, b);
        let mut c = Vec::new();
        FeatureBinner::from_cuts(&[vec![0.25, 0.5, 0.75], vec![11.0]])
            .unwrap()
            .fingerprint_bytes(&mut c);
        assert_ne!(a, c);
    }
}
