//! Lossless query featurization (Definition 3.1) and its verification.
//!
//! A feature vector `F` is a *lossless* featurization of query `Q` iff
//! there is a function from `F` to a query `Q̃` such that `Q` and `Q̃` have
//! the same result. This module implements exactly such a function for the
//! bucketized encodings: [`invert_conjunctive`] maps a Universal
//! Conjunction / Limited Disjunction feature vector back to a query whose
//! per-attribute qualifying set is the union of its fully-qualifying
//! buckets.
//!
//! When every attribute is in the exact small-domain mode (one bucket per
//! distinct value — the limit of Lemma 3.2) the reconstruction is exact:
//! the reconstructed query selects precisely the same rows on **any** data.
//! With coarse buckets, `½` entries mark partially-qualifying partitions
//! and the reconstruction brackets the original query between a subset
//! (counting only `1` buckets) and a superset (counting `½` too); the gap
//! shrinks as `n` grows, which is the convergence statement of Lemma 3.2.
//! Integration tests in `tests/lossless.rs` verify both directions against
//! the execution engine.

use crate::error::QfeError;
use crate::featurize::{FeatureVec, Featurizer, UniversalConjunctionEncoding};
use crate::predicate::{CmpOp, CompoundPredicate, PredicateExpr};
use crate::query::Query;
use crate::schema::{AttributeDomain, TableId};

/// Which buckets count as qualifying during inversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InversionMode {
    /// Only fully-qualifying buckets (`1`): yields a query whose result is
    /// a subset of the original's.
    Subset,
    /// Fully and partially qualifying buckets (`1` and `½`): yields a
    /// superset query.
    Superset,
}

/// The value range covered by bucket `idx` of `domain` under `n_a` buckets
/// (inclusive bounds; for real domains the upper bound is exclusive up to
/// the domain step).
pub fn bucket_bounds(domain: &AttributeDomain, n_a: usize, idx: usize) -> (f64, f64) {
    if domain.integral {
        // Exact integer arithmetic: bucket i covers offsets o with
        // i <= o*n_a/width < i+1.
        let width = (domain.max - domain.min) as i64 + 1;
        let n = n_a as i64;
        let i = idx as i64;
        let lo_off = (i * width + n - 1) / n;
        let hi_off = ((i + 1) * width + n - 1) / n - 1;
        (domain.min + lo_off as f64, domain.min + hi_off as f64)
    } else {
        let w = domain.width() / n_a as f64;
        let lo = domain.min + idx as f64 * w;
        let hi = (domain.min + (idx + 1) as f64 * w - domain.step()).min(domain.max);
        (lo, hi)
    }
}

/// Invert a Universal Conjunction Encoding feature vector into a query
/// `Q̃` over `table` whose per-attribute qualifying sets are unions of the
/// selected buckets (the function required by Definition 3.1).
///
/// The selectivity entries (if present in the encoding) are skipped; they
/// are redundant with the buckets for inversion purposes.
pub fn invert_conjunctive(
    enc: &UniversalConjunctionEncoding,
    features: &FeatureVec,
    table: TableId,
    mode: InversionMode,
) -> Result<Query, QfeError> {
    if features.dim() != enc.dim() {
        return Err(QfeError::ShapeMismatch {
            expected: enc.dim(),
            actual: features.dim(),
        });
    }
    let threshold = match mode {
        InversionMode::Subset => 0.75,
        InversionMode::Superset => 0.25,
    };
    let mut predicates = Vec::new();
    let mut offset = 0usize;
    for pos in 0..enc.space().len() {
        let (col, domain) = &enc.space().columns()[pos];
        let n_a = enc.buckets_of(pos);
        let buckets = &features.0[offset..offset + n_a];
        offset += n_a + usize::from(enc.attr_sel());
        if buckets.iter().all(|&b| b >= threshold) {
            continue; // attribute unrestricted
        }
        // Collect maximal runs of qualifying buckets into ranges.
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let mut run: Option<(usize, usize)> = None;
        for (i, &b) in buckets.iter().enumerate() {
            if b >= threshold {
                run = Some(match run {
                    Some((s, _)) => (s, i),
                    None => (i, i),
                });
            } else if let Some(r) = run.take() {
                ranges.push(r);
            }
        }
        if let Some(r) = run {
            ranges.push(r);
        }
        let mut disjuncts = Vec::with_capacity(ranges.len());
        for (first, last) in ranges {
            let (lo, _) = bucket_bounds(domain, n_a, first);
            let (_, hi) = bucket_bounds(domain, n_a, last);
            disjuncts.push(PredicateExpr::And(vec![
                PredicateExpr::leaf(CmpOp::Ge, lo),
                PredicateExpr::leaf(CmpOp::Le, hi),
            ]));
        }
        let expr = if disjuncts.is_empty() {
            // No qualifying bucket at all: an unsatisfiable predicate.
            PredicateExpr::leaf(CmpOp::Lt, domain.min)
        } else if disjuncts.len() == 1 {
            disjuncts.pop().unwrap()
        } else {
            PredicateExpr::Or(disjuncts)
        };
        predicates.push(CompoundPredicate { column: *col, expr });
    }
    Ok(Query::single_table(table, predicates))
}

/// True if the feature vector contains no partial (`½`) bucket entry —
/// when every attribute is in exact mode this certifies the inversion is
/// exact and the featurization lossless for this query.
pub fn is_exact(enc: &UniversalConjunctionEncoding, features: &FeatureVec) -> bool {
    let mut offset = 0usize;
    for pos in 0..enc.space().len() {
        let n_a = enc.buckets_of(pos);
        if features.0[offset..offset + n_a]
            .iter()
            .any(|&b| b != 0.0 && b != 1.0)
        {
            return false;
        }
        offset += n_a + usize::from(enc.attr_sel());
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::{AttributeSpace, Featurizer};
    use crate::predicate::SimplePredicate;
    use crate::query::ColumnRef;
    use crate::schema::ColumnId;

    fn small_space() -> AttributeSpace {
        AttributeSpace::new(vec![
            (
                ColumnRef::new(TableId(0), ColumnId(0)),
                AttributeDomain::integers(0, 15),
            ),
            (
                ColumnRef::new(TableId(0), ColumnId(1)),
                AttributeDomain::integers(-3, 3),
            ),
        ])
    }

    fn col(i: usize) -> ColumnRef {
        ColumnRef::new(TableId(0), ColumnId(i))
    }

    #[test]
    fn bucket_bounds_partition_integer_domain() {
        let d = AttributeDomain::integers(-9, 50);
        let n_a = 12;
        let mut covered = Vec::new();
        for i in 0..n_a {
            let (lo, hi) = bucket_bounds(&d, n_a, i);
            assert!(lo <= hi, "bucket {i} empty: [{lo}, {hi}]");
            let mut v = lo;
            while v <= hi {
                covered.push(v);
                v += 1.0;
            }
        }
        // Every domain value is covered exactly once.
        assert_eq!(covered.len(), 60);
        assert_eq!(covered[0], -9.0);
        assert_eq!(*covered.last().unwrap(), 50.0);
        for w in covered.windows(2) {
            assert_eq!(w[1], w[0] + 1.0);
        }
    }

    #[test]
    fn bucket_bounds_agree_with_bucket_of() {
        let d = AttributeDomain::integers(-9, 50);
        for n_a in [1, 2, 5, 12, 60] {
            for i in 0..n_a {
                let (lo, hi) = bucket_bounds(&d, n_a, i);
                assert_eq!(d.bucket_of(lo, n_a), i, "lo of bucket {i}/{n_a}");
                assert_eq!(d.bucket_of(hi, n_a), i, "hi of bucket {i}/{n_a}");
            }
        }
    }

    #[test]
    fn exact_mode_inversion_reproduces_membership() {
        // Lemma 3.2 limit: n >= domain size makes the featurization
        // lossless — the inverted query accepts exactly the same values.
        let enc = UniversalConjunctionEncoding::new(small_space(), 16).unwrap();
        let q = Query::single_table(
            TableId(0),
            vec![
                CompoundPredicate::conjunction(
                    col(0),
                    vec![
                        SimplePredicate::new(CmpOp::Ge, 3),
                        SimplePredicate::new(CmpOp::Le, 12),
                        SimplePredicate::new(CmpOp::Ne, 7),
                    ],
                ),
                CompoundPredicate::conjunction(col(1), vec![SimplePredicate::new(CmpOp::Gt, 0)]),
            ],
        );
        let f = enc.featurize(&q).unwrap();
        assert!(is_exact(&enc, &f));
        let inv = invert_conjunctive(&enc, &f, TableId(0), InversionMode::Subset).unwrap();
        // Attribute 0: membership must match on every domain value.
        let orig_expr = &q.predicates[0].expr;
        let inv_expr = &inv
            .predicates
            .iter()
            .find(|cp| cp.column == col(0))
            .unwrap()
            .expr;
        for v in 0..=15 {
            assert_eq!(
                orig_expr.matches_f64(v as f64),
                inv_expr.matches_f64(v as f64),
                "value {v}"
            );
        }
        let orig_expr = &q.predicates[1].expr;
        let inv_expr = &inv
            .predicates
            .iter()
            .find(|cp| cp.column == col(1))
            .unwrap()
            .expr;
        for v in -3..=3 {
            assert_eq!(
                orig_expr.matches_f64(v as f64),
                inv_expr.matches_f64(v as f64),
                "value {v}"
            );
        }
    }

    #[test]
    fn coarse_inversion_brackets_the_query() {
        // With coarse buckets the Subset inversion accepts a subset of the
        // original's values and the Superset inversion a superset.
        let space = AttributeSpace::new(vec![(col(0), AttributeDomain::integers(0, 99))]);
        let enc = UniversalConjunctionEncoding::new(space, 8).unwrap();
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(0),
                vec![
                    SimplePredicate::new(CmpOp::Ge, 17),
                    SimplePredicate::new(CmpOp::Le, 63),
                ],
            )],
        );
        let f = enc.featurize(&q).unwrap();
        assert!(!is_exact(&enc, &f));
        let sub = invert_conjunctive(&enc, &f, TableId(0), InversionMode::Subset).unwrap();
        let sup = invert_conjunctive(&enc, &f, TableId(0), InversionMode::Superset).unwrap();
        let orig = &q.predicates[0].expr;
        let sub_expr = &sub.predicates[0].expr;
        let sup_expr = &sup.predicates[0].expr;
        for v in 0..=99 {
            let v = v as f64;
            if sub_expr.matches_f64(v) {
                assert!(orig.matches_f64(v), "subset violated at {v}");
            }
            if orig.matches_f64(v) {
                assert!(sup_expr.matches_f64(v), "superset violated at {v}");
            }
        }
    }

    #[test]
    fn unrestricted_attributes_produce_no_predicate() {
        let enc = UniversalConjunctionEncoding::new(small_space(), 16).unwrap();
        let q = Query::single_table(TableId(0), vec![]);
        let f = enc.featurize(&q).unwrap();
        let inv = invert_conjunctive(&enc, &f, TableId(0), InversionMode::Subset).unwrap();
        assert!(inv.predicates.is_empty());
    }

    #[test]
    fn empty_selection_inverts_to_unsatisfiable() {
        let enc = UniversalConjunctionEncoding::new(small_space(), 16).unwrap();
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(0),
                vec![
                    SimplePredicate::new(CmpOp::Gt, 10),
                    SimplePredicate::new(CmpOp::Lt, 5),
                ],
            )],
        );
        let f = enc.featurize(&q).unwrap();
        let inv = invert_conjunctive(&enc, &f, TableId(0), InversionMode::Superset).unwrap();
        let expr = &inv.predicates[0].expr;
        for v in 0..=15 {
            assert!(!expr.matches_f64(v as f64));
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let enc = UniversalConjunctionEncoding::new(small_space(), 16).unwrap();
        let bad = FeatureVec(vec![1.0; 3]);
        assert!(matches!(
            invert_conjunctive(&enc, &bad, TableId(0), InversionMode::Subset),
            Err(QfeError::ShapeMismatch { .. })
        ));
    }
}
