//! The attribute space a featurizer is defined over.
//!
//! A featurizer reserves feature-vector entries per attribute; the
//! [`AttributeSpace`] fixes which attributes participate and in which
//! order. For local models (Section 2.1.2) the space covers all columns of
//! one sub-schema; for global models it covers all columns of the catalog.

use std::collections::HashMap;

use crate::query::ColumnRef;
use crate::schema::{AttributeDomain, Catalog, ColumnId, TableId};

/// An ordered set of attributes with their domains; defines the layout of
/// per-attribute featurizations.
#[derive(Debug, Clone)]
pub struct AttributeSpace {
    columns: Vec<(ColumnRef, AttributeDomain)>,
    index: HashMap<ColumnRef, usize>,
}

impl AttributeSpace {
    /// Space over explicit (column, domain) pairs, in the given order.
    pub fn new(columns: Vec<(ColumnRef, AttributeDomain)>) -> Self {
        let index = columns
            .iter()
            .enumerate()
            .map(|(i, (c, _))| (*c, i))
            .collect();
        AttributeSpace { columns, index }
    }

    /// Space over all columns of one table, in declaration order.
    pub fn for_table(catalog: &Catalog, table: TableId) -> Self {
        Self::for_tables(catalog, &[table])
    }

    /// Space over all columns of the given tables; tables are laid out in
    /// the order given, columns in declaration order.
    pub fn for_tables(catalog: &Catalog, tables: &[TableId]) -> Self {
        let mut columns = Vec::new();
        for &t in tables {
            for (ci, col) in catalog.table(t).columns.iter().enumerate() {
                columns.push((ColumnRef::new(t, ColumnId(ci)), col.domain.clone()));
            }
        }
        Self::new(columns)
    }

    /// Space over every column of every table in the catalog (global
    /// models).
    pub fn for_catalog(catalog: &Catalog) -> Self {
        let tables: Vec<TableId> = (0..catalog.table_count()).map(TableId).collect();
        Self::for_tables(catalog, &tables)
    }

    /// Attributes in layout order.
    pub fn columns(&self) -> &[(ColumnRef, AttributeDomain)] {
        &self.columns
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the space has no attributes.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Layout position of `column`, if it participates in this space.
    pub fn position(&self, column: ColumnRef) -> Option<usize> {
        self.index.get(&column).copied()
    }

    /// Domain of the attribute at layout position `pos`.
    pub fn domain(&self, pos: usize) -> &AttributeDomain {
        &self.columns[pos].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnMeta, TableMeta};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(TableMeta {
            name: "t0".into(),
            columns: vec![
                ColumnMeta {
                    name: "a".into(),
                    domain: AttributeDomain::integers(0, 9),
                },
                ColumnMeta {
                    name: "b".into(),
                    domain: AttributeDomain::integers(0, 99),
                },
            ],
            row_count: 10,
        });
        cat.add_table(TableMeta {
            name: "t1".into(),
            columns: vec![ColumnMeta {
                name: "c".into(),
                domain: AttributeDomain::reals(0.0, 1.0),
            }],
            row_count: 10,
        });
        cat
    }

    #[test]
    fn table_space_layout() {
        let cat = catalog();
        let space = AttributeSpace::for_table(&cat, TableId(0));
        assert_eq!(space.len(), 2);
        assert_eq!(
            space.position(ColumnRef::new(TableId(0), ColumnId(1))),
            Some(1)
        );
        assert_eq!(
            space.position(ColumnRef::new(TableId(1), ColumnId(0))),
            None
        );
    }

    #[test]
    fn catalog_space_spans_all_tables() {
        let cat = catalog();
        let space = AttributeSpace::for_catalog(&cat);
        assert_eq!(space.len(), 3);
        assert_eq!(
            space.position(ColumnRef::new(TableId(1), ColumnId(0))),
            Some(2)
        );
        assert!(!space.domain(2).integral);
    }

    #[test]
    fn multi_table_space_preserves_order() {
        let cat = catalog();
        let space = AttributeSpace::for_tables(&cat, &[TableId(1), TableId(0)]);
        assert_eq!(
            space.position(ColumnRef::new(TableId(1), ColumnId(0))),
            Some(0)
        );
        assert_eq!(
            space.position(ColumnRef::new(TableId(0), ColumnId(0))),
            Some(1)
        );
    }

    #[test]
    fn empty_space() {
        let space = AttributeSpace::new(vec![]);
        assert!(space.is_empty());
        assert_eq!(space.len(), 0);
    }
}
