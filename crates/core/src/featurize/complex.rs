//! Limited Disjunction Encoding (Section 3.3, Algorithm 2).
//!
//! The first QFT able to featurize *mixed queries* (Definition 3.3):
//! conjunctions of per-attribute compound predicates, where each compound
//! predicate is an arbitrary AND/OR combination of simple predicates on one
//! attribute.
//!
//! The key idea: each conjunction inside a compound predicate is a query
//! featurizable with Universal Conjunction Encoding; the per-conjunction
//! vectors are then merged by **entry-wise max**, which directly resembles
//! the semantics of OR — additional disjuncts make a query only *less*
//! selective. Compound predicates need not be in CNF/DNF: we normalize
//! arbitrary AND/OR trees via [`crate::predicate::PredicateExpr::to_dnf`].
//!
//! The per-attribute selectivity entry (when enabled) is the exact
//! uniformity-assumption selectivity of the *union* of the disjunct
//! regions, computed by [`crate::interval::RegionSet`] — entry-wise max
//! would overestimate it, and summing disjunct selectivities would double
//! count overlaps.

use crate::error::QfeError;
use crate::featurize::conjunctive::featurize_conjunct_into;
use crate::featurize::space::AttributeSpace;
use crate::featurize::{group_by_column, FeatureVec, Featurizer};
use crate::interval::RegionSet;
use crate::query::Query;

/// The `complex` QFT: Universal Conjunction Encoding per disjunct, merged
/// by entry-wise max (Algorithm 2).
#[derive(Debug, Clone)]
pub struct LimitedDisjunctionEncoding {
    space: AttributeSpace,
    max_buckets: usize,
    attr_sel: bool,
    ternary: bool,
    /// Cumulative layout (see [`super::UniversalConjunctionEncoding`]'s
    /// twin field): `offsets[pos]` is attribute `pos`'s start, the last
    /// entry is the total dimension. Precomputed on every layout change so
    /// `dim()` and the in-place encoder are O(1) per lookup.
    offsets: Vec<usize>,
}

impl LimitedDisjunctionEncoding {
    /// Build over `space` with at most `max_buckets` entries per attribute
    /// and per-attribute selectivity entries enabled.
    ///
    /// # Errors
    /// [`QfeError::InvalidConfig`] if `max_buckets` is zero — every
    /// attribute needs at least one bucket.
    pub fn new(space: AttributeSpace, max_buckets: usize) -> Result<Self, QfeError> {
        if max_buckets < 1 {
            return Err(QfeError::InvalidConfig(
                "complex QFT needs at least one bucket per attribute".into(),
            ));
        }
        let mut enc = LimitedDisjunctionEncoding {
            space,
            max_buckets,
            attr_sel: true,
            ternary: true,
            offsets: Vec::new(),
        };
        enc.recompute_offsets();
        Ok(enc)
    }

    fn recompute_offsets(&mut self) {
        self.offsets =
            super::conjunctive::layout_offsets(self.space.len(), |pos| self.attr_width(pos));
    }

    /// Enable/disable the per-attribute selectivity entries.
    pub fn with_attr_sel(mut self, attr_sel: bool) -> Self {
        self.attr_sel = attr_sel;
        self.recompute_offsets();
        self
    }

    /// Enable/disable the ternary `½` marks (see
    /// [`super::UniversalConjunctionEncoding::with_ternary`]).
    pub fn with_ternary(mut self, ternary: bool) -> Self {
        self.ternary = ternary;
        self
    }

    /// The attribute space this encoder is defined over.
    pub fn space(&self) -> &AttributeSpace {
        &self.space
    }

    /// Maximum buckets per attribute (`n`).
    pub fn max_buckets(&self) -> usize {
        self.max_buckets
    }

    fn attr_width(&self, pos: usize) -> usize {
        self.space.domain(pos).bucket_count(self.max_buckets) + usize::from(self.attr_sel)
    }

    /// Encoding core shared by the allocating and in-place paths: fills
    /// `out` (length `dim()`) via the precomputed offsets. The first
    /// disjunct of each attribute encodes straight into the output slot;
    /// only additional disjuncts touch the (call-local, reused) scratch
    /// buffer for the entry-wise max merge of Algorithm 2.
    fn encode_into(&self, query: &Query, out: &mut [f32]) -> Result<(), QfeError> {
        out.fill(1.0);
        let mut scratch: Vec<f32> = Vec::new();
        for (col, expr) in group_by_column(query) {
            let Some(pos) = self.space.position(col) else {
                return Err(QfeError::InvalidQuery(format!(
                    "predicate on attribute outside the featurizer's space: table {} column {}",
                    col.table.0, col.column.0
                )));
            };
            let domain = self.space.domain(pos);
            let n_a = domain.bucket_count(self.max_buckets);
            let start = self.offsets[pos];
            // Algorithm 2 line 3: start from an all-zero vector V …
            let slot = &mut out[start..start + n_a];
            slot.fill(0.0);
            let mut regions = Vec::new();
            // … line 4: for each disjunct d of the compound predicate …
            for conjunct in expr.to_dnf()? {
                // … line 5: featurize d with Algorithm 1, line 6: merge by
                // entry-wise max (the first disjunct writes directly: its
                // entries are all >= 0, the slot's starting value).
                if regions.is_empty() {
                    let region = featurize_conjunct_into(&conjunct, domain, slot, self.ternary)?;
                    regions.push(region);
                } else {
                    scratch.resize(n_a, 0.0);
                    let scratch = &mut scratch[..n_a];
                    let region = featurize_conjunct_into(&conjunct, domain, scratch, self.ternary)?;
                    for (m, e) in slot.iter_mut().zip(scratch.iter()) {
                        *m = m.max(*e);
                    }
                    regions.push(region);
                }
            }
            if self.attr_sel {
                let sel = RegionSet::new(regions).selectivity(domain);
                out[start + n_a] = sel as f32;
            }
        }
        Ok(())
    }
}

impl Featurizer for LimitedDisjunctionEncoding {
    fn name(&self) -> &'static str {
        "complex"
    }

    fn dim(&self) -> usize {
        self.offsets[self.space.len()]
    }

    fn featurize(&self, query: &Query) -> Result<FeatureVec, QfeError> {
        let mut out = vec![0.0f32; self.dim()];
        self.encode_into(query, &mut out)?;
        Ok(FeatureVec(out))
    }

    fn featurize_into(&self, query: &Query, out: &mut [f32]) -> Result<(), QfeError> {
        crate::featurize::check_out_len(self.dim(), out.len())?;
        self.encode_into(query, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::UniversalConjunctionEncoding;
    use crate::predicate::{CmpOp, CompoundPredicate, PredicateExpr, SimplePredicate};
    use crate::query::ColumnRef;
    use crate::schema::{AttributeDomain, ColumnId, TableId};

    /// Attributes A [-9, 50], B [0, 115], C in {1, 2} — the Section 3.3
    /// example space (n = 12).
    fn paper_space() -> AttributeSpace {
        AttributeSpace::new(vec![
            (
                ColumnRef::new(TableId(0), ColumnId(0)),
                AttributeDomain::integers(-9, 50),
            ),
            (
                ColumnRef::new(TableId(0), ColumnId(1)),
                AttributeDomain::integers(0, 115),
            ),
            (
                ColumnRef::new(TableId(0), ColumnId(2)),
                AttributeDomain::integers(1, 2),
            ),
        ])
    }

    fn col(i: usize) -> ColumnRef {
        ColumnRef::new(TableId(0), ColumnId(i))
    }

    /// Section 3.3 example:
    /// `(A > -2 AND A <= 30 AND A != 7 OR A >= 42) AND B >= 39.5` gives
    /// A: 0 ½ 1 ½ 1 1 1 ½ 0 0 ½ 1   B: 0 0 0 0 ½ 1 1 1 1 1 1 1   C: 1 1
    #[test]
    fn paper_example_merged_vector() {
        let enc = LimitedDisjunctionEncoding::new(paper_space(), 12)
            .unwrap()
            .with_attr_sel(false);
        let q = Query::single_table(
            TableId(0),
            vec![
                CompoundPredicate {
                    column: col(0),
                    expr: PredicateExpr::Or(vec![
                        PredicateExpr::And(vec![
                            PredicateExpr::leaf(CmpOp::Gt, -2),
                            PredicateExpr::leaf(CmpOp::Le, 30),
                            PredicateExpr::leaf(CmpOp::Ne, 7),
                        ]),
                        PredicateExpr::leaf(CmpOp::Ge, 42),
                    ]),
                },
                CompoundPredicate::conjunction(col(1), vec![SimplePredicate::new(CmpOp::Ge, 39.5)]),
            ],
        );
        let f = enc.featurize(&q).unwrap();
        let expected_a = [0.0, 0.5, 1.0, 0.5, 1.0, 1.0, 1.0, 0.5, 0.0, 0.0, 0.5, 1.0];
        let expected_b = [0.0, 0.0, 0.0, 0.0, 0.5, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let expected_c = [1.0, 1.0];
        assert_eq!(&f.0[..12], &expected_a, "attribute A");
        assert_eq!(&f.0[12..24], &expected_b, "attribute B");
        assert_eq!(&f.0[24..], &expected_c, "attribute C");
    }

    #[test]
    fn reduces_to_conjunctive_encoding_on_conjunctive_queries() {
        // JOB-light contains no disjunctions, hence the paper notes the
        // feature vectors of `complex` and `conjunctive` coincide there.
        let space = paper_space();
        let complex = LimitedDisjunctionEncoding::new(space.clone(), 12).unwrap();
        let conj = UniversalConjunctionEncoding::new(space, 12).unwrap();
        let q = Query::single_table(
            TableId(0),
            vec![
                CompoundPredicate::conjunction(
                    col(0),
                    vec![
                        SimplePredicate::new(CmpOp::Ge, 0),
                        SimplePredicate::new(CmpOp::Le, 20),
                        SimplePredicate::new(CmpOp::Ne, 5),
                    ],
                ),
                CompoundPredicate::conjunction(col(2), vec![SimplePredicate::new(CmpOp::Eq, 2)]),
            ],
        );
        assert_eq!(complex.featurize(&q).unwrap(), conj.featurize(&q).unwrap());
        assert_eq!(complex.dim(), conj.dim());
    }

    #[test]
    fn disjunction_only_increases_entries() {
        // Adding a disjunct makes the query less selective: every entry is
        // monotonically non-decreasing in the number of disjuncts.
        let space = paper_space();
        let enc = LimitedDisjunctionEncoding::new(space, 12)
            .unwrap()
            .with_attr_sel(false);
        let disjuncts = [
            PredicateExpr::And(vec![
                PredicateExpr::leaf(CmpOp::Ge, 0),
                PredicateExpr::leaf(CmpOp::Le, 10),
            ]),
            PredicateExpr::leaf(CmpOp::Eq, 42),
            PredicateExpr::And(vec![
                PredicateExpr::leaf(CmpOp::Ge, 20),
                PredicateExpr::leaf(CmpOp::Le, 25),
            ]),
        ];
        let mut prev: Option<Vec<f32>> = None;
        for k in 1..=disjuncts.len() {
            let q = Query::single_table(
                TableId(0),
                vec![CompoundPredicate {
                    column: col(0),
                    expr: PredicateExpr::Or(disjuncts[..k].to_vec()),
                }],
            );
            let f = enc.featurize(&q).unwrap();
            if let Some(prev) = &prev {
                for (new, old) in f.0.iter().zip(prev) {
                    assert!(new >= old, "entry decreased when adding a disjunct");
                }
            }
            prev = Some(f.0);
        }
    }

    #[test]
    fn union_selectivity_entry_does_not_double_count() {
        // Two disjuncts covering the identical range: selectivity of the
        // union equals that of a single disjunct.
        let enc = LimitedDisjunctionEncoding::new(paper_space(), 12).unwrap();
        let range = |lo: i64, hi: i64| {
            PredicateExpr::And(vec![
                PredicateExpr::leaf(CmpOp::Ge, lo),
                PredicateExpr::leaf(CmpOp::Le, hi),
            ])
        };
        let single = Query::single_table(
            TableId(0),
            vec![CompoundPredicate {
                column: col(1),
                expr: range(10, 40),
            }],
        );
        let double = Query::single_table(
            TableId(0),
            vec![CompoundPredicate {
                column: col(1),
                expr: PredicateExpr::Or(vec![range(10, 40), range(10, 40)]),
            }],
        );
        let fs = enc.featurize(&single).unwrap();
        let fd = enc.featurize(&double).unwrap();
        assert_eq!(fs, fd);
    }

    #[test]
    fn non_dnf_trees_are_normalized() {
        // ((a OR b) AND c) is not in DNF; Algorithm 2 still applies after
        // normalization.
        let enc = LimitedDisjunctionEncoding::new(paper_space(), 12)
            .unwrap()
            .with_attr_sel(false);
        let nested = Query::single_table(
            TableId(0),
            vec![CompoundPredicate {
                column: col(1),
                expr: PredicateExpr::And(vec![
                    PredicateExpr::Or(vec![
                        PredicateExpr::leaf(CmpOp::Le, 20),
                        PredicateExpr::leaf(CmpOp::Ge, 100),
                    ]),
                    PredicateExpr::leaf(CmpOp::Ne, 10),
                ]),
            }],
        );
        let flat = Query::single_table(
            TableId(0),
            vec![CompoundPredicate {
                column: col(1),
                expr: PredicateExpr::Or(vec![
                    PredicateExpr::And(vec![
                        PredicateExpr::leaf(CmpOp::Le, 20),
                        PredicateExpr::leaf(CmpOp::Ne, 10),
                    ]),
                    PredicateExpr::And(vec![
                        PredicateExpr::leaf(CmpOp::Ge, 100),
                        PredicateExpr::leaf(CmpOp::Ne, 10),
                    ]),
                ]),
            }],
        );
        assert_eq!(
            enc.featurize(&nested).unwrap(),
            enc.featurize(&flat).unwrap()
        );
    }

    #[test]
    fn no_predicate_attribute_is_all_ones() {
        let enc = LimitedDisjunctionEncoding::new(paper_space(), 12).unwrap();
        let q = Query::single_table(TableId(0), vec![]);
        let f = enc.featurize(&q).unwrap();
        assert!(f.0.iter().all(|&e| e == 1.0));
    }
}
