//! Join encoding for global models (Section 2.1.2).
//!
//! A *global* model is a single estimator covering all sub-schemata. The
//! feature vector must therefore also represent which tables the query
//! accesses: any QFT is adapted by appending a binary vector with one entry
//! per catalog table (`1101` ≙ tables 1, 2, 4 joined along their
//! key/foreign-key relationships). Local models need no such adaptation —
//! the model choice itself identifies the sub-schema.

use crate::error::QfeError;
use crate::featurize::{FeatureVec, Featurizer};
use crate::query::Query;

/// Wraps any featurizer and appends the table-presence bit vector,
/// producing a global-model encoding.
#[derive(Debug, Clone)]
pub struct GlobalTableEncoding<F> {
    inner: F,
    table_count: usize,
}

impl<F: Featurizer> GlobalTableEncoding<F> {
    /// Wrap `inner`; `table_count` is the number of tables in the catalog.
    pub fn new(inner: F, table_count: usize) -> Self {
        GlobalTableEncoding { inner, table_count }
    }

    /// The wrapped featurizer.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

impl<F: Featurizer> Featurizer for GlobalTableEncoding<F> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn dim(&self) -> usize {
        self.inner.dim() + self.table_count
    }

    fn featurize(&self, query: &Query) -> Result<FeatureVec, QfeError> {
        let mut vec = self.inner.featurize(query)?.0;
        let mut bits = vec![0.0f32; self.table_count];
        for t in &query.tables {
            if t.0 >= self.table_count {
                return Err(QfeError::UnknownTable(format!("table id {}", t.0)));
            }
            bits[t.0] = 1.0;
        }
        vec.extend_from_slice(&bits);
        Ok(FeatureVec(vec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::{AttributeSpace, RangePredicateEncoding};
    use crate::query::{ColumnRef, JoinPredicate};
    use crate::schema::{AttributeDomain, ColumnId, TableId};

    fn inner() -> RangePredicateEncoding {
        RangePredicateEncoding::new(AttributeSpace::new(vec![
            (
                ColumnRef::new(TableId(0), ColumnId(0)),
                AttributeDomain::integers(0, 9),
            ),
            (
                ColumnRef::new(TableId(1), ColumnId(0)),
                AttributeDomain::integers(0, 9),
            ),
        ]))
    }

    #[test]
    fn appends_table_bits() {
        let enc = GlobalTableEncoding::new(inner(), 4);
        assert_eq!(enc.dim(), 4 + 4);
        let q = Query {
            tables: vec![TableId(0), TableId(2)],
            joins: vec![JoinPredicate {
                left: ColumnRef::new(TableId(0), ColumnId(0)),
                right: ColumnRef::new(TableId(2), ColumnId(0)),
            }],
            predicates: vec![],
        };
        let f = enc.featurize(&q).unwrap();
        assert_eq!(&f.0[4..], &[1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn single_table_query_sets_one_bit() {
        let enc = GlobalTableEncoding::new(inner(), 4);
        let q = Query::single_table(TableId(1), vec![]);
        let f = enc.featurize(&q).unwrap();
        assert_eq!(&f.0[4..], &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn out_of_catalog_table_rejected() {
        let enc = GlobalTableEncoding::new(inner(), 2);
        let q = Query::single_table(TableId(7), vec![]);
        assert!(matches!(enc.featurize(&q), Err(QfeError::UnknownTable(_))));
    }

    #[test]
    fn name_is_inherited() {
        let enc = GlobalTableEncoding::new(inner(), 2);
        assert_eq!(enc.name(), "range");
    }
}
