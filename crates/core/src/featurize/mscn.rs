//! MSCN-style set featurization (Sections 2.1.2 and 4.2).
//!
//! MSCN (Kipf et al. \[12\]) featurizes a query into three *sets* of vectors:
//! (1) the tables, (2) the join predicates, and (3) the selection
//! predicates; the model applies a learned per-set convolution (an MLP per
//! element followed by average pooling).
//!
//! This module supports both predicate-set variants the paper evaluates:
//!
//! * [`PredicateMode::PerPredicate`] — the original MSCN featurization:
//!   one vector per simple predicate, `(column one-hot, operator one-hot,
//!   normalized literal)`. Supports multiple predicates per attribute but
//!   no disjunctions.
//! * [`PredicateMode::PerAttribute`] — the paper's modification (Section
//!   4.2): all predicates referencing the same attribute are featurized
//!   into one per-attribute vector via Universal Conjunction / Limited
//!   Disjunction Encoding, labeled with the attribute id, and added to the
//!   predicate set. Disjunctions are supported.
//!
//! Following the paper's evaluation, the optional per-table materialized
//! samples of the original MSCN are not used ("we did not use the optional
//! sampling to solely judge the prediction accuracy of the ML model").

use crate::error::QfeError;
use crate::featurize::conjunctive::featurize_conjunct;
use crate::featurize::group_by_column;
use crate::featurize::space::AttributeSpace;
use crate::interval::RegionSet;
use crate::predicate::CmpOp;
use crate::query::Query;
use crate::schema::Catalog;

/// How the predicate set is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateMode {
    /// Original MSCN: one vector per simple predicate.
    PerPredicate,
    /// Range Predicate Encoding per attribute: column one-hot plus the
    /// normalized closed range `[lo, hi]`.
    PerAttributeRange,
    /// Paper's modification: one Universal-Conjunction/Limited-Disjunction
    /// vector per attribute, with `max_buckets` bucket entries (padded for
    /// small domains) and an optional selectivity entry.
    PerAttribute {
        /// Maximum buckets per attribute (`n`).
        max_buckets: usize,
        /// Append the per-attribute selectivity estimate.
        attr_sel: bool,
    },
}

/// The three vector sets MSCN consumes for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct MscnSets {
    /// One table one-hot per accessed table.
    pub tables: Vec<Vec<f32>>,
    /// One join-edge one-hot per join predicate (empty for single-table
    /// queries).
    pub joins: Vec<Vec<f32>>,
    /// Predicate vectors per [`PredicateMode`] (empty if the query has no
    /// selection).
    pub predicates: Vec<Vec<f32>>,
}

/// Builds [`MscnSets`] from queries over a catalog.
#[derive(Debug, Clone)]
pub struct MscnFeaturizer {
    table_count: usize,
    edge_count: usize,
    space: AttributeSpace,
    mode: PredicateMode,
}

impl MscnFeaturizer {
    /// Build over all tables/columns/FK-edges of the catalog.
    ///
    /// # Errors
    /// [`QfeError::InvalidConfig`] if the per-attribute mode is configured
    /// with zero buckets.
    pub fn new(catalog: &Catalog, mode: PredicateMode) -> Result<Self, QfeError> {
        if let PredicateMode::PerAttribute { max_buckets, .. } = mode {
            if max_buckets < 1 {
                return Err(QfeError::InvalidConfig(
                    "MSCN per-attribute mode needs at least one bucket per attribute".into(),
                ));
            }
        }
        Ok(MscnFeaturizer {
            table_count: catalog.table_count(),
            edge_count: catalog.fk_edges().len(),
            space: AttributeSpace::for_catalog(catalog),
            mode,
        })
    }

    /// Dimension of each table vector.
    pub fn table_dim(&self) -> usize {
        self.table_count
    }

    /// Dimension of each join vector.
    pub fn join_dim(&self) -> usize {
        self.edge_count.max(1)
    }

    /// Dimension of each predicate vector.
    pub fn predicate_dim(&self) -> usize {
        match self.mode {
            PredicateMode::PerPredicate => self.space.len() + 3 + 1,
            PredicateMode::PerAttributeRange => self.space.len() + 2,
            PredicateMode::PerAttribute {
                max_buckets,
                attr_sel,
            } => self.space.len() + max_buckets + usize::from(attr_sel),
        }
    }

    /// The predicate-set mode in use.
    pub fn mode(&self) -> PredicateMode {
        self.mode
    }

    /// Featurize a query into the three MSCN sets. The query's joins must
    /// follow catalog FK edges (checked; [`QfeError::InvalidQuery`]
    /// otherwise).
    pub fn featurize(&self, query: &Query, catalog: &Catalog) -> Result<MscnSets, QfeError> {
        let mut tables = Vec::with_capacity(query.tables.len());
        for t in &query.tables {
            if t.0 >= self.table_count {
                return Err(QfeError::UnknownTable(format!("table id {}", t.0)));
            }
            let mut one_hot = vec![0.0f32; self.table_count];
            one_hot[t.0] = 1.0;
            tables.push(one_hot);
        }

        let mut joins = Vec::with_capacity(query.joins.len());
        for j in &query.joins {
            let idx = catalog
                .fk_edge_index(
                    (j.left.table, j.left.column),
                    (j.right.table, j.right.column),
                )
                .ok_or_else(|| {
                    QfeError::InvalidQuery(
                        "join predicate does not follow a key/foreign-key edge".into(),
                    )
                })?;
            let mut one_hot = vec![0.0f32; self.join_dim()];
            one_hot[idx] = 1.0;
            joins.push(one_hot);
        }

        let predicates = match self.mode {
            PredicateMode::PerPredicate => self.per_predicate_set(query)?,
            PredicateMode::PerAttributeRange => self.per_attribute_range_set(query)?,
            PredicateMode::PerAttribute {
                max_buckets,
                attr_sel,
            } => self.per_attribute_set(query, max_buckets, attr_sel)?,
        };

        Ok(MscnSets {
            tables,
            joins,
            predicates,
        })
    }

    fn column_one_hot(&self, pos: usize) -> Vec<f32> {
        let mut v = vec![0.0f32; self.space.len()];
        v[pos] = 1.0;
        v
    }

    fn per_predicate_set(&self, query: &Query) -> Result<Vec<Vec<f32>>, QfeError> {
        let mut out = Vec::new();
        for (col, expr) in group_by_column(query) {
            let pos = self.space.position(col).ok_or_else(|| {
                QfeError::InvalidQuery("predicate on column outside catalog".into())
            })?;
            if !expr.is_conjunctive() {
                return Err(QfeError::UnsupportedQuery(
                    "the original MSCN featurization does not support disjunctions".into(),
                ));
            }
            let preds = expr.to_dnf()?.into_iter().next().unwrap_or_default();
            let domain = self.space.domain(pos);
            for p in preds {
                let value = p.value.as_f64().ok_or_else(|| {
                    QfeError::InvalidLiteral(format!(
                        "literal {} must be dictionary-encoded before featurization",
                        p.value
                    ))
                })?;
                let mut v = self.column_one_hot(pos);
                // Operator one-hot over {=, >, <}; compound ops set two
                // bits, as in Section 2.1.1.
                let bits: [f32; 3] = match p.op {
                    CmpOp::Eq => [1.0, 0.0, 0.0],
                    CmpOp::Gt => [0.0, 1.0, 0.0],
                    CmpOp::Lt => [0.0, 0.0, 1.0],
                    CmpOp::Ge => [1.0, 1.0, 0.0],
                    CmpOp::Le => [1.0, 0.0, 1.0],
                    CmpOp::Ne => [0.0, 1.0, 1.0],
                };
                v.extend_from_slice(&bits);
                v.push(domain.normalize(value) as f32);
                out.push(v);
            }
        }
        Ok(out)
    }

    fn per_attribute_range_set(&self, query: &Query) -> Result<Vec<Vec<f32>>, QfeError> {
        let mut out = Vec::new();
        for (col, expr) in group_by_column(query) {
            let pos = self.space.position(col).ok_or_else(|| {
                QfeError::InvalidQuery("predicate on column outside catalog".into())
            })?;
            if !expr.is_conjunctive() {
                return Err(QfeError::UnsupportedQuery(
                    "range predicate vectors cannot represent disjunctions".into(),
                ));
            }
            let dnf = expr.to_dnf()?;
            let unsatisfiable = dnf.is_empty();
            let preds = dnf.into_iter().next().unwrap_or_default();
            for p in &preds {
                if p.value.as_f64().is_none() {
                    return Err(QfeError::InvalidLiteral(format!(
                        "literal {} must be dictionary-encoded before featurization",
                        p.value
                    )));
                }
            }
            let domain = self.space.domain(pos);
            let region = if unsatisfiable {
                crate::interval::Region::empty()
            } else {
                crate::interval::Region::from_conjunct(&preds, domain)
            };
            let (lo, hi) = if region.is_empty() {
                (1.0, 0.0)
            } else {
                (domain.normalize(region.lo), domain.normalize(region.hi))
            };
            let mut v = self.column_one_hot(pos);
            v.push(lo as f32);
            v.push(hi as f32);
            out.push(v);
        }
        Ok(out)
    }

    fn per_attribute_set(
        &self,
        query: &Query,
        max_buckets: usize,
        attr_sel: bool,
    ) -> Result<Vec<Vec<f32>>, QfeError> {
        let mut out = Vec::new();
        for (col, expr) in group_by_column(query) {
            let pos = self.space.position(col).ok_or_else(|| {
                QfeError::InvalidQuery("predicate on column outside catalog".into())
            })?;
            let domain = self.space.domain(pos);
            let n_a = domain.bucket_count(max_buckets);
            let mut merged = vec![0.0f32; n_a];
            let mut regions = Vec::new();
            for conjunct in expr.to_dnf()? {
                let (v, region) = featurize_conjunct(&conjunct, domain, n_a, true)?;
                for (m, e) in merged.iter_mut().zip(&v) {
                    *m = m.max(*e);
                }
                regions.push(region);
            }
            let mut v = self.column_one_hot(pos);
            v.extend_from_slice(&merged);
            // Pad small domains up to the fixed per-attribute width.
            v.extend(std::iter::repeat_n(0.0, max_buckets - n_a));
            if attr_sel {
                v.push(RegionSet::new(regions).selectivity(domain) as f32);
            }
            out.push(v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompoundPredicate, PredicateExpr, SimplePredicate};
    use crate::query::{ColumnRef, JoinPredicate};
    use crate::schema::{AttributeDomain, ColumnId, ColumnMeta, FkEdge, TableId, TableMeta};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let t0 = cat.add_table(TableMeta {
            name: "title".into(),
            columns: vec![
                ColumnMeta {
                    name: "id".into(),
                    domain: AttributeDomain::integers(0, 999),
                },
                ColumnMeta {
                    name: "year".into(),
                    domain: AttributeDomain::integers(1900, 2020),
                },
            ],
            row_count: 1000,
        });
        let t1 = cat.add_table(TableMeta {
            name: "cast_info".into(),
            columns: vec![ColumnMeta {
                name: "movie_id".into(),
                domain: AttributeDomain::integers(0, 999),
            }],
            row_count: 5000,
        });
        cat.add_fk_edge(FkEdge {
            from: (t1, ColumnId(0)),
            to: (t0, ColumnId(0)),
        });
        cat
    }

    fn join_query() -> Query {
        Query {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![JoinPredicate {
                left: ColumnRef::new(TableId(1), ColumnId(0)),
                right: ColumnRef::new(TableId(0), ColumnId(0)),
            }],
            predicates: vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(1)),
                vec![
                    SimplePredicate::new(CmpOp::Ge, 2000),
                    SimplePredicate::new(CmpOp::Le, 2010),
                ],
            )],
        }
    }

    #[test]
    fn per_predicate_sets() {
        let cat = catalog();
        let enc = MscnFeaturizer::new(&cat, PredicateMode::PerPredicate).unwrap();
        let sets = enc.featurize(&join_query(), &cat).unwrap();
        assert_eq!(sets.tables.len(), 2);
        assert_eq!(sets.tables[0], vec![1.0, 0.0]);
        assert_eq!(sets.tables[1], vec![0.0, 1.0]);
        assert_eq!(sets.joins.len(), 1);
        assert_eq!(sets.joins[0], vec![1.0]);
        // Two simple predicates => two predicate vectors.
        assert_eq!(sets.predicates.len(), 2);
        assert!(sets
            .predicates
            .iter()
            .all(|v| v.len() == enc.predicate_dim()));
        // year is global column index 1: one-hot bit set there.
        assert_eq!(sets.predicates[0][1], 1.0);
    }

    #[test]
    fn per_attribute_sets_collapse_predicates() {
        let cat = catalog();
        let enc = MscnFeaturizer::new(
            &cat,
            PredicateMode::PerAttribute {
                max_buckets: 8,
                attr_sel: true,
            },
        )
        .unwrap();
        let sets = enc.featurize(&join_query(), &cat).unwrap();
        // Two predicates on one attribute => a single per-attribute vector.
        assert_eq!(sets.predicates.len(), 1);
        assert_eq!(sets.predicates[0].len(), enc.predicate_dim());
        assert_eq!(enc.predicate_dim(), 3 + 8 + 1);
    }

    #[test]
    fn per_attribute_mode_supports_disjunctions() {
        let cat = catalog();
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate {
                column: ColumnRef::new(TableId(0), ColumnId(1)),
                expr: PredicateExpr::Or(vec![
                    PredicateExpr::leaf(CmpOp::Eq, 1999),
                    PredicateExpr::leaf(CmpOp::Eq, 2005),
                ]),
            }],
        );
        let original = MscnFeaturizer::new(&cat, PredicateMode::PerPredicate).unwrap();
        assert!(matches!(
            original.featurize(&q, &cat),
            Err(QfeError::UnsupportedQuery(_))
        ));
        let modified = MscnFeaturizer::new(
            &cat,
            PredicateMode::PerAttribute {
                max_buckets: 8,
                attr_sel: true,
            },
        )
        .unwrap();
        assert!(modified.featurize(&q, &cat).is_ok());
    }

    #[test]
    fn per_attribute_range_mode() {
        let cat = catalog();
        let enc = MscnFeaturizer::new(&cat, PredicateMode::PerAttributeRange).unwrap();
        let sets = enc.featurize(&join_query(), &cat).unwrap();
        assert_eq!(sets.predicates.len(), 1);
        assert_eq!(enc.predicate_dim(), 3 + 2);
        // year in [2000, 2010] on domain [1900, 2020]: normalized range.
        let v = &sets.predicates[0];
        assert_eq!(v[1], 1.0); // column one-hot for year (global index 1)
        assert!((v[3] - 100.0 / 120.0).abs() < 1e-6);
        assert!((v[4] - 110.0 / 120.0).abs() < 1e-6);
    }

    #[test]
    fn small_domains_are_padded_to_fixed_width() {
        let mut cat = Catalog::new();
        cat.add_table(TableMeta {
            name: "t".into(),
            columns: vec![ColumnMeta {
                name: "flag".into(),
                domain: AttributeDomain::integers(0, 1),
            }],
            row_count: 10,
        });
        let enc = MscnFeaturizer::new(
            &cat,
            PredicateMode::PerAttribute {
                max_buckets: 8,
                attr_sel: false,
            },
        )
        .unwrap();
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(0)),
                vec![SimplePredicate::new(CmpOp::Eq, 1)],
            )],
        );
        let sets = enc.featurize(&q, &cat).unwrap();
        assert_eq!(sets.predicates[0].len(), enc.predicate_dim());
        // col one-hot (1) + buckets [0, 1] + 6 zero pads.
        assert_eq!(
            sets.predicates[0],
            vec![1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn single_table_query_has_empty_join_set() {
        let cat = catalog();
        let enc = MscnFeaturizer::new(&cat, PredicateMode::PerPredicate).unwrap();
        let q = Query::single_table(TableId(0), vec![]);
        let sets = enc.featurize(&q, &cat).unwrap();
        assert!(sets.joins.is_empty());
        assert!(sets.predicates.is_empty());
        assert_eq!(sets.tables.len(), 1);
    }

    #[test]
    fn non_fk_join_is_rejected() {
        let cat = catalog();
        let enc = MscnFeaturizer::new(&cat, PredicateMode::PerPredicate).unwrap();
        let mut q = join_query();
        q.joins[0].right = ColumnRef::new(TableId(0), ColumnId(1));
        assert!(matches!(
            enc.featurize(&q, &cat),
            Err(QfeError::InvalidQuery(_))
        ));
    }
}
