//! Memoized per-attribute featurization for sub-plan enumeration.
//!
//! A join-order optimizer probing a learned estimator featurizes the same
//! attributes over and over: every candidate sub-plan containing table `t`
//! re-encodes `t`'s predicates from scratch, even though the per-attribute
//! segment of the feature vector depends only on the attribute and its
//! (merged) predicate expression — not on which other tables the sub-plan
//! joins in. [`MemoFeaturizer`] exploits exactly that: it caches each
//! attribute's encoded segment under the attribute plus the canonical
//! fingerprint of its expression ([`crate::fingerprint::expr_fingerprint`]),
//! so repeated attributes across candidate sub-plans featurize once per
//! `optimize()` call instead of once per subset.
//!
//! Memoization is a pure replay: a hit copies the bytes the inner encoder
//! produced on the miss, so memo-on and memo-off featurization are
//! bit-identical. Keying on the *canonical* expression fingerprint also
//! collapses reordered conjunctions (`a>=1 AND a<=9` vs `a<=9 AND a>=1`);
//! that is sound for the segment encoders because a conjunction's bucket
//! marks and selectivity are order-insensitive (an entry's final value is
//! `0` if any conjunct zeroes it, else `½` if any conjunct marks it, else
//! `1`, and the selectivity region is an intersection).

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::error::QfeError;
use crate::featurize::space::AttributeSpace;
use crate::featurize::{check_out_len, group_by_column, FeatureVec, Featurizer};
use crate::fingerprint::expr_fingerprint;
use crate::predicate::PredicateExpr;
use crate::query::{ColumnRef, Query};

/// A featurizer whose output decomposes into independent per-attribute
/// segments over a base fill — the structural contract [`MemoFeaturizer`]
/// needs to cache segments instead of whole vectors.
///
/// Law: for every query accepted by the featurizer,
/// `featurize_into(query, out)` must equal `fill_base(out)` followed by
/// `encode_attr_into(pos, expr, &mut out[segment(pos)])` for each
/// `(attribute, merged expression)` pair of the query, and each segment's
/// content may depend only on the attribute position and its expression.
pub trait SegmentedFeaturizer: Featurizer {
    /// The attribute space defining segment positions.
    fn space(&self) -> &AttributeSpace;

    /// Index range of attribute `pos`'s segment in the feature vector.
    fn segment(&self, pos: usize) -> Range<usize>;

    /// Value of the vector before any attribute is encoded (every entry of
    /// an unpredicated attribute's segment).
    fn fill_base(&self, out: &mut [f32]) {
        out.fill(1.0);
    }

    /// Encode one attribute's merged expression into its segment.
    fn encode_attr_into(
        &self,
        pos: usize,
        expr: &PredicateExpr,
        seg: &mut [f32],
    ) -> Result<(), QfeError>;
}

impl SegmentedFeaturizer for super::UniversalConjunctionEncoding {
    fn space(&self) -> &AttributeSpace {
        self.space()
    }

    fn segment(&self, pos: usize) -> Range<usize> {
        let start = self.attr_offset(pos);
        start..start + self.buckets_of(pos) + usize::from(self.attr_sel())
    }

    fn encode_attr_into(
        &self,
        pos: usize,
        expr: &PredicateExpr,
        seg: &mut [f32],
    ) -> Result<(), QfeError> {
        self.encode_attr(pos, expr, seg)
    }
}

/// Cumulative hit/miss/eviction counts of a [`MemoFeaturizer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Segment lookups answered from the memo.
    pub hits: u64,
    /// Segment lookups that ran the inner encoder.
    pub misses: u64,
    /// Entries dropped by capacity sweeps and explicit clears.
    pub evictions: u64,
}

/// Wraps a [`SegmentedFeaturizer`] and memoizes encoded per-attribute
/// segments keyed on `(attribute, canonical expression fingerprint)`.
///
/// Thread-safe (the memo is behind a mutex) and bounded: when the memo
/// reaches capacity, the whole table is swept — sub-plan enumeration
/// workloads have a small working set per `optimize()` call, so an epoch
/// sweep beats per-entry bookkeeping. Output is bit-identical to the
/// wrapped featurizer's (hits replay the exact bytes a miss produced).
#[derive(Debug)]
pub struct MemoFeaturizer<F> {
    inner: F,
    memo: Mutex<SegmentMap>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Memoized segments: the encoded feature slice for one
/// `(attribute, canonical expression fingerprint)` pair.
type SegmentMap = HashMap<(ColumnRef, u128), Box<[f32]>>;

/// Default bound on memoized segments; far above the distinct-attribute
/// count of any one `optimize()` call, small enough to be memory-trivial.
pub const DEFAULT_MEMO_CAPACITY: usize = 4096;

impl<F: SegmentedFeaturizer> MemoFeaturizer<F> {
    /// Wrap `inner` with the default capacity.
    pub fn new(inner: F) -> Self {
        Self::with_capacity(inner, DEFAULT_MEMO_CAPACITY)
    }

    /// Wrap `inner`, keeping at most `capacity` memoized segments.
    pub fn with_capacity(inner: F, capacity: usize) -> Self {
        MemoFeaturizer {
            inner,
            memo: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The wrapped featurizer.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// Cumulative memo statistics.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drop all memoized segments (counted as evictions). Call between
    /// workload phases when expression distributions shift wholesale.
    pub fn clear(&self) {
        let mut memo = self.memo.lock().expect("memo poisoned");
        self.evictions
            .fetch_add(memo.len() as u64, Ordering::Relaxed);
        memo.clear();
    }

    fn encode_into(&self, query: &Query, out: &mut [f32]) -> Result<(), QfeError> {
        self.inner.fill_base(out);
        for (col, expr) in group_by_column(query) {
            let Some(pos) = self.inner.space().position(col) else {
                return Err(QfeError::InvalidQuery(format!(
                    "predicate on attribute outside the featurizer's space: table {} column {}",
                    col.table.0, col.column.0
                )));
            };
            let range = self.inner.segment(pos);
            let key = (col, expr_fingerprint(&expr));
            {
                let memo = self.memo.lock().expect("memo poisoned");
                if let Some(seg) = memo.get(&key) {
                    out[range.clone()].copy_from_slice(seg);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            // Miss: run the real encoder directly into the output, then
            // store a copy. The lock is not held while encoding, so two
            // threads may race on the same key — both compute the same
            // bytes (the encoder is deterministic), and the second insert
            // harmlessly overwrites the first.
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.inner
                .encode_attr_into(pos, &expr, &mut out[range.clone()])?;
            let seg: Box<[f32]> = out[range].into();
            let mut memo = self.memo.lock().expect("memo poisoned");
            if memo.len() >= self.capacity {
                self.evictions
                    .fetch_add(memo.len() as u64, Ordering::Relaxed);
                memo.clear();
            }
            memo.insert(key, seg);
        }
        Ok(())
    }
}

impl<F: SegmentedFeaturizer> Featurizer for MemoFeaturizer<F> {
    /// The inner featurizer's label: memoization is an implementation
    /// detail, not a different encoding (experiment output stays
    /// comparable).
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn featurize(&self, query: &Query) -> Result<FeatureVec, QfeError> {
        let mut out = vec![0.0f32; self.dim()];
        self.encode_into(query, &mut out)?;
        Ok(FeatureVec(out))
    }

    fn featurize_into(&self, query: &Query, out: &mut [f32]) -> Result<(), QfeError> {
        check_out_len(self.dim(), out.len())?;
        self.encode_into(query, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::UniversalConjunctionEncoding;
    use crate::predicate::{CmpOp, CompoundPredicate, SimplePredicate};
    use crate::schema::{AttributeDomain, ColumnId, TableId};

    fn space() -> AttributeSpace {
        AttributeSpace::new(vec![
            (
                ColumnRef::new(TableId(0), ColumnId(0)),
                AttributeDomain::integers(0, 99),
            ),
            (
                ColumnRef::new(TableId(0), ColumnId(1)),
                AttributeDomain::integers(0, 999),
            ),
            (
                ColumnRef::new(TableId(1), ColumnId(0)),
                AttributeDomain::integers(0, 9),
            ),
        ])
    }

    fn queries() -> Vec<Query> {
        let c00 = ColumnRef::new(TableId(0), ColumnId(0));
        let c01 = ColumnRef::new(TableId(0), ColumnId(1));
        let c10 = ColumnRef::new(TableId(1), ColumnId(0));
        vec![
            Query::single_table(
                TableId(0),
                vec![CompoundPredicate::conjunction(
                    c00,
                    vec![
                        SimplePredicate::new(CmpOp::Ge, 10),
                        SimplePredicate::new(CmpOp::Le, 80),
                    ],
                )],
            ),
            Query::single_table(
                TableId(0),
                vec![
                    CompoundPredicate::conjunction(
                        c00,
                        // Same conjunction, reordered: canonically equal.
                        vec![
                            SimplePredicate::new(CmpOp::Le, 80),
                            SimplePredicate::new(CmpOp::Ge, 10),
                        ],
                    ),
                    CompoundPredicate::conjunction(c01, vec![SimplePredicate::new(CmpOp::Eq, 500)]),
                ],
            ),
            Query::single_table(
                TableId(1),
                vec![CompoundPredicate::conjunction(
                    c10,
                    vec![SimplePredicate::new(CmpOp::Ne, 3)],
                )],
            ),
            Query::single_table(TableId(0), vec![]),
        ]
    }

    #[test]
    fn memoized_output_is_bit_identical() {
        let plain = UniversalConjunctionEncoding::new(space(), 16).unwrap();
        let memo = MemoFeaturizer::new(UniversalConjunctionEncoding::new(space(), 16).unwrap());
        assert_eq!(plain.dim(), memo.dim());
        assert_eq!(plain.name(), memo.name());
        // Two passes so the second replays every segment from the memo.
        for _ in 0..2 {
            for q in queries() {
                let want = plain.featurize(&q).unwrap();
                let got = memo.featurize(&q).unwrap();
                assert_eq!(want, got, "{q:?}");
                let mut buf = vec![0.0f32; memo.dim()];
                memo.featurize_into(&q, &mut buf).unwrap();
                assert_eq!(want.0, buf);
            }
        }
        let stats = memo.stats();
        assert!(stats.hits > 0, "{stats:?}");
        assert!(stats.misses > 0, "{stats:?}");
    }

    #[test]
    fn repeated_expressions_hit_the_memo() {
        let memo = MemoFeaturizer::new(UniversalConjunctionEncoding::new(space(), 16).unwrap());
        let q = &queries()[0];
        memo.featurize(q).unwrap();
        assert_eq!(
            memo.stats(),
            MemoStats {
                hits: 0,
                misses: 1,
                evictions: 0
            }
        );
        memo.featurize(q).unwrap();
        assert_eq!(
            memo.stats(),
            MemoStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        // The reordered-conjunction variant hits the same entry.
        memo.featurize(&queries()[1]).unwrap();
        let stats = memo.stats();
        assert_eq!(stats.hits, 2, "{stats:?}");
        assert_eq!(stats.misses, 2, "{stats:?}");
    }

    #[test]
    fn capacity_sweep_and_clear_count_evictions() {
        let memo = MemoFeaturizer::with_capacity(
            UniversalConjunctionEncoding::new(space(), 16).unwrap(),
            1,
        );
        let qs = queries();
        memo.featurize(&qs[0]).unwrap(); // miss, memo = {c00}
        memo.featurize(&qs[2]).unwrap(); // miss, sweep {c00}, memo = {c10}
        let stats = memo.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
        memo.clear();
        assert_eq!(memo.stats().evictions, 2);
        // Still correct after clearing.
        let plain = UniversalConjunctionEncoding::new(space(), 16).unwrap();
        assert_eq!(
            plain.featurize(&qs[0]).unwrap(),
            memo.featurize(&qs[0]).unwrap()
        );
    }

    #[test]
    fn errors_pass_through_and_are_not_cached() {
        let memo = MemoFeaturizer::new(UniversalConjunctionEncoding::new(space(), 16).unwrap());
        let disj = Query::single_table(
            TableId(0),
            vec![CompoundPredicate {
                column: ColumnRef::new(TableId(0), ColumnId(0)),
                expr: PredicateExpr::Or(vec![
                    PredicateExpr::leaf(CmpOp::Eq, 1),
                    PredicateExpr::leaf(CmpOp::Eq, 2),
                ]),
            }],
        );
        assert!(matches!(
            memo.featurize(&disj),
            Err(QfeError::UnsupportedQuery(_))
        ));
        assert!(matches!(
            memo.featurize(&disj),
            Err(QfeError::UnsupportedQuery(_))
        ));
        let outside = Query::single_table(
            TableId(7),
            vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(7), ColumnId(0)),
                vec![SimplePredicate::new(CmpOp::Eq, 1)],
            )],
        );
        assert!(matches!(
            memo.featurize(&outside),
            Err(QfeError::InvalidQuery(_))
        ));
    }
}
