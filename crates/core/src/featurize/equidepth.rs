//! Equi-depth bucket boundaries for Universal Conjunction Encoding.
//!
//! Section 3.2 of the paper notes that "for attributes with high skew, a
//! larger n may be necessary. … One could also apply sophisticated
//! partitioning techniques from the field of histograms, like v-optimal
//! and q-optimal partitioning." This encoder implements the simplest such
//! refinement: per-attribute **equi-depth** boundaries computed from the
//! data, so each bucket covers roughly the same number of rows instead of
//! the same value range. Everything else — the `{0, ½, 1}` update rules
//! of Algorithm 1 and the entry-wise-max OR merge of Algorithm 2 — is
//! shared with the equal-width encoders.
//!
//! The `ablations` experiment compares this variant against the paper's
//! equal-width scheme on the skewed forest attributes.

use crate::error::QfeError;
use crate::featurize::conjunctive::featurize_conjunct_buckets_into;
use crate::featurize::space::AttributeSpace;
use crate::featurize::{group_by_column, FeatureVec, Featurizer};
use crate::interval::{Region, RegionSet};
use crate::query::Query;

/// Per-attribute equi-depth bucket edges.
///
/// `edges[a]` holds the sorted inner cut points of attribute `a`: with
/// `k` edges there are `k + 1` buckets, bucket `i` covering values `v`
/// with `edges[i-1] < v <= edges[i]`.
#[derive(Debug, Clone)]
pub struct EquiDepthConjunctionEncoding {
    space: AttributeSpace,
    edges: Vec<Vec<f64>>,
    attr_sel: bool,
    /// Cumulative layout (see [`UniversalConjunctionEncoding`]'s twin
    /// field): `offsets[pos]` is attribute `pos`'s start, the last entry
    /// is the total dimension. Precomputed on every layout change.
    ///
    /// [`UniversalConjunctionEncoding`]: crate::featurize::UniversalConjunctionEncoding
    offsets: Vec<usize>,
}

impl EquiDepthConjunctionEncoding {
    /// Build over `space` with explicit per-attribute edges (one edge
    /// vector per attribute, in space order). Edge vectors must be sorted;
    /// `qfe-data::histogram::equi_depth_edges` computes them from columns.
    ///
    /// # Panics
    /// Panics if `edges.len() != space.len()` or an edge vector is
    /// unsorted.
    pub fn new(space: AttributeSpace, edges: Vec<Vec<f64>>) -> Self {
        assert_eq!(
            edges.len(),
            space.len(),
            "one edge vector per attribute required"
        );
        for e in &edges {
            assert!(
                e.windows(2).all(|w| w[0] <= w[1]),
                "bucket edges must be sorted"
            );
        }
        let mut enc = EquiDepthConjunctionEncoding {
            space,
            edges,
            attr_sel: true,
            offsets: Vec::new(),
        };
        enc.recompute_offsets();
        enc
    }

    fn recompute_offsets(&mut self) {
        self.offsets =
            super::conjunctive::layout_offsets(self.space.len(), |pos| self.attr_width(pos));
    }

    /// Enable/disable the per-attribute selectivity entries.
    pub fn with_attr_sel(mut self, attr_sel: bool) -> Self {
        self.attr_sel = attr_sel;
        self.recompute_offsets();
        self
    }

    /// Buckets of attribute `pos`.
    pub fn buckets_of(&self, pos: usize) -> usize {
        self.edges[pos].len() + 1
    }

    /// Offset of attribute `pos` inside the feature vector. O(1): the
    /// layout is precomputed at construction.
    pub fn attr_offset(&self, pos: usize) -> usize {
        self.offsets[pos]
    }

    /// The attribute space.
    pub fn space(&self) -> &AttributeSpace {
        &self.space
    }

    fn attr_width(&self, pos: usize) -> usize {
        self.buckets_of(pos) + usize::from(self.attr_sel)
    }

    /// Encoding core shared by the allocating and in-place paths: fills
    /// `out` (length `dim()`) via the precomputed offsets. The first
    /// disjunct of each attribute encodes straight into the output slot;
    /// only additional disjuncts touch the (call-local, reused) scratch
    /// buffer for the entry-wise max merge of Algorithm 2.
    fn encode_into(&self, query: &Query, out: &mut [f32]) -> Result<(), QfeError> {
        out.fill(1.0);
        let mut scratch: Vec<f32> = Vec::new();
        for (col, expr) in group_by_column(query) {
            let Some(pos) = self.space.position(col) else {
                return Err(QfeError::InvalidQuery(format!(
                    "predicate on attribute outside the featurizer's space: table {} column {}",
                    col.table.0, col.column.0
                )));
            };
            let domain = self.space.domain(pos);
            let edges = &self.edges[pos];
            let n_a = edges.len() + 1;
            let bucket_of = |v: f64| edges.partition_point(|&e| e < v);
            let start = self.offsets[pos];
            // Merge disjuncts by entry-wise max (Algorithm 2); a pure
            // conjunction is the single-disjunct special case. An empty
            // DNF (unsatisfiable) leaves every bucket at 0.
            let slot = &mut out[start..start + n_a];
            slot.fill(0.0);
            let mut regions = Vec::new();
            for conjunct in expr.to_dnf()? {
                if regions.is_empty() {
                    featurize_conjunct_buckets_into(&conjunct, slot, false, true, &bucket_of)?;
                } else {
                    scratch.resize(n_a, 0.0);
                    let scratch = &mut scratch[..n_a];
                    featurize_conjunct_buckets_into(&conjunct, scratch, false, true, &bucket_of)?;
                    for (m, e) in slot.iter_mut().zip(scratch.iter()) {
                        *m = m.max(*e);
                    }
                }
                regions.push(Region::from_conjunct(&conjunct, domain));
            }
            if self.attr_sel {
                let sel = RegionSet::new(regions).selectivity(domain);
                out[start + n_a] = sel as f32;
            }
        }
        Ok(())
    }
}

impl Featurizer for EquiDepthConjunctionEncoding {
    fn name(&self) -> &'static str {
        "conj-eqdepth"
    }

    fn dim(&self) -> usize {
        self.offsets[self.space.len()]
    }

    fn featurize(&self, query: &Query) -> Result<FeatureVec, QfeError> {
        let mut out = vec![0.0f32; self.dim()];
        self.encode_into(query, &mut out)?;
        Ok(FeatureVec(out))
    }

    fn featurize_into(&self, query: &Query, out: &mut [f32]) -> Result<(), QfeError> {
        crate::featurize::check_out_len(self.dim(), out.len())?;
        self.encode_into(query, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, CompoundPredicate, PredicateExpr, SimplePredicate};
    use crate::query::ColumnRef;
    use crate::schema::{AttributeDomain, ColumnId, TableId};

    fn space() -> AttributeSpace {
        AttributeSpace::new(vec![(
            ColumnRef::new(TableId(0), ColumnId(0)),
            AttributeDomain::integers(0, 1000),
        )])
    }

    fn col() -> ColumnRef {
        ColumnRef::new(TableId(0), ColumnId(0))
    }

    /// Skewed data: most mass below 10, so equi-depth edges concentrate
    /// there.
    fn skewed_edges() -> Vec<f64> {
        vec![1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0]
    }

    #[test]
    fn skew_aware_resolution() {
        // A predicate on the dense low range resolves to different buckets
        // under equi-depth while equal-width would lump everything into
        // bucket 0.
        let enc =
            EquiDepthConjunctionEncoding::new(space(), vec![skewed_edges()]).with_attr_sel(false);
        let q = |hi: i64| {
            Query::single_table(
                TableId(0),
                vec![CompoundPredicate::conjunction(
                    col(),
                    vec![SimplePredicate::new(CmpOp::Le, hi)],
                )],
            )
        };
        let f2 = enc.featurize(&q(2)).unwrap();
        let f8 = enc.featurize(&q(8)).unwrap();
        assert_ne!(f2, f8, "equi-depth buckets separate 2 from 8");
        // Equal-width with the same bucket count cannot: both fall in
        // bucket 0 of 8 over [0, 1000].
        let ew = crate::featurize::UniversalConjunctionEncoding::new(space(), 8)
            .unwrap()
            .with_attr_sel(false);
        assert_eq!(ew.featurize(&q(2)).unwrap(), ew.featurize(&q(8)).unwrap());
    }

    #[test]
    fn update_semantics_match_algorithm_1() {
        // <= 4 with edges [1,2,4,8,16,64,256]: bucket_of(4) = 2 (values
        // in (2,4]); the touched bucket is marked ½ and everything above
        // is zeroed, matching Algorithm 1's update rules.
        let enc =
            EquiDepthConjunctionEncoding::new(space(), vec![skewed_edges()]).with_attr_sel(false);
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(),
                vec![SimplePredicate::new(CmpOp::Le, 4)],
            )],
        );
        let f = enc.featurize(&q).unwrap();
        assert_eq!(f.0, vec![1.0, 1.0, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn disjunctions_merge_by_max() {
        let enc =
            EquiDepthConjunctionEncoding::new(space(), vec![skewed_edges()]).with_attr_sel(false);
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate {
                column: col(),
                expr: PredicateExpr::Or(vec![
                    PredicateExpr::leaf(CmpOp::Le, 2),
                    PredicateExpr::leaf(CmpOp::Ge, 500),
                ]),
            }],
        );
        let f = enc.featurize(&q).unwrap();
        // Low buckets from the first disjunct; the top bucket (256, 1000]
        // is only partially covered by >= 500.
        assert_eq!(f.0[0], 1.0);
        assert_eq!(f.0[7], 0.5);
        assert_eq!(f.0[4], 0.0);
    }

    #[test]
    fn no_predicate_is_all_ones_with_sel() {
        let enc = EquiDepthConjunctionEncoding::new(space(), vec![skewed_edges()]);
        let f = enc
            .featurize(&Query::single_table(TableId(0), vec![]))
            .unwrap();
        assert_eq!(f.dim(), 9);
        assert!(f.0.iter().all(|&e| e == 1.0));
        assert_eq!(enc.name(), "conj-eqdepth");
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_edges_rejected() {
        let _ = EquiDepthConjunctionEncoding::new(space(), vec![vec![5.0, 1.0]]);
    }

    /// Layout regression for the precomputed offsets, over attributes of
    /// *different* widths (3, 1, and 5 buckets), with and without the
    /// selectivity entry.
    #[test]
    fn precomputed_offsets_match_prefix_sums() {
        let space = AttributeSpace::new(vec![
            (
                ColumnRef::new(TableId(0), ColumnId(0)),
                AttributeDomain::integers(0, 100),
            ),
            (
                ColumnRef::new(TableId(0), ColumnId(1)),
                AttributeDomain::integers(0, 100),
            ),
            (
                ColumnRef::new(TableId(0), ColumnId(2)),
                AttributeDomain::integers(0, 100),
            ),
        ]);
        let edges = vec![vec![10.0, 20.0], vec![], vec![5.0, 10.0, 20.0, 40.0]];
        for attr_sel in [true, false] {
            let enc = EquiDepthConjunctionEncoding::new(space.clone(), edges.clone())
                .with_attr_sel(attr_sel);
            let mut expected = 0;
            for pos in 0..enc.space().len() {
                assert_eq!(
                    enc.attr_offset(pos),
                    expected,
                    "attrSel={attr_sel} pos={pos}"
                );
                expected += enc.buckets_of(pos) + usize::from(attr_sel);
            }
            assert_eq!(enc.dim(), expected);
        }
    }
}
