//! Range Predicate Encoding (Section 3.1).
//!
//! Builds on the observation that in databases all point and range
//! predicates can be encoded as **closed ranges**: `A = 5` becomes
//! `[5, 5]`, `A <= 5` becomes `[min(A), 5]`, and open endpoints are closed
//! using the domain step (integers: `A < 5 ↦ [min(A), 4]`; decimals: a
//! small step size). Ranges are normalized to `[0, 1]` per attribute.
//!
//! The encoding is lossless for queries with up to one equality / open
//! range / closed range predicate per attribute. Conjunctions of bound
//! predicates on the same attribute fold naturally into the intersected
//! range; `<>` predicates and disjunctions cannot be represented — `<>` is
//! dropped (information loss, visible in the paper's Figure 3 as the
//! 3-predicate spike), disjunctions are rejected.

use crate::error::QfeError;
use crate::featurize::space::AttributeSpace;
use crate::featurize::{group_by_column, FeatureVec, Featurizer};
use crate::interval::Region;
use crate::predicate::SimplePredicate;
use crate::query::Query;

/// The `range` QFT: one normalized closed range `[lo, hi]` per attribute.
#[derive(Debug, Clone)]
pub struct RangePredicateEncoding {
    space: AttributeSpace,
}

/// Entries per attribute: normalized lower and upper bound.
const SLOT: usize = 2;

impl RangePredicateEncoding {
    /// Build over the given attribute space.
    pub fn new(space: AttributeSpace) -> Self {
        RangePredicateEncoding { space }
    }

    /// The attribute space this encoder is defined over.
    pub fn space(&self) -> &AttributeSpace {
        &self.space
    }

    /// Encoding core shared by the allocating and in-place paths: fills
    /// `out` (length `dim()`) in place without allocating the output.
    fn encode_into(&self, query: &Query, out: &mut [f32]) -> Result<(), QfeError> {
        // Default: the full range [0, 1] for attributes without predicates,
        // which is exactly the lossless encoding of "no restriction".
        for slot in out.chunks_exact_mut(SLOT) {
            slot[0] = 0.0;
            slot[1] = 1.0;
        }
        for (col, expr) in group_by_column(query) {
            let Some(pos) = self.space.position(col) else {
                return Err(QfeError::InvalidQuery(format!(
                    "predicate on attribute outside the featurizer's space: table {} column {}",
                    col.table.0, col.column.0
                )));
            };
            if !expr.is_conjunctive() {
                return Err(QfeError::UnsupportedQuery(
                    "Range Predicate Encoding cannot featurize disjunctions".into(),
                ));
            }
            let dnf = expr.to_dnf()?;
            let unsatisfiable = dnf.is_empty();
            let preds: Vec<SimplePredicate> = dnf.into_iter().next().unwrap_or_default();
            for p in &preds {
                if p.value.as_f64().is_none() {
                    return Err(QfeError::InvalidLiteral(format!(
                        "literal {} must be dictionary-encoded before featurization",
                        p.value
                    )));
                }
            }
            let domain = self.space.domain(pos);
            let region = if unsatisfiable {
                Region::empty()
            } else {
                Region::from_conjunct(&preds, domain)
            };
            let (lo, hi) = if region.is_empty() {
                // An unsatisfiable conjunction: encode as an inverted range,
                // distinguishable from every non-empty range.
                (1.0, 0.0)
            } else {
                (domain.normalize(region.lo), domain.normalize(region.hi))
            };
            out[pos * SLOT] = lo as f32;
            out[pos * SLOT + 1] = hi as f32;
        }
        Ok(())
    }
}

impl Featurizer for RangePredicateEncoding {
    fn name(&self) -> &'static str {
        "range"
    }

    fn dim(&self) -> usize {
        self.space.len() * SLOT
    }

    fn featurize(&self, query: &Query) -> Result<FeatureVec, QfeError> {
        let mut out = vec![0.0f32; self.dim()];
        self.encode_into(query, &mut out)?;
        Ok(FeatureVec(out))
    }

    fn featurize_into(&self, query: &Query, out: &mut [f32]) -> Result<(), QfeError> {
        crate::featurize::check_out_len(self.dim(), out.len())?;
        self.encode_into(query, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, CompoundPredicate, PredicateExpr};
    use crate::query::ColumnRef;
    use crate::schema::{AttributeDomain, ColumnId, TableId};

    fn space() -> AttributeSpace {
        AttributeSpace::new(vec![
            (
                ColumnRef::new(TableId(0), ColumnId(0)),
                AttributeDomain::integers(0, 100),
            ),
            (
                ColumnRef::new(TableId(0), ColumnId(1)),
                AttributeDomain::reals(0.0, 10.0),
            ),
        ])
    }

    fn col(i: usize) -> ColumnRef {
        ColumnRef::new(TableId(0), ColumnId(i))
    }

    #[test]
    fn equality_becomes_point_range() {
        let enc = RangePredicateEncoding::new(space());
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(0),
                vec![SimplePredicate::new(CmpOp::Eq, 50)],
            )],
        );
        let f = enc.featurize(&q).unwrap();
        assert_eq!(f.0[0], 0.5);
        assert_eq!(f.0[1], 0.5);
    }

    #[test]
    fn open_integer_range_closes_with_step_one() {
        let enc = RangePredicateEncoding::new(space());
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(0),
                vec![SimplePredicate::new(CmpOp::Lt, 5)],
            )],
        );
        let f = enc.featurize(&q).unwrap();
        assert_eq!(f.0[0], 0.0);
        assert!((f.0[1] - 0.04).abs() < 1e-6); // [0, 4] on [0, 100]
    }

    #[test]
    fn conjunctions_of_bounds_intersect() {
        let enc = RangePredicateEncoding::new(space());
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(0),
                vec![
                    SimplePredicate::new(CmpOp::Ge, 20),
                    SimplePredicate::new(CmpOp::Le, 80),
                    SimplePredicate::new(CmpOp::Gt, 40),
                ],
            )],
        );
        let f = enc.featurize(&q).unwrap();
        assert!((f.0[0] - 0.41).abs() < 1e-6);
        assert!((f.0[1] - 0.80).abs() < 1e-6);
    }

    #[test]
    fn not_equal_predicates_are_lost() {
        // `<>` cannot be represented: the featurization equals the one
        // without the `<>` (documented information loss).
        let enc = RangePredicateEncoding::new(space());
        let with_ne = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(0),
                vec![
                    SimplePredicate::new(CmpOp::Ge, 10),
                    SimplePredicate::new(CmpOp::Le, 20),
                    SimplePredicate::new(CmpOp::Ne, 15),
                ],
            )],
        );
        let without = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(0),
                vec![
                    SimplePredicate::new(CmpOp::Ge, 10),
                    SimplePredicate::new(CmpOp::Le, 20),
                ],
            )],
        );
        assert_eq!(
            enc.featurize(&with_ne).unwrap(),
            enc.featurize(&without).unwrap()
        );
    }

    #[test]
    fn no_predicate_is_full_range() {
        let enc = RangePredicateEncoding::new(space());
        let f = enc
            .featurize(&Query::single_table(TableId(0), vec![]))
            .unwrap();
        assert_eq!(f.0, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn empty_range_is_inverted() {
        let enc = RangePredicateEncoding::new(space());
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(0),
                vec![
                    SimplePredicate::new(CmpOp::Gt, 80),
                    SimplePredicate::new(CmpOp::Lt, 20),
                ],
            )],
        );
        let f = enc.featurize(&q).unwrap();
        assert!(f.0[0] > f.0[1]);
    }

    #[test]
    fn empty_disjunction_is_inverted_range() {
        let enc = RangePredicateEncoding::new(space());
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate {
                column: col(0),
                expr: PredicateExpr::Or(vec![]),
            }],
        );
        let f = enc.featurize(&q).unwrap();
        assert!(
            f.0[0] > f.0[1],
            "unsatisfiable must encode as inverted range"
        );
    }

    #[test]
    fn real_domain_bounds() {
        let enc = RangePredicateEncoding::new(space());
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(1),
                vec![
                    SimplePredicate::new(CmpOp::Ge, 2.5),
                    SimplePredicate::new(CmpOp::Le, 7.5),
                ],
            )],
        );
        let f = enc.featurize(&q).unwrap();
        assert!((f.0[2] - 0.25).abs() < 1e-6);
        assert!((f.0[3] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn disjunctions_are_rejected() {
        let enc = RangePredicateEncoding::new(space());
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate {
                column: col(0),
                expr: PredicateExpr::Or(vec![
                    PredicateExpr::leaf(CmpOp::Eq, 1),
                    PredicateExpr::leaf(CmpOp::Eq, 2),
                ]),
            }],
        );
        assert!(matches!(
            enc.featurize(&q),
            Err(QfeError::UnsupportedQuery(_))
        ));
    }
}
