//! Universal Conjunction Encoding (Section 3.2, Algorithm 1).
//!
//! The data-driven idea: (1) partition the data domain of each attribute,
//! (2) give each partition one feature-vector entry, and (3) assign each
//! entry a categorical value indicating whether the partition satisfies the
//! predicates of the query — `0` (no value qualifies), `½` (some values
//! qualify), `1` (all values qualify). This encodes queries with
//! *arbitrarily many* simple predicates connected by AND, unlike the
//! fixed-slot encodings.
//!
//! Per the paper, an optional per-attribute selectivity estimate (the gray
//! entries of Algorithm 1) is appended after each attribute's buckets; it
//! is the uniformity-assumption fraction of the attribute's domain that
//! qualifies, which helps the model when buckets are coarse or training
//! data is scarce. We compute it exactly via [`crate::interval::Region`]
//! (a refinement of the paper's `r_A` formula that handles equality
//! predicates and off-by-one endpoints precisely).
//!
//! When an attribute's domain has at most as many distinct values as
//! buckets, each bucket covers exactly one value and the implementation
//! switches to an exact 0/1 mode (no ½ entries), as described at the end of
//! Section 3.2.

use crate::error::QfeError;
use crate::featurize::space::AttributeSpace;
use crate::featurize::{group_by_column, FeatureVec, Featurizer};
use crate::interval::Region;
use crate::predicate::{CmpOp, SimplePredicate};
use crate::query::Query;
use crate::schema::AttributeDomain;

/// The `conjunctive` QFT: bucketized per-attribute vectors with entries in
/// `{0, ½, 1}` plus optional per-attribute selectivity estimates.
#[derive(Debug, Clone)]
pub struct UniversalConjunctionEncoding {
    space: AttributeSpace,
    max_buckets: usize,
    attr_sel: bool,
    ternary: bool,
    /// Cumulative layout: `offsets[pos]` is where attribute `pos` starts in
    /// the feature vector; `offsets[space.len()]` is the total dimension.
    /// Precomputed whenever the layout changes — summing the prefix on
    /// every `attr_offset` call made per-attribute loops O(n²).
    offsets: Vec<usize>,
}

/// Cumulative offsets for a per-attribute layout: one entry per attribute
/// plus a final entry holding the total width.
pub(crate) fn layout_offsets(count: usize, width_of: impl Fn(usize) -> usize) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(count + 1);
    let mut total = 0;
    offsets.push(0);
    for pos in 0..count {
        total += width_of(pos);
        offsets.push(total);
    }
    offsets
}

impl UniversalConjunctionEncoding {
    /// Build over `space` with at most `max_buckets` entries per attribute
    /// (the paper's `n`; 32–64 is recommended, cf. Section 5.4) and
    /// per-attribute selectivity entries enabled.
    ///
    /// # Errors
    /// [`QfeError::InvalidConfig`] if `max_buckets` is zero — every
    /// attribute needs at least one bucket.
    pub fn new(space: AttributeSpace, max_buckets: usize) -> Result<Self, QfeError> {
        if max_buckets < 1 {
            return Err(QfeError::InvalidConfig(
                "conjunctive QFT needs at least one bucket per attribute".into(),
            ));
        }
        let mut enc = UniversalConjunctionEncoding {
            space,
            max_buckets,
            attr_sel: true,
            ternary: true,
            offsets: Vec::new(),
        };
        enc.recompute_offsets();
        Ok(enc)
    }

    fn recompute_offsets(&mut self) {
        self.offsets = layout_offsets(self.space.len(), |pos| self.attr_width(pos));
    }

    /// Enable/disable the per-attribute selectivity entries (Table 3
    /// ablates them).
    pub fn with_attr_sel(mut self, attr_sel: bool) -> Self {
        self.attr_sel = attr_sel;
        self.recompute_offsets();
        self
    }

    /// Enable/disable the ternary `½` marks for partially-qualifying
    /// buckets. With `false`, touched buckets keep their binary value
    /// (superset semantics) — an ablation of the design choice, not part
    /// of the paper's algorithm.
    pub fn with_ternary(mut self, ternary: bool) -> Self {
        self.ternary = ternary;
        self
    }

    /// The attribute space this encoder is defined over.
    pub fn space(&self) -> &AttributeSpace {
        &self.space
    }

    /// Maximum buckets per attribute (`n`).
    pub fn max_buckets(&self) -> usize {
        self.max_buckets
    }

    /// Whether selectivity entries are appended.
    pub fn attr_sel(&self) -> bool {
        self.attr_sel
    }

    /// Number of bucket entries of the attribute at layout position `pos`.
    pub fn buckets_of(&self, pos: usize) -> usize {
        self.space.domain(pos).bucket_count(self.max_buckets)
    }

    /// Per-attribute vector width including the selectivity entry.
    fn attr_width(&self, pos: usize) -> usize {
        self.buckets_of(pos) + usize::from(self.attr_sel)
    }

    /// Offset of attribute `pos` inside the feature vector. O(1): the
    /// layout is precomputed at construction.
    pub fn attr_offset(&self, pos: usize) -> usize {
        self.offsets[pos]
    }

    /// Encoding core shared by the allocating and in-place paths: fills
    /// `out` (length `dim()`) directly via the precomputed layout offsets,
    /// allocating nothing beyond what DNF expansion itself needs.
    fn encode_into(&self, query: &Query, out: &mut [f32]) -> Result<(), QfeError> {
        // Default per attribute: all-one buckets and selectivity 1 ("no
        // restriction"); predicated attributes overwrite their slot below
        // (each attribute is encoded at most once).
        out.fill(1.0);
        // Workload-shaped queries predicate each attribute at most once
        // (Definition 3.3), so their expressions can be encoded straight
        // off the query by reference. Only user-built queries that repeat
        // an attribute pay for the merging clones in `group_by_column`.
        if distinct_columns(query) {
            let mut leaves = Vec::new();
            for cp in &query.predicates {
                let pos = self.position_of(cp.column)?;
                leaves.clear();
                self.encode_attr_in(
                    pos,
                    &cp.expr,
                    &mut out[self.offsets[pos]..self.offsets[pos + 1]],
                    &mut leaves,
                )?;
            }
            return Ok(());
        }
        for (col, expr) in group_by_column(query) {
            let pos = self.position_of(col)?;
            self.encode_attr(
                pos,
                &expr,
                &mut out[self.offsets[pos]..self.offsets[pos + 1]],
            )?;
        }
        Ok(())
    }

    /// Layout position of `col`, or the typed out-of-space error.
    fn position_of(&self, col: crate::query::ColumnRef) -> Result<usize, QfeError> {
        self.space.position(col).ok_or_else(|| {
            QfeError::InvalidQuery(format!(
                "predicate on attribute outside the featurizer's space: table {} column {}",
                col.table.0, col.column.0
            ))
        })
    }

    /// Encode one attribute's merged predicate expression into its segment
    /// of the feature vector (`seg` has length `buckets_of(pos)` plus the
    /// selectivity slot if enabled). This is the per-attribute unit of work
    /// that [`super::MemoFeaturizer`] memoizes across sub-plan probes.
    pub(crate) fn encode_attr(
        &self,
        pos: usize,
        expr: &crate::predicate::PredicateExpr,
        seg: &mut [f32],
    ) -> Result<(), QfeError> {
        self.encode_attr_in(pos, expr, seg, &mut Vec::new())
    }

    /// [`Self::encode_attr`] with a caller-owned leaf-reference scratch,
    /// so the per-query loop reuses one allocation across attributes.
    fn encode_attr_in<'q>(
        &self,
        pos: usize,
        expr: &'q crate::predicate::PredicateExpr,
        seg: &mut [f32],
        leaves: &mut Vec<&'q SimplePredicate>,
    ) -> Result<(), QfeError> {
        if !expr.is_conjunctive() {
            return Err(QfeError::UnsupportedQuery(
                "Universal Conjunction Encoding cannot featurize disjunctions; \
                 use Limited Disjunction Encoding"
                    .into(),
            ));
        }
        let domain = self.space.domain(pos);
        let n_a = domain.bucket_count(self.max_buckets);
        debug_assert_eq!(seg.len(), self.attr_width(pos));
        let (buckets, sel_slot) = seg.split_at_mut(n_a);
        // The DNF of a conjunctive expression is a single term holding
        // exactly its leaves in depth-first order; gather them by
        // reference instead of cloning through `to_dnf` — same bits out,
        // none of the expansion's per-attribute allocations.
        leaves.clear();
        if expr.conjunct_leaf_refs(leaves) {
            let region =
                featurize_conjunct_into(leaves.iter().copied(), domain, buckets, self.ternary)?;
            if self.attr_sel {
                sel_slot[0] = region.selectivity(domain) as f32;
            }
        } else {
            // An empty disjunction is unsatisfiable (e.g. a prefix
            // predicate matching nothing): no bucket qualifies.
            buckets.fill(0.0);
            if self.attr_sel {
                sel_slot[0] = 0.0;
            }
        }
        Ok(())
    }
}

/// Whether every compound predicate names a different attribute
/// (Definition 3.3's shape) — the precondition for the by-reference
/// encoding paths that skip `group_by_column`'s merging clones.
fn distinct_columns(query: &Query) -> bool {
    query.predicates.iter().enumerate().all(|(i, cp)| {
        query.predicates[..i]
            .iter()
            .all(|prev| prev.column != cp.column)
    })
}

/// Featurize one attribute's conjunction of simple predicates into `n_a`
/// bucket entries (Algorithm 1 lines 1–16) plus the exact selectivity.
///
/// Shared with Limited Disjunction Encoding, which runs it once per
/// disjunct and merges by entry-wise max (Algorithm 2).
pub(crate) fn featurize_conjunct(
    preds: &[SimplePredicate],
    domain: &AttributeDomain,
    n_a: usize,
    ternary: bool,
) -> Result<(Vec<f32>, Region), QfeError> {
    let mut v = vec![1.0f32; n_a];
    let region = featurize_conjunct_into(preds, domain, &mut v, ternary)?;
    Ok((v, region))
}

/// In-place variant of [`featurize_conjunct`]: encodes into `out` (whose
/// length is the attribute's bucket count `n_a`) without allocating the
/// bucket vector. Used by the batched arena path. Generic over borrowed
/// predicates so the zero-clone leaf-reference path shares it.
pub(crate) fn featurize_conjunct_into<'a, I>(
    preds: I,
    domain: &AttributeDomain,
    out: &mut [f32],
    ternary: bool,
) -> Result<Region, QfeError>
where
    I: IntoIterator<Item = &'a SimplePredicate> + Clone,
{
    let n_a = out.len();
    let exact = domain.exact_buckets(n_a);
    featurize_conjunct_buckets_into(preds.clone(), out, exact, ternary, &|val| {
        domain.bucket_of(val, n_a)
    })?;
    Ok(Region::from_conjunct(preds, domain))
}

/// The bucket-update core of Algorithm 1, generic over the bucket mapping
/// (equal-width per the paper, or data-driven equi-depth via
/// [`super::EquiDepthConjunctionEncoding`]). `bucket_of` must be monotone
/// non-decreasing in its argument. Operates in place: `v` (length = the
/// bucket count `n_a`) is reset to all-ones and then updated, so batch
/// callers can point it straight into their feature arena.
pub(crate) fn featurize_conjunct_buckets_into<'a, I>(
    preds: I,
    v: &mut [f32],
    exact: bool,
    ternary: bool,
    bucket_of: &dyn Fn(f64) -> usize,
) -> Result<(), QfeError>
where
    I: IntoIterator<Item = &'a SimplePredicate>,
{
    let n_a = v.len();
    v.fill(1.0);
    for p in preds {
        let val = p.value.as_f64().ok_or_else(|| {
            QfeError::InvalidLiteral(format!(
                "literal {} must be dictionary-encoded before featurization",
                p.value
            ))
        })?;
        let idx = bucket_of(val).min(n_a - 1);
        // Line 5: a bucket touched by a predicate only *partially*
        // qualifies — but only in coarse mode; with exact single-value
        // buckets the boundary is sharp (end of Section 3.2). With the
        // ternary marks ablated, touched buckets keep their value
        // (superset semantics).
        let mark_partial = |v: &mut [f32], idx: usize| {
            if ternary && v[idx] == 1.0 {
                v[idx] = 0.5;
            }
        };
        match p.op {
            CmpOp::Eq => {
                if !exact {
                    mark_partial(v, idx);
                }
                for (i, entry) in v.iter_mut().enumerate() {
                    if i != idx {
                        *entry = 0.0;
                    }
                }
            }
            CmpOp::Gt => {
                let zero_to = if exact { idx + 1 } else { idx };
                if !exact {
                    mark_partial(v, idx);
                }
                v[..zero_to.min(n_a)].fill(0.0);
            }
            CmpOp::Ge => {
                if !exact {
                    mark_partial(v, idx);
                }
                v[..idx].fill(0.0);
            }
            CmpOp::Lt => {
                let zero_from = if exact { idx } else { idx + 1 };
                if !exact {
                    mark_partial(v, idx);
                }
                v[zero_from..].fill(0.0);
            }
            CmpOp::Le => {
                if !exact {
                    mark_partial(v, idx);
                }
                v[idx + 1..].fill(0.0);
            }
            CmpOp::Ne => {
                if exact {
                    v[idx] = 0.0;
                } else {
                    mark_partial(v, idx);
                }
            }
        }
    }
    Ok(())
}

impl Featurizer for UniversalConjunctionEncoding {
    fn name(&self) -> &'static str {
        "conjunctive"
    }

    fn dim(&self) -> usize {
        self.offsets[self.space.len()]
    }

    fn featurize(&self, query: &Query) -> Result<FeatureVec, QfeError> {
        let mut out = vec![0.0f32; self.dim()];
        self.encode_into(query, &mut out)?;
        Ok(FeatureVec(out))
    }

    fn featurize_into(&self, query: &Query, out: &mut [f32]) -> Result<(), QfeError> {
        crate::featurize::check_out_len(self.dim(), out.len())?;
        self.encode_into(query, out)
    }

    fn featurize_binned_into(
        &self,
        query: &Query,
        binner: &crate::featurize::FeatureBinner,
        scratch: &mut [f32],
        out: &mut [u16],
    ) -> Result<(), QfeError> {
        crate::featurize::check_out_len(self.dim(), out.len())?;
        crate::featurize::check_out_len(self.dim(), binner.features())?;
        crate::featurize::check_out_len(self.dim(), scratch.len())?;
        if !distinct_columns(query) {
            self.encode_into(query, scratch)?;
            binner.bin_row(scratch, out);
            return Ok(());
        }
        // Fused fast path: unpredicated attributes hold the constant
        // all-ones default, so their bins come straight off the binner's
        // precomputed template; only predicated segments are encoded
        // (into their slice of `scratch`) and re-binned value by value.
        // `bin_value` is `bin_row`'s kernel, so the bits match the
        // default encode-then-bin composition exactly.
        binner.bin_ones_into(out);
        let mut leaves = Vec::new();
        for cp in &query.predicates {
            let pos = self.position_of(cp.column)?;
            let range = self.offsets[pos]..self.offsets[pos + 1];
            leaves.clear();
            self.encode_attr_in(pos, &cp.expr, &mut scratch[range.clone()], &mut leaves)?;
            binner.bin_span(range.start, &scratch[range.clone()], &mut out[range]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompoundPredicate, PredicateExpr};
    use crate::query::ColumnRef;
    use crate::schema::{ColumnId, TableId};

    /// The paper's running example: attributes A [-9, 50], B [0, 115],
    /// C in {1, 2}; n = 12.
    fn paper_space() -> AttributeSpace {
        AttributeSpace::new(vec![
            (
                ColumnRef::new(TableId(0), ColumnId(0)),
                AttributeDomain::integers(-9, 50),
            ),
            (
                ColumnRef::new(TableId(0), ColumnId(1)),
                AttributeDomain::integers(0, 115),
            ),
            (
                ColumnRef::new(TableId(0), ColumnId(2)),
                AttributeDomain::integers(1, 2),
            ),
        ])
    }

    fn col(i: usize) -> ColumnRef {
        ColumnRef::new(TableId(0), ColumnId(i))
    }

    /// Section 3.2 example: A < 7 AND B >= 30 AND B <= 100 AND B <> 66
    /// with n = 12 yields
    /// A: 1 1 1 ½ 0 0 0 0 0 0 0 0   B: 0 0 0 ½ 1 1 ½ 1 1 1 ½ 0   C: 1 1
    #[test]
    fn paper_example_feature_vector() {
        let enc = UniversalConjunctionEncoding::new(paper_space(), 12)
            .unwrap()
            .with_attr_sel(false);
        let q = Query::single_table(
            TableId(0),
            vec![
                CompoundPredicate::conjunction(col(0), vec![SimplePredicate::new(CmpOp::Lt, 7)]),
                CompoundPredicate::conjunction(
                    col(1),
                    vec![
                        SimplePredicate::new(CmpOp::Ge, 30),
                        SimplePredicate::new(CmpOp::Le, 100),
                        SimplePredicate::new(CmpOp::Ne, 66),
                    ],
                ),
            ],
        );
        let f = enc.featurize(&q).unwrap();
        let expected_a = [1.0, 1.0, 1.0, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let expected_b = [0.0, 0.0, 0.0, 0.5, 1.0, 1.0, 0.5, 1.0, 1.0, 1.0, 0.5, 0.0];
        let expected_c = [1.0, 1.0];
        assert_eq!(&f.0[..12], &expected_a);
        assert_eq!(&f.0[12..24], &expected_b);
        assert_eq!(&f.0[24..26], &expected_c);
        assert_eq!(f.dim(), 26);
    }

    /// With attrSel the example's gray entries are ~0.27 for A (16/60) and
    /// ~0.48 for B (70/116, the paper rounds to .48); C gets 1.0.
    #[test]
    fn paper_example_selectivity_entries() {
        let enc = UniversalConjunctionEncoding::new(paper_space(), 12).unwrap();
        let q = Query::single_table(
            TableId(0),
            vec![
                CompoundPredicate::conjunction(col(0), vec![SimplePredicate::new(CmpOp::Lt, 7)]),
                CompoundPredicate::conjunction(
                    col(1),
                    vec![
                        SimplePredicate::new(CmpOp::Ge, 30),
                        SimplePredicate::new(CmpOp::Le, 100),
                        SimplePredicate::new(CmpOp::Ne, 66),
                    ],
                ),
            ],
        );
        let f = enc.featurize(&q).unwrap();
        // Layout: A buckets (12) + sel, B buckets (12) + sel, C buckets (2) + sel.
        let sel_a = f.0[12];
        let sel_b = f.0[25];
        let sel_c = f.0[28];
        // A < 7 on [-9, 50]: qualifying integers -9..=6 => 16 / 60.
        assert!((sel_a - 16.0 / 60.0).abs() < 1e-6, "sel_a = {sel_a}");
        // 30 <= B <= 100 minus 66 on [0, 115]: 70 / 116.
        assert!((sel_b - 70.0 / 116.0).abs() < 1e-6, "sel_b = {sel_b}");
        assert_eq!(sel_c, 1.0);
        assert_eq!(f.dim(), 12 + 1 + 12 + 1 + 2 + 1);
    }

    #[test]
    fn equality_zeroes_all_other_buckets() {
        let d = AttributeDomain::integers(0, 999);
        let (v, _) =
            featurize_conjunct(&[SimplePredicate::new(CmpOp::Eq, 500)], &d, 10, true).unwrap();
        let idx = d.bucket_of(500.0, 10);
        for (i, &e) in v.iter().enumerate() {
            if i == idx {
                assert_eq!(e, 0.5);
            } else {
                assert_eq!(e, 0.0);
            }
        }
    }

    #[test]
    fn exact_mode_uses_only_binary_entries() {
        // Domain {1, 2} with 12 max buckets -> 2 exact buckets.
        let d = AttributeDomain::integers(1, 2);
        let (v, _) =
            featurize_conjunct(&[SimplePredicate::new(CmpOp::Eq, 2)], &d, 2, true).unwrap();
        assert_eq!(v, vec![0.0, 1.0]);
        let (v, _) =
            featurize_conjunct(&[SimplePredicate::new(CmpOp::Ne, 2)], &d, 2, true).unwrap();
        assert_eq!(v, vec![1.0, 0.0]);
        let (v, _) =
            featurize_conjunct(&[SimplePredicate::new(CmpOp::Gt, 1)], &d, 2, true).unwrap();
        assert_eq!(v, vec![0.0, 1.0]);
        let (v, _) =
            featurize_conjunct(&[SimplePredicate::new(CmpOp::Ge, 2)], &d, 2, true).unwrap();
        assert_eq!(v, vec![0.0, 1.0]);
        let (v, _) =
            featurize_conjunct(&[SimplePredicate::new(CmpOp::Lt, 2)], &d, 2, true).unwrap();
        assert_eq!(v, vec![1.0, 0.0]);
        let (v, _) =
            featurize_conjunct(&[SimplePredicate::new(CmpOp::Le, 1)], &d, 2, true).unwrap();
        assert_eq!(v, vec![1.0, 0.0]);
    }

    #[test]
    fn conjunction_only_decreases_entries() {
        // Adding conjuncts can only make a query more selective: every
        // entry is monotonically non-increasing in the number of predicates.
        let d = AttributeDomain::integers(0, 99);
        let preds = [
            SimplePredicate::new(CmpOp::Ge, 10),
            SimplePredicate::new(CmpOp::Le, 80),
            SimplePredicate::new(CmpOp::Ne, 42),
            SimplePredicate::new(CmpOp::Gt, 15),
        ];
        let mut prev = vec![1.0f32; 16];
        for k in 0..=preds.len() {
            let (v, _) = featurize_conjunct(&preds[..k], &d, 16, true).unwrap();
            for (a, b) in v.iter().zip(&prev) {
                assert!(a <= b, "entry increased when adding a conjunct");
            }
            prev = v;
        }
    }

    #[test]
    fn no_predicate_attribute_is_all_ones() {
        let enc = UniversalConjunctionEncoding::new(paper_space(), 12).unwrap();
        let q = Query::single_table(TableId(0), vec![]);
        let f = enc.featurize(&q).unwrap();
        assert!(f.0.iter().all(|&e| e == 1.0));
    }

    #[test]
    fn empty_disjunction_is_unsatisfiable_not_unrestricted() {
        // An `Or([])` (e.g. a prefix predicate matching no dictionary
        // entry) must zero its attribute's buckets, not leave them all-one.
        let enc = UniversalConjunctionEncoding::new(paper_space(), 12).unwrap();
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate {
                column: col(0),
                expr: PredicateExpr::Or(vec![]),
            }],
        );
        let f = enc.featurize(&q).unwrap();
        // Attribute A: 12 zero buckets + selectivity 0.
        assert!(f.0[..12].iter().all(|&e| e == 0.0), "{:?}", &f.0[..13]);
        assert_eq!(f.0[12], 0.0);
        // Other attributes untouched.
        assert!(f.0[13..].iter().all(|&e| e == 1.0));
    }

    #[test]
    fn disjunction_is_rejected() {
        let enc = UniversalConjunctionEncoding::new(paper_space(), 12).unwrap();
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate {
                column: col(0),
                expr: PredicateExpr::Or(vec![
                    PredicateExpr::leaf(CmpOp::Eq, 1),
                    PredicateExpr::leaf(CmpOp::Eq, 2),
                ]),
            }],
        );
        assert!(matches!(
            enc.featurize(&q),
            Err(QfeError::UnsupportedQuery(_))
        ));
    }

    #[test]
    fn raw_string_literal_is_rejected() {
        let enc = UniversalConjunctionEncoding::new(paper_space(), 12).unwrap();
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(0),
                vec![SimplePredicate::new(CmpOp::Eq, "raw")],
            )],
        );
        assert!(matches!(
            enc.featurize(&q),
            Err(QfeError::InvalidLiteral(_))
        ));
    }

    #[test]
    fn determinism() {
        let enc = UniversalConjunctionEncoding::new(paper_space(), 32).unwrap();
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(1),
                vec![
                    SimplePredicate::new(CmpOp::Ge, 30),
                    SimplePredicate::new(CmpOp::Le, 100),
                ],
            )],
        );
        assert_eq!(enc.featurize(&q).unwrap(), enc.featurize(&q).unwrap());
    }

    #[test]
    fn offsets_are_consistent_with_dim() {
        let enc = UniversalConjunctionEncoding::new(paper_space(), 12).unwrap();
        let last = enc.space().len() - 1;
        assert_eq!(enc.attr_offset(last) + enc.buckets_of(last) + 1, enc.dim());
    }

    /// Layout regression: the precomputed offsets must equal the prefix
    /// sums of the per-attribute widths under every layout-affecting
    /// configuration (attrSel on/off; ternary does not affect layout).
    #[test]
    fn precomputed_offsets_match_prefix_sums() {
        for attr_sel in [true, false] {
            for ternary in [true, false] {
                let enc = UniversalConjunctionEncoding::new(paper_space(), 12)
                    .unwrap()
                    .with_attr_sel(attr_sel)
                    .with_ternary(ternary);
                let mut expected = 0;
                for pos in 0..enc.space().len() {
                    assert_eq!(
                        enc.attr_offset(pos),
                        expected,
                        "attrSel={attr_sel} ternary={ternary} pos={pos}"
                    );
                    expected += enc.buckets_of(pos) + usize::from(attr_sel);
                }
                assert_eq!(enc.dim(), expected);
            }
        }
    }

    /// Toggling attrSel after construction must rebuild the layout, not
    /// keep stale offsets.
    #[test]
    fn with_attr_sel_rebuilds_offsets() {
        let with_sel = UniversalConjunctionEncoding::new(paper_space(), 12).unwrap();
        let without = with_sel.clone().with_attr_sel(false);
        // Each of the 3 attributes loses exactly its one selectivity slot.
        assert_eq!(with_sel.attr_offset(1), without.attr_offset(1) + 1);
        assert_eq!(with_sel.attr_offset(2), without.attr_offset(2) + 2);
        assert_eq!(with_sel.dim(), without.dim() + 3);
    }
}
