//! Query featurization techniques (QFTs) — the paper's core contribution.
//!
//! A QFT encodes a [`Query`] into a numeric [`FeatureVec`] that serves as
//! input to a machine-learning model. All QFTs here are model-independent
//! (Section 4): the same feature vector can be fed to a feed-forward
//! network, a gradient-boosting model, or — via the set-based adapter in
//! [`mscn`] — a multi-set convolutional network.
//!
//! | paper label  | type |
//! |--------------|------|
//! | `simple`     | [`SingularPredicateEncoding`] |
//! | `range`      | [`RangePredicateEncoding`] |
//! | `conjunctive`| [`UniversalConjunctionEncoding`] |
//! | `complex`    | [`LimitedDisjunctionEncoding`] |

pub mod binned;
mod complex;
mod conjunctive;
mod equidepth;
pub mod groupby;
pub mod join;
pub mod lossless;
mod matrix;
pub mod memo;
pub mod mscn;
mod range;
mod simple;
mod space;

pub use binned::{BinnedFeatureMatrix, FeatureBinner};
pub use complex::LimitedDisjunctionEncoding;
pub use conjunctive::UniversalConjunctionEncoding;
pub use equidepth::EquiDepthConjunctionEncoding;
pub use groupby::{GroupByEncoding, GroupedQuery};
pub use join::GlobalTableEncoding;
pub use matrix::FeatureMatrix;
pub use memo::{MemoFeaturizer, MemoStats, SegmentedFeaturizer};
pub use range::RangePredicateEncoding;
pub use simple::SingularPredicateEncoding;
pub use space::AttributeSpace;

use crate::error::QfeError;
use crate::predicate::PredicateExpr;
use crate::query::{ColumnRef, Query};

/// A featurized query: the numeric vector consumed by ML models.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVec(pub Vec<f32>);

impl FeatureVec {
    /// Dimension of the vector.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Raw entries.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Approximate in-memory footprint in bytes (Table 5 reports
    /// per-feature-vector memory).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.0.len() * std::mem::size_of::<f32>()
    }
}

/// A query featurization technique.
///
/// Implementations are deterministic: equal queries always produce equal
/// feature vectors (the requirement of Eq. 4 in the paper — ML training
/// breaks down if the same input maps to different labels, so featurization
/// must at least be a function).
pub trait Featurizer: Send + Sync {
    /// Short label used in experiment output (`simple`, `range`,
    /// `conjunctive`, `complex`).
    fn name(&self) -> &'static str;

    /// Length of every produced feature vector.
    fn dim(&self) -> usize;

    /// Encode `query` into a feature vector of length [`Featurizer::dim`].
    fn featurize(&self, query: &Query) -> Result<FeatureVec, QfeError>;

    /// Encode `query` into a caller-provided buffer of length
    /// [`Featurizer::dim`] without allocating an output vector.
    ///
    /// The batch path ([`FeatureMatrix`]) featurizes rows directly into one
    /// contiguous arena through this method. The default delegates to
    /// [`featurize`](Self::featurize) and copies; the built-in QFTs override
    /// it with in-place encoders that produce bit-identical output.
    ///
    /// On error the contents of `out` are unspecified; callers must treat
    /// the row as poisoned. Passing a buffer whose length differs from
    /// `dim()` is a caller bug and surfaces as [`QfeError::ShapeMismatch`].
    fn featurize_into(&self, query: &Query, out: &mut [f32]) -> Result<(), QfeError> {
        check_out_len(self.dim(), out.len())?;
        let v = self.featurize(query)?;
        out.copy_from_slice(&v.0);
        Ok(())
    }

    /// Encode `query` and quantize it to `u16` bin ids in one pass: the
    /// compiled-inference entry point ([`BinnedFeatureMatrix`] builds its
    /// arena through this).
    ///
    /// `scratch` receives the intermediate `f32` features (caller-owned so
    /// batch loops reuse one buffer); `out` receives one bin id per
    /// feature. Both must be exactly [`dim`](Self::dim) long, and `binner`
    /// must cover the same width. The default composes
    /// [`featurize_into`](Self::featurize_into) with
    /// [`FeatureBinner::bin_row`], which is already zero-alloc; overrides
    /// must stay bit-identical to that composition.
    fn featurize_binned_into(
        &self,
        query: &Query,
        binner: &FeatureBinner,
        scratch: &mut [f32],
        out: &mut [u16],
    ) -> Result<(), QfeError> {
        check_out_len(self.dim(), out.len())?;
        check_out_len(self.dim(), binner.features())?;
        self.featurize_into(query, scratch)?;
        binner.bin_row(scratch, out);
        Ok(())
    }
}

/// Shared guard for [`Featurizer::featurize_into`] buffer lengths.
pub(crate) fn check_out_len(dim: usize, got: usize) -> Result<(), QfeError> {
    if dim != got {
        return Err(QfeError::ShapeMismatch {
            expected: dim,
            actual: got,
        });
    }
    Ok(())
}

/// Boxed featurizers are featurizers, so composite encodings
/// ([`GroupByEncoding`], [`GlobalTableEncoding`]) can wrap trait objects
/// (with or without `Send + Sync` bounds).
impl<F: Featurizer + ?Sized> Featurizer for Box<F> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn dim(&self) -> usize {
        self.as_ref().dim()
    }

    fn featurize(&self, query: &Query) -> Result<FeatureVec, QfeError> {
        self.as_ref().featurize(query)
    }

    fn featurize_into(&self, query: &Query, out: &mut [f32]) -> Result<(), QfeError> {
        self.as_ref().featurize_into(query, out)
    }

    fn featurize_binned_into(
        &self,
        query: &Query,
        binner: &FeatureBinner,
        scratch: &mut [f32],
        out: &mut [u16],
    ) -> Result<(), QfeError> {
        self.as_ref()
            .featurize_binned_into(query, binner, scratch, out)
    }
}

/// Group a query's compound predicates by attribute, conjoining multiple
/// compound predicates on the same attribute (Definition 3.3 permits one
/// compound predicate per attribute; queries built from workload generators
/// satisfy this, but user-built queries may repeat an attribute).
pub(crate) fn group_by_column(query: &Query) -> Vec<(ColumnRef, PredicateExpr)> {
    let mut grouped: Vec<(ColumnRef, Vec<PredicateExpr>)> = Vec::new();
    for cp in &query.predicates {
        match grouped.iter_mut().find(|(c, _)| *c == cp.column) {
            Some((_, exprs)) => exprs.push(cp.expr.clone()),
            None => grouped.push((cp.column, vec![cp.expr.clone()])),
        }
    }
    grouped
        .into_iter()
        .map(|(c, mut exprs)| {
            let expr = if exprs.len() == 1 {
                exprs.pop().unwrap()
            } else {
                PredicateExpr::And(exprs)
            };
            (c, expr)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, CompoundPredicate, SimplePredicate};
    use crate::schema::{ColumnId, TableId};

    #[test]
    fn feature_vec_accessors() {
        let v = FeatureVec(vec![0.0, 0.5, 1.0]);
        assert_eq!(v.dim(), 3);
        assert_eq!(v.as_slice(), &[0.0, 0.5, 1.0]);
        assert!(v.memory_bytes() >= 12);
    }

    #[test]
    fn grouping_merges_repeated_attributes() {
        let col_a = ColumnRef::new(TableId(0), ColumnId(0));
        let col_b = ColumnRef::new(TableId(0), ColumnId(1));
        let q = Query::single_table(
            TableId(0),
            vec![
                CompoundPredicate::conjunction(col_a, vec![SimplePredicate::new(CmpOp::Ge, 1)]),
                CompoundPredicate::conjunction(col_b, vec![SimplePredicate::new(CmpOp::Eq, 7)]),
                CompoundPredicate::conjunction(col_a, vec![SimplePredicate::new(CmpOp::Le, 9)]),
            ],
        );
        let grouped = group_by_column(&q);
        assert_eq!(grouped.len(), 2);
        let (c, expr) = &grouped[0];
        assert_eq!(*c, col_a);
        assert_eq!(expr.leaf_count(), 2);
    }
}
