//! Row-major feature arena for batched featurization.
//!
//! [`FeatureMatrix`] featurizes a `&[Query]` into **one** contiguous
//! `Vec<f32>` through [`Featurizer::featurize_into`], so a batch of `n`
//! queries costs a single allocation instead of `n` [`FeatureVec`]s plus a
//! row-pointer table. Each row has an error slot: a query the featurizer
//! rejects poisons only its own row (the slot records the [`QfeError`], the
//! row data is zeroed so the arena stays finite), and the batch carries on.
//!
//! The arena's shape is exactly what `qfe-ml::Matrix::from_vec` expects
//! (row-major `rows × cols`), so converting costs nothing:
//! [`FeatureMatrix::into_raw`] hands over the backing vector without
//! copying.

use crate::error::QfeError;
use crate::query::Query;

use super::Featurizer;

/// A batch of featurized queries in one contiguous row-major arena, with
/// per-row error slots.
#[derive(Debug)]
pub struct FeatureMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
    errors: Vec<Option<QfeError>>,
}

impl FeatureMatrix {
    /// Rows per parallel featurization chunk. Fixed (never derived from
    /// the thread count) so the arena is bit-identical at any
    /// `QFE_THREADS` — see the determinism contract in
    /// [`crate::parallel`]. Rows are independent, so this constant only
    /// shapes scheduling granularity, not results.
    const ROW_CHUNK: usize = 64;

    /// Featurize every query in `queries` into a fresh arena,
    /// row-parallel on the shared [`crate::parallel`] pool.
    ///
    /// Rows the featurizer rejects are zero-filled and their error is
    /// recorded in the row's error slot — the remaining rows are still
    /// usable, and the arena as a whole stays finite (zero rows are valid
    /// model input; their predictions are simply discarded by callers).
    pub fn build<F: Featurizer + ?Sized>(featurizer: &F, queries: &[Query]) -> Self {
        let cols = featurizer.dim();
        let rows = queries.len();
        let mut data = vec![0.0f32; rows * cols];
        // A zero-dim featurizer yields an empty arena but must still
        // visit every row so the error slots line up.
        if cols == 0 {
            let errors = queries
                .iter()
                .map(|query| featurizer.featurize_into(query, &mut []).err())
                .collect();
            return FeatureMatrix {
                rows,
                cols,
                data,
                errors,
            };
        }
        let featurize_rows = |queries: &[Query], arena: &mut [f32]| {
            queries
                .iter()
                .zip(arena.chunks_exact_mut(cols))
                .map(|(query, out)| match featurizer.featurize_into(query, out) {
                    Ok(()) => None,
                    Err(e) => {
                        out.fill(0.0);
                        Some(e)
                    }
                })
                .collect::<Vec<Option<QfeError>>>()
        };
        let errors = if rows <= Self::ROW_CHUNK {
            featurize_rows(queries, &mut data)
        } else {
            let pool = crate::parallel::current();
            let chunks: Vec<(&[Query], &mut [f32])> = queries
                .chunks(Self::ROW_CHUNK)
                .zip(data.chunks_mut(Self::ROW_CHUNK * cols))
                .collect();
            let featurize_rows = &featurize_rows;
            pool.scoped(
                chunks
                    .into_iter()
                    .map(|(qs, arena)| move || featurize_rows(qs, arena))
                    .collect(),
            )
            .into_iter()
            .flatten()
            .collect()
        };
        FeatureMatrix {
            rows,
            cols,
            data,
            errors,
        }
    }

    /// Number of rows (== number of queries passed to [`build`](Self::build)).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Feature dimension (== the featurizer's `dim()`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The `r`-th feature row. Zero-filled if the row errored.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The error recorded for row `r`, if featurization rejected it.
    pub fn row_error(&self, r: usize) -> Option<&QfeError> {
        self.errors[r].as_ref()
    }

    /// Number of rows that featurized successfully.
    pub fn ok_rows(&self) -> usize {
        self.errors.iter().filter(|e| e.is_none()).count()
    }

    /// The whole arena as one row-major slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Decompose into `(rows, cols, arena, per-row errors)` without copying.
    ///
    /// The arena vector has length `rows * cols` and is laid out row-major —
    /// exactly the contract of `qfe-ml::Matrix::from_vec`.
    pub fn into_raw(self) -> (usize, usize, Vec<f32>, Vec<Option<QfeError>>) {
        (self.rows, self.cols, self.data, self.errors)
    }

    /// Approximate in-memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.data.len() * std::mem::size_of::<f32>()
            + self.errors.len() * std::mem::size_of::<Option<QfeError>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::FeatureVec;
    use crate::schema::TableId;

    /// Featurizer that rejects queries with an odd number of predicates.
    struct Picky;

    impl Featurizer for Picky {
        fn name(&self) -> &'static str {
            "picky"
        }

        fn dim(&self) -> usize {
            2
        }

        fn featurize(&self, query: &Query) -> Result<FeatureVec, QfeError> {
            if query.predicates.len() % 2 == 1 {
                return Err(QfeError::UnsupportedQuery("odd".into()));
            }
            let n = query.predicates.len() as f32;
            Ok(FeatureVec(vec![n, n + 0.5]))
        }
    }

    fn q(n_preds: usize) -> Query {
        use crate::predicate::{CmpOp, CompoundPredicate, SimplePredicate};
        use crate::query::ColumnRef;
        use crate::schema::ColumnId;
        let preds = (0..n_preds)
            .map(|i| {
                CompoundPredicate::conjunction(
                    ColumnRef::new(TableId(0), ColumnId(i)),
                    vec![SimplePredicate::new(CmpOp::Eq, 1)],
                )
            })
            .collect();
        Query::single_table(TableId(0), preds)
    }

    #[test]
    fn arena_is_contiguous_and_rows_match_featurize() {
        let f = Picky;
        let queries = [q(0), q(2), q(4)];
        let m = FeatureMatrix::build(&f, &queries);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        assert_eq!(m.ok_rows(), 3);
        assert_eq!(m.as_slice().len(), 6);
        for (i, query) in queries.iter().enumerate() {
            assert_eq!(m.row(i), f.featurize(query).unwrap().as_slice());
            assert!(m.row_error(i).is_none());
        }
    }

    #[test]
    fn failed_rows_are_zeroed_and_carry_their_error() {
        let m = FeatureMatrix::build(&Picky, &[q(2), q(1), q(0)]);
        assert_eq!(m.ok_rows(), 2);
        assert!(m.row_error(0).is_none());
        assert!(matches!(
            m.row_error(1),
            Some(QfeError::UnsupportedQuery(_))
        ));
        assert_eq!(m.row(1), &[0.0, 0.0]);
        assert!(m.row_error(2).is_none());
    }

    #[test]
    fn into_raw_is_the_whole_arena() {
        let m = FeatureMatrix::build(&Picky, &[q(0), q(2)]);
        let (rows, cols, data, errors) = m.into_raw();
        assert_eq!((rows, cols), (2, 2));
        assert_eq!(data.len(), 4);
        assert_eq!(errors, vec![None, None]);
    }

    #[test]
    fn empty_batch_yields_empty_arena() {
        let m = FeatureMatrix::build(&Picky, &[]);
        assert_eq!((m.rows(), m.cols()), (0, 2));
        assert!(m.as_slice().is_empty());
        assert_eq!(m.ok_rows(), 0);
        assert!(m.memory_bytes() >= std::mem::size_of::<FeatureMatrix>());
    }
}
