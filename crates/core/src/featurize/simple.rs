//! Singular Predicate Encoding (Section 2.1.1) — the established baseline.
//!
//! For a table with `m` attributes the feature vector has `4·m` entries:
//! per attribute a 3-bit operator encoding over `{=, >, <}` plus the
//! normalized literal. Compound operators set two bits (`>=` sets `=` and
//! `>`; `<>` sets `>` and `<`).
//!
//! The encoding can represent **at most one predicate per attribute**: for
//! a query with `k > 1` predicates on some attribute, the information about
//! `k−1` of them is lost — the paper uses exactly this to show the encoding
//! violates the lossless property (Definition 3.1). Our implementation
//! keeps the *first* predicate per attribute, which matches the behaviour
//! of the prior-work pipelines the paper benchmarks against. Disjunctions
//! cannot be represented at all and are rejected.

use crate::error::QfeError;
use crate::featurize::space::AttributeSpace;
use crate::featurize::{group_by_column, FeatureVec, Featurizer};
use crate::predicate::{CmpOp, SimplePredicate};
use crate::query::Query;

/// The `simple` QFT: one `(op-bits, literal)` slot per attribute.
#[derive(Debug, Clone)]
pub struct SingularPredicateEncoding {
    space: AttributeSpace,
}

/// Entries per attribute: 3 operator bits + 1 normalized literal.
const SLOT: usize = 4;

impl SingularPredicateEncoding {
    /// Build over the given attribute space.
    pub fn new(space: AttributeSpace) -> Self {
        SingularPredicateEncoding { space }
    }

    /// The attribute space this encoder is defined over.
    pub fn space(&self) -> &AttributeSpace {
        &self.space
    }

    /// Operator bits over `{=, >, <}`; compound operators set two bits.
    fn op_bits(op: CmpOp) -> [f32; 3] {
        match op {
            CmpOp::Eq => [1.0, 0.0, 0.0],
            CmpOp::Gt => [0.0, 1.0, 0.0],
            CmpOp::Lt => [0.0, 0.0, 1.0],
            CmpOp::Ge => [1.0, 1.0, 0.0],
            CmpOp::Le => [1.0, 0.0, 1.0],
            CmpOp::Ne => [0.0, 1.0, 1.0],
        }
    }

    /// Encoding core shared by the allocating and in-place paths: fills
    /// `out` (length `dim()`) in place without allocating the output.
    fn encode_into(&self, query: &Query, out: &mut [f32]) -> Result<(), QfeError> {
        out.fill(0.0);
        for (col, expr) in group_by_column(query) {
            let Some(pos) = self.space.position(col) else {
                return Err(QfeError::InvalidQuery(format!(
                    "predicate on attribute outside the featurizer's space: table {} column {}",
                    col.table.0, col.column.0
                )));
            };
            if !expr.is_conjunctive() {
                return Err(QfeError::UnsupportedQuery(
                    "Singular Predicate Encoding cannot featurize disjunctions".into(),
                ));
            }
            let preds: Vec<SimplePredicate> = expr.to_dnf()?.into_iter().next().unwrap_or_default();
            // Only one predicate fits the slot; additional predicates on
            // the same attribute are dropped (information loss, Section 3).
            let Some(first) = preds.first() else {
                continue;
            };
            let value = first.value.as_f64().ok_or_else(|| {
                QfeError::InvalidLiteral(format!(
                    "literal {} must be dictionary-encoded before featurization",
                    first.value
                ))
            })?;
            let domain = self.space.domain(pos);
            let slot = &mut out[pos * SLOT..(pos + 1) * SLOT];
            slot[..3].copy_from_slice(&Self::op_bits(first.op));
            slot[3] = domain.normalize(value) as f32;
        }
        Ok(())
    }
}

impl Featurizer for SingularPredicateEncoding {
    fn name(&self) -> &'static str {
        "simple"
    }

    fn dim(&self) -> usize {
        self.space.len() * SLOT
    }

    fn featurize(&self, query: &Query) -> Result<FeatureVec, QfeError> {
        let mut out = vec![0.0f32; self.dim()];
        self.encode_into(query, &mut out)?;
        Ok(FeatureVec(out))
    }

    fn featurize_into(&self, query: &Query, out: &mut [f32]) -> Result<(), QfeError> {
        crate::featurize::check_out_len(self.dim(), out.len())?;
        self.encode_into(query, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompoundPredicate, PredicateExpr};
    use crate::query::ColumnRef;
    use crate::schema::{AttributeDomain, ColumnId, TableId};

    fn space() -> AttributeSpace {
        AttributeSpace::new(vec![
            (
                ColumnRef::new(TableId(0), ColumnId(0)),
                AttributeDomain::integers(0, 100),
            ),
            (
                ColumnRef::new(TableId(0), ColumnId(1)),
                AttributeDomain::integers(0, 100),
            ),
            (
                ColumnRef::new(TableId(0), ColumnId(2)),
                AttributeDomain::integers(0, 100),
            ),
        ])
    }

    fn col(i: usize) -> ColumnRef {
        ColumnRef::new(TableId(0), ColumnId(i))
    }

    /// Section 2.1.1 example: `A > 5 AND B = 7` on a 3-attribute table.
    #[test]
    fn paper_example_layout() {
        let enc = SingularPredicateEncoding::new(space());
        let q = Query::single_table(
            TableId(0),
            vec![
                CompoundPredicate::conjunction(col(0), vec![SimplePredicate::new(CmpOp::Gt, 5)]),
                CompoundPredicate::conjunction(col(1), vec![SimplePredicate::new(CmpOp::Eq, 7)]),
            ],
        );
        let f = enc.featurize(&q).unwrap();
        assert_eq!(f.dim(), 12);
        // A: op bits (=, >, <) = 0 1 0, literal 0.05.
        assert_eq!(&f.0[..3], &[0.0, 1.0, 0.0]);
        assert!((f.0[3] - 0.05).abs() < 1e-6);
        // B: op bits 1 0 0, literal 0.07.
        assert_eq!(&f.0[4..7], &[1.0, 0.0, 0.0]);
        assert!((f.0[7] - 0.07).abs() < 1e-6);
        // Third attribute: all zero (no predicate).
        assert_eq!(&f.0[8..], &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn compound_operators_set_two_bits() {
        assert_eq!(
            SingularPredicateEncoding::op_bits(CmpOp::Ge),
            [1.0, 1.0, 0.0]
        );
        assert_eq!(
            SingularPredicateEncoding::op_bits(CmpOp::Le),
            [1.0, 0.0, 1.0]
        );
        assert_eq!(
            SingularPredicateEncoding::op_bits(CmpOp::Ne),
            [0.0, 1.0, 1.0]
        );
    }

    #[test]
    fn information_loss_with_multiple_predicates_per_attribute() {
        // Two different queries — a tight range and its lower bound only —
        // featurize identically: the encoding is not lossless (Section 3).
        let enc = SingularPredicateEncoding::new(space());
        let tight = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(0),
                vec![
                    SimplePredicate::new(CmpOp::Ge, 10),
                    SimplePredicate::new(CmpOp::Le, 12),
                ],
            )],
        );
        let loose = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(0),
                vec![SimplePredicate::new(CmpOp::Ge, 10)],
            )],
        );
        assert_eq!(
            enc.featurize(&tight).unwrap(),
            enc.featurize(&loose).unwrap()
        );
    }

    #[test]
    fn disjunctions_are_rejected() {
        let enc = SingularPredicateEncoding::new(space());
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate {
                column: col(0),
                expr: PredicateExpr::Or(vec![
                    PredicateExpr::leaf(CmpOp::Eq, 1),
                    PredicateExpr::leaf(CmpOp::Eq, 2),
                ]),
            }],
        );
        assert!(matches!(
            enc.featurize(&q),
            Err(QfeError::UnsupportedQuery(_))
        ));
    }

    #[test]
    fn empty_query_is_all_zero() {
        let enc = SingularPredicateEncoding::new(space());
        let f = enc
            .featurize(&Query::single_table(TableId(0), vec![]))
            .unwrap();
        assert!(f.0.iter().all(|&e| e == 0.0));
    }
}
