//! GROUP BY featurization (Section 6 of the paper).
//!
//! "Suppose a binary vector with as many entries as attributes in the
//! table under consideration … this vector exactly describes the GROUP BY
//! clause by setting the entry of each of the grouping attributes to 1.
//! For instance, for attributes A1 … A5, `01010` corresponds to
//! GROUP BY A2, A4." The vector is appended to any QFT's feature vector,
//! so grouped-query cardinality estimation (the number of result groups)
//! reuses the whole featurization stack.

use crate::error::QfeError;
use crate::featurize::space::AttributeSpace;
use crate::featurize::{FeatureVec, Featurizer};
use crate::query::{ColumnRef, Query};

/// A count query with a GROUP BY clause; its result cardinality is the
/// number of distinct groups among qualifying rows.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedQuery {
    /// The underlying selection/join query.
    pub query: Query,
    /// Grouping attributes (empty means no grouping: one result row).
    pub group_by: Vec<ColumnRef>,
}

impl GroupedQuery {
    /// Wrap a query with grouping attributes.
    pub fn new(query: Query, group_by: Vec<ColumnRef>) -> Self {
        GroupedQuery { query, group_by }
    }
}

/// Wraps any featurizer and appends the binary GROUP BY vector over the
/// same attribute space.
#[derive(Debug, Clone)]
pub struct GroupByEncoding<F> {
    inner: F,
    space: AttributeSpace,
}

impl<F: Featurizer> GroupByEncoding<F> {
    /// Wrap `inner`; `space` must be the attribute space the grouping
    /// attributes come from (usually the same space as `inner`'s).
    pub fn new(inner: F, space: AttributeSpace) -> Self {
        GroupByEncoding { inner, space }
    }

    /// Total feature dimension.
    pub fn dim(&self) -> usize {
        self.inner.dim() + self.space.len()
    }

    /// Featurize a grouped query: the inner featurization of the selection
    /// part followed by the binary grouping vector.
    pub fn featurize(&self, grouped: &GroupedQuery) -> Result<FeatureVec, QfeError> {
        let mut vec = self.inner.featurize(&grouped.query)?.0;
        let mut bits = vec![0.0f32; self.space.len()];
        for col in &grouped.group_by {
            let pos = self.space.position(*col).ok_or_else(|| {
                QfeError::InvalidQuery(format!(
                    "grouping attribute outside the featurizer's space: table {} column {}",
                    col.table.0, col.column.0
                ))
            })?;
            bits[pos] = 1.0;
        }
        vec.extend_from_slice(&bits);
        Ok(FeatureVec(vec))
    }

    /// The wrapped featurizer.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::RangePredicateEncoding;
    use crate::predicate::{CmpOp, CompoundPredicate, SimplePredicate};
    use crate::schema::{AttributeDomain, ColumnId, TableId};

    fn space() -> AttributeSpace {
        AttributeSpace::new(vec![
            (
                ColumnRef::new(TableId(0), ColumnId(0)),
                AttributeDomain::integers(0, 99),
            ),
            (
                ColumnRef::new(TableId(0), ColumnId(1)),
                AttributeDomain::integers(0, 9),
            ),
            (
                ColumnRef::new(TableId(0), ColumnId(2)),
                AttributeDomain::integers(0, 4),
            ),
        ])
    }

    fn col(i: usize) -> ColumnRef {
        ColumnRef::new(TableId(0), ColumnId(i))
    }

    #[test]
    fn paper_example_binary_vector() {
        // GROUP BY A2 (index 1) over three attributes → bits 0 1 0.
        let enc = GroupByEncoding::new(RangePredicateEncoding::new(space()), space());
        let grouped = GroupedQuery::new(Query::single_table(TableId(0), vec![]), vec![col(1)]);
        let f = enc.featurize(&grouped).unwrap();
        assert_eq!(f.dim(), enc.dim());
        assert_eq!(&f.0[f.dim() - 3..], &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn multiple_grouping_attributes() {
        let enc = GroupByEncoding::new(RangePredicateEncoding::new(space()), space());
        let grouped = GroupedQuery::new(
            Query::single_table(TableId(0), vec![]),
            vec![col(0), col(2)],
        );
        let f = enc.featurize(&grouped).unwrap();
        assert_eq!(&f.0[f.dim() - 3..], &[1.0, 0.0, 1.0]);
    }

    #[test]
    fn selection_part_is_preserved() {
        let enc = GroupByEncoding::new(RangePredicateEncoding::new(space()), space());
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                col(0),
                vec![SimplePredicate::new(CmpOp::Le, 49)],
            )],
        );
        let inner_f = enc.inner().featurize(&q).unwrap();
        let grouped = GroupedQuery::new(q, vec![col(1)]);
        let f = enc.featurize(&grouped).unwrap();
        assert_eq!(&f.0[..inner_f.dim()], inner_f.as_slice());
    }

    #[test]
    fn no_grouping_is_all_zero_bits() {
        let enc = GroupByEncoding::new(RangePredicateEncoding::new(space()), space());
        let grouped = GroupedQuery::new(Query::single_table(TableId(0), vec![]), vec![]);
        let f = enc.featurize(&grouped).unwrap();
        assert_eq!(&f.0[f.dim() - 3..], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn unknown_grouping_attribute_rejected() {
        let enc = GroupByEncoding::new(RangePredicateEncoding::new(space()), space());
        let grouped = GroupedQuery::new(
            Query::single_table(TableId(0), vec![]),
            vec![ColumnRef::new(TableId(3), ColumnId(0))],
        );
        assert!(matches!(
            enc.featurize(&grouped),
            Err(QfeError::InvalidQuery(_))
        ));
    }
}
