//! The estimator abstraction shared by the whole workspace.
//!
//! Lives in `qfe-core` so that both the execution engine (whose cost-based
//! optimizer consumes estimates) and the estimator implementations (which
//! need the executor for training labels) can depend on it without a cycle.

use crate::error::EstimateError;
use crate::query::Query;

/// A cardinality estimate together with its provenance.
///
/// Provenance matters in a fault-tolerant pipeline: when estimators are
/// composed into fallback chains, experiment reports must attribute each
/// estimate to the stage that actually produced it (a learned model that
/// silently degrades to a histogram would otherwise corrupt per-estimator
/// q-error statistics).
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// The estimated cardinality — always finite and `>= 1`.
    pub value: f64,
    /// `name()` of the estimator that produced the value.
    pub estimator: String,
    /// How many fallback stages were exhausted before this estimate:
    /// `0` means the primary estimator answered.
    pub fallback_depth: usize,
}

impl Estimate {
    /// An estimate produced by the primary (depth-0) estimator.
    pub fn primary(value: f64, estimator: impl Into<String>) -> Self {
        Estimate {
            value,
            estimator: estimator.into(),
            fallback_depth: 0,
        }
    }

    /// True if any fallback stage fired to produce this estimate.
    pub fn fell_back(&self) -> bool {
        self.fallback_depth > 0
    }
}

/// A cardinality estimator: maps a count query to an estimated result
/// cardinality.
///
/// Estimates are clamped to `>= 1` by convention (the paper's evaluation
/// protocol; also keeps the q-error defined).
pub trait CardinalityEstimator {
    /// Short label used in experiment output (`postgres`, `sampling`,
    /// `GB + conj`, …).
    fn name(&self) -> String;

    /// Estimate the result cardinality of `query`.
    fn estimate(&self, query: &Query) -> f64;

    /// Fallible estimation with provenance.
    ///
    /// Where [`estimate`](Self::estimate) must always produce *some*
    /// number, `try_estimate` surfaces failure as a typed
    /// [`EstimateError`] so callers (fallback chains, experiment
    /// harnesses) can react per failure class. Implementations should
    /// override this when they can classify their own failures; the
    /// default delegates to `estimate` and converts protocol violations
    /// (non-finite or `< 1` values) into [`EstimateError::NonFinite`].
    ///
    /// Contract: an `Ok` result always carries a finite value `>= 1`.
    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        let value = self.estimate(query);
        if !value.is_finite() || value < 1.0 {
            return Err(EstimateError::NonFinite {
                estimator: self.name(),
                value,
            });
        }
        Ok(Estimate::primary(value, self.name()))
    }

    /// Estimate a batch of queries in one call.
    ///
    /// The result has exactly one entry per input query, in input order;
    /// each entry upholds the [`try_estimate`](Self::try_estimate)
    /// contract (an `Ok` carries a finite value `>= 1`). Failures are
    /// per-row: one rejected query never poisons its batch-mates.
    ///
    /// The default loops over `try_estimate`. Estimators with a cheaper
    /// amortized path (shared featurization arena, one model forward pass)
    /// override this; overrides must stay row-for-row equivalent to the
    /// singleton path — batching is a throughput optimization, never a
    /// semantic change.
    fn estimate_batch(&self, queries: &[Query]) -> Vec<Result<Estimate, EstimateError>> {
        queries.iter().map(|q| self.try_estimate(q)).collect()
    }

    /// Approximate memory footprint of the estimator state in bytes
    /// (Section 5.7 compares estimator sizes).
    fn memory_bytes(&self) -> usize {
        0
    }

    /// Serialize the estimator's trained state into an opaque,
    /// self-validating byte snapshot a checkpoint store can persist.
    ///
    /// `None` means this estimator has no durable form — statistics-only
    /// estimators (histogram, sampling) rebuild from data, and untrained
    /// learned estimators have nothing worth keeping. Persistence layers
    /// treat `None` as "skip and count", never as an error. The byte
    /// format is owned by the implementing estimator; the only contract
    /// is that the estimator's own restore path accepts exactly these
    /// bytes and rejects any corruption of them with a typed error.
    fn snapshot_bytes(&self) -> Option<Vec<u8>> {
        None
    }
}

/// A monotone generation counter identifying *which* model produced the
/// estimates an estimate consumer may have cached.
///
/// Hot-swappable model holders (the serving layer's `ModelSlot`) bump
/// their generation on every accepted swap; cross-call estimate caches
/// capture the generation at fill time and drop every entry when it no
/// longer matches, so a model swap atomically invalidates stale
/// estimates. Lives in `qfe-core` for the same reason as
/// [`CardinalityEstimator`]: the execution engine (cache owner) and the
/// serving layer (generation producer) must share it without a
/// dependency cycle.
pub trait GenerationSource: Send + Sync {
    /// The current model generation. Must never decrease; any change
    /// means previously produced estimates may be stale.
    fn generation(&self) -> u64;
}

/// A fixed generation — for estimators that never change underneath the
/// cache (the cross-call scope then never invalidates).
impl GenerationSource for u64 {
    fn generation(&self) -> u64 {
        *self
    }
}

/// Blanket implementation for references.
impl<T: CardinalityEstimator + ?Sized> CardinalityEstimator for &T {
    fn name(&self) -> String {
        (**self).name()
    }

    fn estimate(&self, query: &Query) -> f64 {
        (**self).estimate(query)
    }

    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        (**self).try_estimate(query)
    }

    fn estimate_batch(&self, queries: &[Query]) -> Vec<Result<Estimate, EstimateError>> {
        (**self).estimate_batch(queries)
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }

    fn snapshot_bytes(&self) -> Option<Vec<u8>> {
        (**self).snapshot_bytes()
    }
}

/// Blanket implementation for boxed estimators, so fallback chains can own
/// heterogeneous stages as `Box<dyn CardinalityEstimator>`.
impl<T: CardinalityEstimator + ?Sized> CardinalityEstimator for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn estimate(&self, query: &Query) -> f64 {
        (**self).estimate(query)
    }

    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        (**self).try_estimate(query)
    }

    fn estimate_batch(&self, queries: &[Query]) -> Vec<Result<Estimate, EstimateError>> {
        (**self).estimate_batch(queries)
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }

    fn snapshot_bytes(&self) -> Option<Vec<u8>> {
        (**self).snapshot_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableId;

    struct Constant(f64);

    impl CardinalityEstimator for Constant {
        fn name(&self) -> String {
            "constant".into()
        }

        fn estimate(&self, _query: &Query) -> f64 {
            self.0
        }
    }

    #[test]
    fn trait_object_and_reference_impls() {
        let c = Constant(42.0);
        let q = Query::single_table(TableId(0), vec![]);
        assert_eq!(c.estimate(&q), 42.0);
        let by_ref: &dyn CardinalityEstimator = &c;
        assert_eq!(by_ref.estimate(&q), 42.0);
        assert_eq!(by_ref.name(), "constant");
        assert_eq!(by_ref.memory_bytes(), 0);
        // Reference blanket impl.
        fn takes_estimator(e: impl CardinalityEstimator) -> f64 {
            e.estimate(&Query::single_table(TableId(0), vec![]))
        }
        assert_eq!(takes_estimator(&c), 42.0);
    }

    #[test]
    fn default_try_estimate_validates_output() {
        let q = Query::single_table(TableId(0), vec![]);
        let ok = Constant(42.0).try_estimate(&q).unwrap();
        assert_eq!(ok.value, 42.0);
        assert_eq!(ok.estimator, "constant");
        assert_eq!(ok.fallback_depth, 0);
        assert!(!ok.fell_back());

        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.5, -3.0] {
            let err = Constant(bad).try_estimate(&q).unwrap_err();
            assert!(
                matches!(err, crate::error::EstimateError::NonFinite { .. }),
                "{bad} should be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn default_estimate_batch_is_map_of_try_estimate() {
        let q = Query::single_table(TableId(0), vec![]);
        let c = Constant(9.0);
        let batch = c.estimate_batch(&[q.clone(), q.clone(), q.clone()]);
        assert_eq!(batch.len(), 3);
        for (got, want) in batch.iter().zip(std::iter::repeat(c.try_estimate(&q))) {
            assert_eq!(*got, want);
        }
        assert!(c.estimate_batch(&[]).is_empty());
        // Per-row failures do not poison the batch result shape.
        let bad = Constant(f64::NAN).estimate_batch(&[q.clone(), q]);
        assert_eq!(bad.len(), 2);
        assert!(bad.iter().all(Result::is_err));
    }

    #[test]
    fn boxed_estimator_forwards() {
        let q = Query::single_table(TableId(0), vec![]);
        let boxed: Box<dyn CardinalityEstimator> = Box::new(Constant(7.0));
        assert_eq!(boxed.estimate(&q), 7.0);
        assert_eq!(boxed.try_estimate(&q).unwrap().value, 7.0);
        assert_eq!(boxed.name(), "constant");
    }
}
