//! The estimator abstraction shared by the whole workspace.
//!
//! Lives in `qfe-core` so that both the execution engine (whose cost-based
//! optimizer consumes estimates) and the estimator implementations (which
//! need the executor for training labels) can depend on it without a cycle.

use crate::query::Query;

/// A cardinality estimator: maps a count query to an estimated result
/// cardinality.
///
/// Estimates are clamped to `>= 1` by convention (the paper's evaluation
/// protocol; also keeps the q-error defined).
pub trait CardinalityEstimator {
    /// Short label used in experiment output (`postgres`, `sampling`,
    /// `GB + conj`, …).
    fn name(&self) -> String;

    /// Estimate the result cardinality of `query`.
    fn estimate(&self, query: &Query) -> f64;

    /// Approximate memory footprint of the estimator state in bytes
    /// (Section 5.7 compares estimator sizes).
    fn memory_bytes(&self) -> usize {
        0
    }
}

/// Blanket implementation for references.
impl<T: CardinalityEstimator + ?Sized> CardinalityEstimator for &T {
    fn name(&self) -> String {
        (**self).name()
    }

    fn estimate(&self, query: &Query) -> f64 {
        (**self).estimate(query)
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableId;

    struct Constant(f64);

    impl CardinalityEstimator for Constant {
        fn name(&self) -> String {
            "constant".into()
        }

        fn estimate(&self, _query: &Query) -> f64 {
            self.0
        }
    }

    #[test]
    fn trait_object_and_reference_impls() {
        let c = Constant(42.0);
        let q = Query::single_table(TableId(0), vec![]);
        assert_eq!(c.estimate(&q), 42.0);
        let by_ref: &dyn CardinalityEstimator = &c;
        assert_eq!(by_ref.estimate(&q), 42.0);
        assert_eq!(by_ref.name(), "constant");
        assert_eq!(by_ref.memory_bytes(), 0);
        // Reference blanket impl.
        fn takes_estimator(e: impl CardinalityEstimator) -> f64 {
            e.estimate(&Query::single_table(TableId(0), vec![]))
        }
        assert_eq!(takes_estimator(&c), 42.0);
    }
}
