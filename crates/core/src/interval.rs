//! Exact per-attribute qualifying regions.
//!
//! Every conjunction of simple predicates over one attribute reduces to a
//! closed interval `[lo, hi]` minus a finite set of excluded points (from
//! `<>` predicates) — this is the observation behind Range Predicate
//! Encoding (Section 3.1). A compound predicate (Definition 3.3) therefore
//! reduces to a *union* of such regions.
//!
//! [`Region`] and [`RegionSet`] give exact membership tests and exact
//! uniformity-assumption selectivities. They are used for
//!
//! * the per-attribute selectivity entries appended by Algorithm 1 (the
//!   "gray" entries of Section 3.2),
//! * the disjunction-aware selectivity entries of Limited Disjunction
//!   Encoding,
//! * empirical verification of the lossless property (Definition 3.1 and
//!   Lemma 3.2) in [`crate::featurize::lossless`].

use crate::predicate::{CmpOp, SimplePredicate};
use crate::schema::AttributeDomain;

/// A closed interval `[lo, hi]` minus finitely many excluded points, over
/// one attribute's domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
    /// Points excluded by `<>` predicates (only those inside `[lo, hi]`
    /// matter).
    pub nots: Vec<f64>,
}

impl Region {
    /// The full-domain region (no predicate).
    pub fn full(domain: &AttributeDomain) -> Self {
        Region {
            lo: domain.min,
            hi: domain.max,
            nots: Vec::new(),
        }
    }

    /// Fold a conjunction of simple predicates into a region, exactly as
    /// Section 3.1 prescribes: every point/range predicate becomes a closed
    /// range (using the domain step to close open bounds), `<>` predicates
    /// are collected as excluded points.
    ///
    /// Predicates with non-numeric literals yield an empty region (they can
    /// never match after dictionary encoding, which is enforced upstream).
    pub fn from_conjunct<'a, I>(preds: I, domain: &AttributeDomain) -> Self
    where
        I: IntoIterator<Item = &'a SimplePredicate>,
    {
        let mut region = Region::full(domain);
        let step = domain.step();
        for p in preds {
            let Some(v) = p.value.as_f64() else {
                return Region::empty();
            };
            match p.op {
                CmpOp::Eq => {
                    region.lo = region.lo.max(v);
                    region.hi = region.hi.min(v);
                }
                CmpOp::Ge => region.lo = region.lo.max(v),
                CmpOp::Gt => region.lo = region.lo.max(v + step),
                CmpOp::Le => region.hi = region.hi.min(v),
                CmpOp::Lt => region.hi = region.hi.min(v - step),
                CmpOp::Ne => region.nots.push(v),
            }
        }
        region.nots.retain(|&v| v >= region.lo && v <= region.hi);
        region.nots.sort_by(f64::total_cmp);
        region.nots.dedup();
        region
    }

    /// A region containing no values.
    pub fn empty() -> Self {
        Region {
            lo: 1.0,
            hi: 0.0,
            nots: Vec::new(),
        }
    }

    /// True if the interval is empty.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Exact membership test.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi && !self.nots.contains(&v)
    }

    /// Measure of the region with respect to the domain: number of integers
    /// for integral domains (minus excluded points), interval length for
    /// real domains (excluded points have measure zero).
    pub fn measure(&self, domain: &AttributeDomain) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        if domain.integral {
            let lo = self.lo.ceil();
            let hi = self.hi.floor();
            if lo > hi {
                return 0.0;
            }
            let count = hi - lo + 1.0;
            let excluded = self
                .nots
                .iter()
                .filter(|&&n| n >= lo && n <= hi && n.fract() == 0.0)
                .count() as f64;
            (count - excluded).max(0.0)
        } else {
            self.hi - self.lo
        }
    }

    /// Selectivity of this region alone — **bit-identical** to
    /// `RegionSet::new(vec![self.clone()]).selectivity(domain)` without
    /// building the set. This is the hot per-attribute path of Algorithm 1
    /// (one region per attribute), where the set machinery's allocations
    /// dominated featurization.
    ///
    /// Precondition inherited from [`Region::from_conjunct`]: `nots` is
    /// sorted, deduplicated, and confined to `[lo, hi]` — exactly the
    /// state the set path's candidate filtering re-establishes, so every
    /// retained point subtracts one from the measure. Note the set path
    /// applies *no* integrality filter to the excluded points (unlike
    /// [`Region::measure`]); this replica must not either.
    pub fn selectivity(&self, domain: &AttributeDomain) -> f64 {
        let total = if domain.integral {
            domain.max - domain.min + 1.0
        } else {
            domain.max - domain.min
        };
        if total <= 0.0 {
            // Single-value domain: selectivity is 1 if that value qualifies.
            return if self.contains(domain.min) { 1.0 } else { 0.0 };
        }
        let mut measure = if self.is_empty() {
            0.0
        } else {
            Region {
                lo: self.lo,
                hi: self.hi,
                nots: Vec::new(),
            }
            .measure(domain)
        };
        if domain.integral && !self.is_empty() {
            debug_assert!(self.nots.iter().all(|&v| v >= self.lo && v <= self.hi));
            // Subtract sequentially, 1.0 at a time, to keep the float
            // arithmetic identical to `RegionSet::measure`'s loop.
            for _ in &self.nots {
                measure -= 1.0;
            }
        }
        measure = measure.max(0.0);
        (measure / total).clamp(0.0, 1.0)
    }
}

/// A union of [`Region`]s — the exact qualifying set of a compound
/// predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSet {
    regions: Vec<Region>,
}

impl RegionSet {
    /// Union of the given regions.
    pub fn new(regions: Vec<Region>) -> Self {
        RegionSet { regions }
    }

    /// The regions forming the union.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// A value qualifies if at least one region contains it.
    pub fn contains(&self, v: f64) -> bool {
        self.regions.iter().any(|r| r.contains(v))
    }

    /// Exact measure of the union with respect to the domain.
    ///
    /// For the interval parts we merge overlapping `[lo, hi]` ranges. A
    /// point excluded by `<>` inside some region only reduces the measure if
    /// *every* region covering it excludes it (OR semantics).
    pub fn measure(&self, domain: &AttributeDomain) -> f64 {
        let mut intervals: Vec<(f64, f64)> = self
            .regions
            .iter()
            .filter(|r| !r.is_empty())
            .map(|r| (r.lo, r.hi))
            .collect();
        if intervals.is_empty() {
            return 0.0;
        }
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(intervals.len());
        // For integral domains, intervals [a, b] and [b+1, c] are adjacent
        // and must merge; for reals only true overlap merges.
        let glue = if domain.integral { 1.0 } else { 0.0 };
        for (lo, hi) in intervals {
            match merged.last_mut() {
                Some(last) if lo <= last.1 + glue => last.1 = last.1.max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        let mut total: f64 = merged
            .iter()
            .map(|&(lo, hi)| {
                Region {
                    lo,
                    hi,
                    nots: Vec::new(),
                }
                .measure(domain)
            })
            .sum();
        if domain.integral {
            // Candidate excluded points: nots lying inside the union.
            let mut candidates: Vec<f64> = self
                .regions
                .iter()
                .flat_map(|r| r.nots.iter().copied())
                .filter(|&v| merged.iter().any(|&(lo, hi)| v >= lo && v <= hi))
                .collect();
            candidates.sort_by(f64::total_cmp);
            candidates.dedup();
            for v in candidates {
                if !self.contains(v) {
                    total -= 1.0;
                }
            }
        }
        total.max(0.0)
    }

    /// Measure divided by the domain's total measure — the exact
    /// uniformity-assumption selectivity of the compound predicate.
    pub fn selectivity(&self, domain: &AttributeDomain) -> f64 {
        let total = if domain.integral {
            domain.max - domain.min + 1.0
        } else {
            domain.max - domain.min
        };
        if total <= 0.0 {
            // Single-value domain: selectivity is 1 if that value qualifies.
            return if self.contains(domain.min) { 1.0 } else { 0.0 };
        }
        (self.measure(domain) / total).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_domain() -> AttributeDomain {
        AttributeDomain::integers(0, 99)
    }

    fn pred(op: CmpOp, v: i64) -> SimplePredicate {
        SimplePredicate::new(op, v)
    }

    #[test]
    fn full_region_covers_domain() {
        let d = int_domain();
        let r = Region::full(&d);
        assert!(r.contains(0.0));
        assert!(r.contains(99.0));
        assert_eq!(r.measure(&d), 100.0);
    }

    #[test]
    fn conjunct_folds_to_closed_range() {
        let d = int_domain();
        // 10 <= A < 20 AND A <> 15
        let r = Region::from_conjunct(
            &[
                pred(CmpOp::Ge, 10),
                pred(CmpOp::Lt, 20),
                pred(CmpOp::Ne, 15),
            ],
            &d,
        );
        assert_eq!(r.lo, 10.0);
        assert_eq!(r.hi, 19.0); // `< 20` closes to 19 on an integral domain
        assert!(r.contains(10.0));
        assert!(r.contains(19.0));
        assert!(!r.contains(15.0));
        assert!(!r.contains(20.0));
        assert_eq!(r.measure(&d), 9.0); // 10..=19 minus the excluded 15
    }

    #[test]
    fn equality_pins_both_bounds() {
        let d = int_domain();
        let r = Region::from_conjunct(&[pred(CmpOp::Eq, 42)], &d);
        assert_eq!((r.lo, r.hi), (42.0, 42.0));
        assert_eq!(r.measure(&d), 1.0);
    }

    #[test]
    fn contradictory_conjunct_is_empty() {
        let d = int_domain();
        let r = Region::from_conjunct(&[pred(CmpOp::Gt, 50), pred(CmpOp::Lt, 10)], &d);
        assert!(r.is_empty());
        assert_eq!(r.measure(&d), 0.0);
    }

    #[test]
    fn nots_outside_range_are_dropped() {
        let d = int_domain();
        let r = Region::from_conjunct(
            &[pred(CmpOp::Le, 10), pred(CmpOp::Ne, 50), pred(CmpOp::Ne, 5)],
            &d,
        );
        assert_eq!(r.nots, vec![5.0]);
    }

    #[test]
    fn real_domain_open_bounds_use_small_step() {
        let d = AttributeDomain::reals(0.0, 100.0);
        let r = Region::from_conjunct(&[pred(CmpOp::Gt, 10), pred(CmpOp::Lt, 20)], &d);
        assert!(r.lo > 10.0 && r.lo < 10.001);
        assert!(r.hi < 20.0 && r.hi > 19.999);
        let m = r.measure(&d);
        assert!((m - 10.0).abs() < 0.01, "measure {m}");
    }

    #[test]
    fn union_measure_merges_overlaps() {
        let d = int_domain();
        let set = RegionSet::new(vec![
            Region::from_conjunct(&[pred(CmpOp::Ge, 0), pred(CmpOp::Le, 10)], &d),
            Region::from_conjunct(&[pred(CmpOp::Ge, 5), pred(CmpOp::Le, 20)], &d),
        ]);
        assert_eq!(set.measure(&d), 21.0); // 0..=20
        assert!((set.selectivity(&d) - 0.21).abs() < 1e-12);
    }

    #[test]
    fn union_merges_adjacent_integer_intervals() {
        let d = int_domain();
        let set = RegionSet::new(vec![
            Region::from_conjunct(&[pred(CmpOp::Ge, 0), pred(CmpOp::Le, 10)], &d),
            Region::from_conjunct(&[pred(CmpOp::Ge, 11), pred(CmpOp::Le, 20)], &d),
        ]);
        assert_eq!(set.measure(&d), 21.0);
    }

    #[test]
    fn not_only_excluded_if_all_covering_regions_exclude() {
        let d = int_domain();
        // (0 <= A <= 10 AND A <> 5) OR (3 <= A <= 7): 5 still qualifies.
        let set = RegionSet::new(vec![
            Region::from_conjunct(
                &[pred(CmpOp::Ge, 0), pred(CmpOp::Le, 10), pred(CmpOp::Ne, 5)],
                &d,
            ),
            Region::from_conjunct(&[pred(CmpOp::Ge, 3), pred(CmpOp::Le, 7)], &d),
        ]);
        assert!(set.contains(5.0));
        assert_eq!(set.measure(&d), 11.0);

        // Both disjuncts exclude 5 => it is excluded from the union.
        let set = RegionSet::new(vec![
            Region::from_conjunct(
                &[pred(CmpOp::Ge, 0), pred(CmpOp::Le, 10), pred(CmpOp::Ne, 5)],
                &d,
            ),
            Region::from_conjunct(
                &[pred(CmpOp::Ge, 3), pred(CmpOp::Le, 7), pred(CmpOp::Ne, 5)],
                &d,
            ),
        ]);
        assert!(!set.contains(5.0));
        assert_eq!(set.measure(&d), 10.0);
    }

    #[test]
    fn empty_set_measures_zero() {
        let d = int_domain();
        let set = RegionSet::new(vec![Region::empty()]);
        assert_eq!(set.measure(&d), 0.0);
        assert_eq!(set.selectivity(&d), 0.0);
    }

    #[test]
    fn measure_agrees_with_brute_force_membership() {
        let d = int_domain();
        let set = RegionSet::new(vec![
            Region::from_conjunct(
                &[
                    pred(CmpOp::Gt, 3),
                    pred(CmpOp::Le, 30),
                    pred(CmpOp::Ne, 7),
                    pred(CmpOp::Ne, 60),
                ],
                &d,
            ),
            Region::from_conjunct(&[pred(CmpOp::Ge, 42), pred(CmpOp::Ne, 50)], &d),
        ]);
        let brute = (0..100).filter(|&v| set.contains(v as f64)).count() as f64;
        assert_eq!(set.measure(&d), brute);
    }

    #[test]
    fn single_value_domain_selectivity() {
        let d = AttributeDomain::integers(5, 5);
        let yes = RegionSet::new(vec![Region::from_conjunct(&[pred(CmpOp::Eq, 5)], &d)]);
        assert_eq!(yes.selectivity(&d), 1.0);
        let no = RegionSet::new(vec![Region::from_conjunct(&[pred(CmpOp::Eq, 6)], &d)]);
        assert_eq!(no.selectivity(&d), 0.0);
    }
}
