//! Property tests of the conjunctive-encoding fast paths behind compiled
//! inference. Each fast path replaces a general composition and claims
//! **bit-identical** output; these tests pin that claim over arbitrary
//! workloads:
//!
//! * the fused `featurize_binned_into` override (template copy + span
//!   re-bin) against the default featurize-then-`bin_row` composition,
//! * the by-reference distinct-column encode against the merging
//!   `group_by_column` path (driven by comparing a repeated-attribute
//!   query with its premerged equivalent),
//! * `Region::selectivity` against the `RegionSet` machinery it
//!   short-circuits.

use proptest::prelude::*;
use qfe_core::featurize::{
    AttributeSpace, FeatureBinner, Featurizer, UniversalConjunctionEncoding,
};
use qfe_core::interval::{Region, RegionSet};
use qfe_core::{
    AttributeDomain, CmpOp, ColumnId, ColumnRef, CompoundPredicate, PredicateExpr, Query,
    SimplePredicate, TableId,
};

fn col(i: usize) -> ColumnRef {
    ColumnRef::new(TableId(0), ColumnId(i))
}

/// Three integral attributes of very different widths (exact-bucket mode
/// kicks in on the third when `max_buckets` exceeds its cardinality).
fn space() -> AttributeSpace {
    AttributeSpace::new(vec![
        (col(0), AttributeDomain::integers(-20, 90)),
        (col(1), AttributeDomain::integers(0, 999)),
        (col(2), AttributeDomain::integers(1, 4)),
    ])
}

fn any_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn any_leaf() -> impl Strategy<Value = PredicateExpr> {
    (any_op(), -30i64..1010).prop_map(|(op, v)| PredicateExpr::leaf(op, v))
}

/// Conjunctive expression shapes the encoder accepts: leaves, `And`
/// nests, single-child `Or` wrappers, and the unsatisfiable `Or([])`.
fn conjunctive_expr() -> impl Strategy<Value = PredicateExpr> {
    any_leaf().prop_recursive(3, 12, 4, |inner| {
        prop_oneof![
            4 => prop::collection::vec(inner.clone(), 1..4).prop_map(PredicateExpr::And),
            1 => inner.prop_map(|e| PredicateExpr::Or(vec![e])),
            1 => Just(PredicateExpr::Or(vec![])),
        ]
    })
}

/// A query over `space()`, possibly predicating the same attribute more
/// than once (repeats drive the `group_by_column` slow path).
fn any_query() -> impl Strategy<Value = Query> {
    prop::collection::vec((0usize..3, conjunctive_expr()), 0..5).prop_map(|preds| {
        Query::single_table(
            TableId(0),
            preds
                .into_iter()
                .map(|(c, expr)| CompoundPredicate {
                    column: col(c),
                    expr,
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fused featurize-and-bin override must produce exactly the bins
    /// of the default composition (full `f32` row, then `bin_row`) — and
    /// agree on which queries error.
    #[test]
    fn fused_binned_path_matches_encode_then_bin(
        query in any_query(),
        buckets in 2usize..24,
        attr_sel in prop_oneof![Just(true), Just(false)],
        seed in 0u64..u64::MAX,
    ) {
        let enc = UniversalConjunctionEncoding::new(space(), buckets)
            .unwrap()
            .with_attr_sel(attr_sel);
        let dim = enc.dim();
        // Derive a deterministic binner from the seed via the strategy's
        // value space: reuse the seed to pick cut counts/values cheaply.
        let mut per = vec![Vec::new(); dim];
        let mut s = seed;
        for cuts in per.iter_mut() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let n = (s >> 60) as usize % 4;
            for k in 0..n {
                cuts.push(((s >> (8 * k)) & 0xFF) as f32 / 64.0 - 1.5);
            }
            cuts.sort_by(f32::total_cmp);
            cuts.dedup();
        }
        let binner = FeatureBinner::from_cuts(&per).expect("sorted finite cuts");

        let mut reference_row = vec![0.0f32; dim];
        let reference = enc
            .featurize_into(&query, &mut reference_row)
            .map(|()| {
                let mut bins = vec![0u16; dim];
                binner.bin_row(&reference_row, &mut bins);
                bins
            });
        let mut scratch = vec![0.0f32; dim];
        let mut fused = vec![0u16; dim];
        match enc.featurize_binned_into(&query, &binner, &mut scratch, &mut fused) {
            Ok(()) => {
                let expected = reference.expect("default path must also accept");
                prop_assert_eq!(fused, expected);
            }
            Err(_) => prop_assert!(reference.is_err(), "fused path errored, default did not"),
        }
    }

    /// A query repeating an attribute (merged through `group_by_column`)
    /// must featurize identically to the premerged single-compound form
    /// (taken by the by-reference fast path).
    #[test]
    fn repeated_attribute_matches_premerged_conjunction(
        exprs in prop::collection::vec(conjunctive_expr(), 2..4),
        attr in 0usize..3,
        buckets in 2usize..24,
    ) {
        let enc = UniversalConjunctionEncoding::new(space(), buckets).unwrap();
        let repeated = Query::single_table(
            TableId(0),
            exprs
                .iter()
                .map(|e| CompoundPredicate { column: col(attr), expr: e.clone() })
                .collect(),
        );
        let premerged = Query::single_table(
            TableId(0),
            vec![CompoundPredicate {
                column: col(attr),
                expr: PredicateExpr::And(exprs.clone()),
            }],
        );
        match (enc.featurize(&repeated), enc.featurize(&premerged)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "paths disagree on acceptance: {a:?} vs {b:?}"),
        }
    }

    /// `Region::selectivity` claims bit-identity with
    /// `RegionSet::new(vec![region]).selectivity(domain)`; pin it over
    /// arbitrary conjuncts on both integral and real domains.
    #[test]
    fn region_selectivity_matches_region_set(
        preds in prop::collection::vec((any_op(), -40i64..140), 0..6),
        integral in prop_oneof![Just(true), Just(false)],
        lo in -20i64..20,
        span in 0i64..120,
    ) {
        let domain = if integral {
            AttributeDomain::integers(lo, lo + span)
        } else {
            AttributeDomain::reals(lo as f64, (lo + span) as f64)
        };
        let preds: Vec<SimplePredicate> = preds
            .into_iter()
            .map(|(op, v)| SimplePredicate::new(op, v))
            .collect();
        let region = Region::from_conjunct(&preds, &domain);
        let fast = region.selectivity(&domain);
        let slow = RegionSet::new(vec![region.clone()]).selectivity(&domain);
        prop_assert_eq!(
            fast.to_bits(),
            slow.to_bits(),
            "region {:?}: fast {} vs set {}",
            region,
            fast,
            slow
        );
    }
}
