//! Property test: `parse_where` is total — any input string either parses
//! into predicates or returns a typed [`QfeError`]; it must never panic,
//! whatever byte soup a user (or a fuzzer) feeds it.

use proptest::prelude::*;
use qfe_core::{parse_where, AttributeDomain, Catalog, ColumnMeta, TableId, TableMeta};

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(TableMeta {
        name: "orders".into(),
        columns: vec![
            ColumnMeta {
                name: "price".into(),
                domain: AttributeDomain::integers(0, 1000),
            },
            ColumnMeta {
                name: "qty".into(),
                domain: AttributeDomain::integers(0, 10),
            },
        ],
        row_count: 100,
    });
    cat
}

/// Arbitrary printable-ASCII strings (plus tabs/newlines) up to 64 chars.
fn arb_ascii() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            4 => 32u8..127u8,
            1 => Just(b'\t'),
            1 => Just(b'\n'),
        ],
        0..64,
    )
    .prop_map(|bytes| String::from_utf8(bytes).expect("ascii is utf8"))
}

/// Strings assembled from WHERE-clause fragments — syntactically *almost*
/// right, which probes far deeper into the parser than uniform noise.
fn arb_fragments() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just("price".to_string()),
        Just("qty".to_string()),
        Just("nosuchcol".to_string()),
        Just("<".to_string()),
        Just("<=".to_string()),
        Just(">".to_string()),
        Just(">=".to_string()),
        Just("=".to_string()),
        Just("<>".to_string()),
        Just("AND".to_string()),
        Just("OR".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        (-2000i64..2000).prop_map(|n| n.to_string()),
        Just("''".to_string()),
        Just("'x".to_string()), // unterminated string literal
    ];
    proptest::collection::vec(fragment, 0..16).prop_map(|parts| parts.join(" "))
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(512))]

    #[test]
    fn parse_where_never_panics_on_ascii(input in arb_ascii()) {
        let cat = catalog();
        // Totality is the property: Ok or typed Err, never a panic.
        let _ = parse_where(&cat, TableId(0), &input);
    }

    #[test]
    fn parse_where_never_panics_on_fragment_soup(input in arb_fragments()) {
        let cat = catalog();
        let _ = parse_where(&cat, TableId(0), &input);
    }

    #[test]
    fn parsed_predicates_reference_known_columns(input in arb_fragments()) {
        let cat = catalog();
        if let Ok(preds) = parse_where(&cat, TableId(0), &input) {
            for p in preds {
                prop_assert_eq!(p.column.table, TableId(0));
                prop_assert!(p.column.column.0 < 2, "column out of catalog range");
            }
        }
    }
}
