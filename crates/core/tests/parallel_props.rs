//! Property-based tests of the `qfe_core::parallel` determinism
//! contract: for arbitrary inputs, chunk sizes, and pool widths, every
//! parallel operation must return exactly what the serial evaluation
//! returns — same values, same order, bit-for-bit.

use std::sync::Arc;

use proptest::prelude::*;
use qfe_core::parallel::{with_pool, ThreadPool};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `par_chunks` must visit fixed chunk boundaries and return results
    /// in chunk order, independent of pool width.
    #[test]
    fn par_chunks_matches_serial_chunking(
        items in prop::collection::vec(-1.0e6f64..1.0e6, 0..200),
        chunk_len in 1usize..17,
        threads in 1usize..9,
    ) {
        // The serial reference: same chunk boundaries, same in-chunk
        // fold, evaluated inline in order.
        let expected: Vec<(usize, f64)> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(ci, chunk)| (ci, chunk.iter().sum::<f64>()))
            .collect();
        let pool = Arc::new(ThreadPool::new(threads));
        let got = pool.par_chunks(&items, chunk_len, |ci, chunk| {
            (ci, chunk.iter().sum::<f64>())
        });
        prop_assert_eq!(got, expected);
    }

    /// A chunk-ordered reduction of floating-point partial sums must be
    /// bit-identical across every pool width (the grouping is fixed by
    /// the chunk boundaries, not by scheduling).
    #[test]
    fn chunked_float_reduction_is_thread_count_invariant(
        items in prop::collection::vec(-1.0e3f64..1.0e3, 1..300),
        chunk_len in 1usize..33,
    ) {
        let reduce = |threads: usize| -> f64 {
            let pool = Arc::new(ThreadPool::new(threads));
            pool.par_chunks(&items, chunk_len, |_, chunk| chunk.iter().sum::<f64>())
                .into_iter()
                .sum()
        };
        let reference = reduce(1);
        for threads in [2, 3, 8] {
            let sum = reduce(threads);
            prop_assert_eq!(
                sum.to_bits(),
                reference.to_bits(),
                "{} threads diverged: {} vs {}", threads, sum, reference
            );
        }
    }

    /// `scoped` returns results positionally regardless of the order in
    /// which workers finish the tasks.
    #[test]
    fn scoped_results_are_positional(
        values in prop::collection::vec(0u64..1000, 0..64),
        threads in 1usize..9,
    ) {
        let pool = Arc::new(ThreadPool::new(threads));
        let tasks: Vec<_> = values
            .iter()
            .map(|&v| move || v.wrapping_mul(3).wrapping_add(1))
            .collect();
        let got = pool.scoped(tasks);
        let expected: Vec<u64> = values.iter().map(|&v| v.wrapping_mul(3).wrapping_add(1)).collect();
        prop_assert_eq!(got, expected);
    }

    /// `with_pool` scopes the override to the closure: `current()` inside
    /// resolves to the override, and the previous pool is restored after.
    #[test]
    fn with_pool_override_is_scoped(threads in 1usize..9) {
        let before = qfe_core::parallel::current().threads();
        let pool = Arc::new(ThreadPool::new(threads));
        let inside = with_pool(&pool, || qfe_core::parallel::current().threads());
        prop_assert_eq!(inside, threads);
        prop_assert_eq!(qfe_core::parallel::current().threads(), before);
    }
}
