//! Physical execution of optimized join plans with measured work and
//! wall-clock time (the paper's Table 4 runtime experiment).
//!
//! Intermediates are materialized as tuples of base-table row ids; hash
//! joins build on the left child and probe with the right child. Execution
//! work (rows built + probed + produced) is tracked alongside wall time so
//! results are robust on noisy machines.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use qfe_core::predicate::CompoundPredicate;
use qfe_core::{QfeError, Query, TableId};
use qfe_data::Database;

use crate::eval::selection_bitmap;
use crate::optimizer::JoinPlan;

/// Execution result of one plan.
#[derive(Debug, Clone)]
pub struct ExecStats {
    /// Final result cardinality.
    pub rows: u64,
    /// Total rows built, probed, and produced across all operators — a
    /// machine-independent work measure.
    pub work: u64,
    /// Measured wall-clock time.
    pub elapsed: Duration,
    /// Peak intermediate cardinality.
    pub peak_intermediate: u64,
}

/// An intermediate relation: for each table in `tables`, one row-id column;
/// `tuples[i]` are the row ids of the i-th table, all equal length.
struct Intermediate {
    tables: Vec<TableId>,
    columns: Vec<Vec<u32>>,
}

impl Intermediate {
    fn len(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }
}

/// Execute `plan` for `query` over `db`.
///
/// `max_intermediate` caps materialized intermediate sizes to keep
/// catastrophically bad plans from exhausting memory; exceeding it returns
/// [`QfeError::UnsupportedQuery`].
pub fn execute_plan(
    db: &Database,
    query: &Query,
    plan: &JoinPlan,
    max_intermediate: u64,
) -> Result<ExecStats, QfeError> {
    let start = Instant::now();
    let mut work = 0u64;
    let mut peak = 0u64;
    let result = exec_node(db, query, plan, max_intermediate, &mut work, &mut peak)?;
    Ok(ExecStats {
        rows: result.len() as u64,
        work,
        elapsed: start.elapsed(),
        peak_intermediate: peak,
    })
}

fn exec_node(
    db: &Database,
    query: &Query,
    plan: &JoinPlan,
    max_intermediate: u64,
    work: &mut u64,
    peak: &mut u64,
) -> Result<Intermediate, QfeError> {
    match plan {
        JoinPlan::Scan(t) => {
            let table = db.table(*t);
            let preds: Vec<&CompoundPredicate> = query
                .predicates
                .iter()
                .filter(|cp| cp.column.table == *t)
                .collect();
            let rows = selection_bitmap(table, &preds).to_rows();
            *work += table.row_count() as u64;
            *peak = (*peak).max(rows.len() as u64);
            Ok(Intermediate {
                tables: vec![*t],
                columns: vec![rows],
            })
        }
        JoinPlan::Join { left, right, join } => {
            let l = exec_node(db, query, left, max_intermediate, work, peak)?;
            let r = exec_node(db, query, right, max_intermediate, work, peak)?;
            // Identify which side carries each join column.
            let (build, probe, build_ref, probe_ref) = if l.tables.contains(&join.left.table) {
                (l, r, join.left, join.right)
            } else {
                (r, l, join.left, join.right)
            };
            let build_pos = build
                .tables
                .iter()
                .position(|&t| t == build_ref.table)
                .ok_or_else(|| QfeError::InvalidQuery("join column not in build side".into()))?;
            let probe_pos = probe
                .tables
                .iter()
                .position(|&t| t == probe_ref.table)
                .ok_or_else(|| QfeError::InvalidQuery("join column not in probe side".into()))?;
            let build_col = db.table(build_ref.table).column(build_ref.column);
            let probe_col = db.table(probe_ref.table).column(probe_ref.column);

            // Build.
            let mut ht: HashMap<i64, Vec<u32>> = HashMap::new();
            for (tuple, &rid) in build.columns[build_pos].iter().enumerate() {
                ht.entry(build_col.get_i64(rid as usize))
                    .or_default()
                    .push(tuple as u32);
            }
            *work += build.len() as u64;

            // Probe and emit.
            let out_tables: Vec<TableId> = build
                .tables
                .iter()
                .chain(probe.tables.iter())
                .copied()
                .collect();
            let mut out_columns: Vec<Vec<u32>> = vec![Vec::new(); out_tables.len()];
            let mut produced = 0u64;
            for (tuple, &rid) in probe.columns[probe_pos].iter().enumerate() {
                *work += 1;
                let Some(matches) = ht.get(&probe_col.get_i64(rid as usize)) else {
                    continue;
                };
                for &btuple in matches {
                    produced += 1;
                    if produced > max_intermediate {
                        return Err(QfeError::UnsupportedQuery(format!(
                            "intermediate result exceeds cap of {max_intermediate} rows"
                        )));
                    }
                    for (i, col) in build.columns.iter().enumerate() {
                        out_columns[i].push(col[btuple as usize]);
                    }
                    for (i, col) in probe.columns.iter().enumerate() {
                        out_columns[build.columns.len() + i].push(col[tuple]);
                    }
                }
            }
            *work += produced;
            *peak = (*peak).max(produced);
            Ok(Intermediate {
                tables: out_tables,
                columns: out_columns,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::true_cardinality;
    use qfe_core::predicate::{CmpOp, SimplePredicate};
    use qfe_core::query::{ColumnRef, JoinPredicate};
    use qfe_core::ColumnId;
    use qfe_data::table::{ForeignKey, Table};
    use qfe_data::Column;

    fn db() -> Database {
        let orders = Table::new(
            "orders",
            vec![
                ("id".into(), Column::Int(vec![0, 1, 2, 3])),
                ("price".into(), Column::Int(vec![10, 20, 30, 40])),
            ],
        );
        let items = Table::new(
            "items",
            vec![
                ("order_id".into(), Column::Int(vec![0, 0, 1, 2, 2, 2])),
                ("qty".into(), Column::Int(vec![1, 2, 3, 4, 5, 6])),
            ],
        );
        let notes = Table::new(
            "notes",
            vec![("order_id".into(), Column::Int(vec![0, 2, 2, 3]))],
        );
        Database::new(
            vec![orders, items, notes],
            &[
                ForeignKey {
                    from: ("items".into(), "order_id".into()),
                    to: ("orders".into(), "id".into()),
                },
                ForeignKey {
                    from: ("notes".into(), "order_id".into()),
                    to: ("orders".into(), "id".into()),
                },
            ],
        )
    }

    fn star_query() -> Query {
        Query {
            tables: vec![TableId(0), TableId(1), TableId(2)],
            joins: vec![
                JoinPredicate {
                    left: ColumnRef::new(TableId(1), ColumnId(0)),
                    right: ColumnRef::new(TableId(0), ColumnId(0)),
                },
                JoinPredicate {
                    left: ColumnRef::new(TableId(2), ColumnId(0)),
                    right: ColumnRef::new(TableId(0), ColumnId(0)),
                },
            ],
            predicates: vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(1)),
                vec![SimplePredicate::new(CmpOp::Le, 30)],
            )],
        }
    }

    fn left_deep_plan() -> JoinPlan {
        JoinPlan::Join {
            left: Box::new(JoinPlan::Join {
                left: Box::new(JoinPlan::Scan(TableId(0))),
                right: Box::new(JoinPlan::Scan(TableId(1))),
                join: JoinPredicate {
                    left: ColumnRef::new(TableId(1), ColumnId(0)),
                    right: ColumnRef::new(TableId(0), ColumnId(0)),
                },
            }),
            right: Box::new(JoinPlan::Scan(TableId(2))),
            join: JoinPredicate {
                left: ColumnRef::new(TableId(2), ColumnId(0)),
                right: ColumnRef::new(TableId(0), ColumnId(0)),
            },
        }
    }

    #[test]
    fn executed_count_matches_oracle() {
        let db = db();
        let q = star_query();
        let stats = execute_plan(&db, &q, &left_deep_plan(), 1_000_000).unwrap();
        assert_eq!(stats.rows, true_cardinality(&db, &q).unwrap());
        assert!(stats.work > 0);
        assert!(stats.peak_intermediate >= stats.rows);
    }

    #[test]
    fn join_order_does_not_change_result() {
        let db = db();
        let q = star_query();
        let alt = JoinPlan::Join {
            left: Box::new(JoinPlan::Join {
                left: Box::new(JoinPlan::Scan(TableId(2))),
                right: Box::new(JoinPlan::Scan(TableId(0))),
                join: JoinPredicate {
                    left: ColumnRef::new(TableId(2), ColumnId(0)),
                    right: ColumnRef::new(TableId(0), ColumnId(0)),
                },
            }),
            right: Box::new(JoinPlan::Scan(TableId(1))),
            join: JoinPredicate {
                left: ColumnRef::new(TableId(1), ColumnId(0)),
                right: ColumnRef::new(TableId(0), ColumnId(0)),
            },
        };
        let a = execute_plan(&db, &q, &left_deep_plan(), 1_000_000).unwrap();
        let b = execute_plan(&db, &q, &alt, 1_000_000).unwrap();
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn selections_are_pushed_down() {
        let db = db();
        let mut q = star_query();
        q.predicates.push(CompoundPredicate::conjunction(
            ColumnRef::new(TableId(1), ColumnId(1)),
            vec![SimplePredicate::new(CmpOp::Ge, 5)],
        ));
        let stats = execute_plan(&db, &q, &left_deep_plan(), 1_000_000).unwrap();
        assert_eq!(stats.rows, true_cardinality(&db, &q).unwrap());
    }

    #[test]
    fn intermediate_cap_aborts_bad_plans() {
        let db = db();
        let q = star_query();
        let err = execute_plan(&db, &q, &left_deep_plan(), 1);
        assert!(matches!(err, Err(QfeError::UnsupportedQuery(_))));
    }

    #[test]
    fn scan_only_plan() {
        let db = db();
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(0), ColumnId(1)),
                vec![SimplePredicate::new(CmpOp::Gt, 15)],
            )],
        );
        let stats = execute_plan(&db, &q, &JoinPlan::Scan(TableId(0)), 1_000).unwrap();
        assert_eq!(stats.rows, 3);
    }
}
