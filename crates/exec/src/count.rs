//! Exact result cardinalities — the labeling oracle.
//!
//! Single-table queries reduce to a bitmap count. Join queries over an
//! acyclic (tree-shaped) join graph are counted without materializing the
//! join: a bottom-up pass aggregates per-join-key *counts* of each subtree
//! and multiplies them into the parent, which is linear in the input sizes
//! regardless of how large the join result is.

use std::collections::HashMap;

use qfe_core::predicate::CompoundPredicate;
use qfe_core::{QfeError, Query, TableId};
use qfe_data::Database;

use crate::eval::selection_bitmap;

/// Exact `SELECT count(*)` result of `query` over `db`.
///
/// Joins must form a tree (JOB-style queries do); cyclic join graphs are
/// rejected with [`QfeError::UnsupportedQuery`].
pub fn true_cardinality(db: &Database, query: &Query) -> Result<u64, QfeError> {
    query.validate(db.catalog())?;
    if query.tables.len() == 1 {
        let preds: Vec<&CompoundPredicate> = query.predicates.iter().collect();
        return Ok(selection_bitmap(db.table(query.tables[0]), &preds).count());
    }
    if query.joins.len() != query.sub_schema().len() - 1 {
        return Err(QfeError::UnsupportedQuery(
            "join counting requires a tree-shaped join graph".into(),
        ));
    }
    let root = query.tables[0];
    let mut visited = vec![root];
    let total = count_subtree(db, query, root, None, &mut visited)?
        .into_values()
        .sum();
    if visited.len() != query.sub_schema().len() {
        return Err(QfeError::InvalidQuery(
            "join graph does not connect all accessed tables".into(),
        ));
    }
    Ok(total)
}

/// Count the subtree rooted at `table`. Returns a map from this table's
/// parent-join-key values (or `0` for the root, which has no parent key)
/// to the number of joined subtree combinations with that key.
fn count_subtree(
    db: &Database,
    query: &Query,
    table: TableId,
    parent_key_col: Option<qfe_core::ColumnId>,
    visited: &mut Vec<TableId>,
) -> Result<HashMap<i64, u64>, QfeError> {
    let t = db.table(table);
    let preds: Vec<&CompoundPredicate> = query
        .predicates
        .iter()
        .filter(|cp| cp.column.table == table)
        .collect();
    let rows = selection_bitmap(t, &preds);

    // Recurse into children: joins touching `table` whose other side is
    // unvisited.
    let mut children: Vec<(qfe_core::ColumnId, HashMap<i64, u64>)> = Vec::new();
    for j in &query.joins {
        let (my_col, other) = if j.left.table == table && !visited.contains(&j.right.table) {
            (j.left.column, j.right)
        } else if j.right.table == table && !visited.contains(&j.left.table) {
            (j.right.column, j.left)
        } else {
            continue;
        };
        visited.push(other.table);
        let child_map = count_subtree(db, query, other.table, Some(other.column), visited)?;
        children.push((my_col, child_map));
    }

    let mut out: HashMap<i64, u64> = HashMap::new();
    let parent_col = parent_key_col;
    for row in rows.iter_ones() {
        let mut mult: u64 = 1;
        for (my_col, child_map) in &children {
            let key = t.column(*my_col).get_i64(row);
            match child_map.get(&key) {
                Some(&c) => mult *= c,
                None => {
                    mult = 0;
                    break;
                }
            }
        }
        if mult == 0 {
            continue;
        }
        let key = match parent_col {
            Some(c) => t.column(c).get_i64(row),
            None => 0,
        };
        *out.entry(key).or_insert(0) += mult;
    }
    Ok(out)
}

/// Brute-force nested-loop count over at most three tables — the test
/// oracle for [`true_cardinality`]. Exponential; only for tiny inputs.
pub fn brute_force_count(db: &Database, query: &Query) -> Result<u64, QfeError> {
    query.validate(db.catalog())?;
    let tables = &query.tables;
    assert!(tables.len() <= 3, "brute force limited to three tables");
    let sizes: Vec<usize> = tables.iter().map(|&t| db.table(t).row_count()).collect();
    if sizes.contains(&0) {
        return Ok(0); // a join with an empty input is empty
    }
    let mut count = 0u64;
    let mut idx = vec![0usize; tables.len()];
    'outer: loop {
        // Check join predicates.
        let mut ok = true;
        for j in &query.joins {
            let lpos = tables.iter().position(|&t| t == j.left.table).unwrap();
            let rpos = tables.iter().position(|&t| t == j.right.table).unwrap();
            let lv = db
                .table(j.left.table)
                .column(j.left.column)
                .get_i64(idx[lpos]);
            let rv = db
                .table(j.right.table)
                .column(j.right.column)
                .get_i64(idx[rpos]);
            if lv != rv {
                ok = false;
                break;
            }
        }
        if ok {
            for cp in &query.predicates {
                let pos = tables.iter().position(|&t| t == cp.column.table).unwrap();
                let v = db
                    .table(cp.column.table)
                    .column(cp.column.column)
                    .get_f64(idx[pos]);
                if !cp.expr.matches_f64(v) {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            count += 1;
        }
        // Odometer increment.
        for k in (0..idx.len()).rev() {
            idx[k] += 1;
            if idx[k] < sizes[k] {
                continue 'outer;
            }
            idx[k] = 0;
            if k == 0 {
                break 'outer;
            }
        }
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::predicate::{CmpOp, PredicateExpr, SimplePredicate};
    use qfe_core::query::{ColumnRef, JoinPredicate};
    use qfe_core::ColumnId;
    use qfe_data::table::{ForeignKey, Table};
    use qfe_data::Column;

    fn db() -> Database {
        let orders = Table::new(
            "orders",
            vec![
                ("id".into(), Column::Int(vec![0, 1, 2, 3])),
                ("price".into(), Column::Int(vec![10, 20, 30, 40])),
            ],
        );
        let items = Table::new(
            "items",
            vec![
                ("order_id".into(), Column::Int(vec![0, 0, 1, 2, 2, 2])),
                ("qty".into(), Column::Int(vec![1, 2, 3, 4, 5, 6])),
            ],
        );
        let notes = Table::new(
            "notes",
            vec![
                ("order_id".into(), Column::Int(vec![0, 2, 2, 3])),
                ("kind".into(), Column::Int(vec![1, 1, 2, 2])),
            ],
        );
        Database::new(
            vec![orders, items, notes],
            &[
                ForeignKey {
                    from: ("items".into(), "order_id".into()),
                    to: ("orders".into(), "id".into()),
                },
                ForeignKey {
                    from: ("notes".into(), "order_id".into()),
                    to: ("orders".into(), "id".into()),
                },
            ],
        )
    }

    fn orders_col(c: usize) -> ColumnRef {
        ColumnRef::new(TableId(0), ColumnId(c))
    }

    #[test]
    fn single_table_count() {
        let db = db();
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate::conjunction(
                orders_col(1),
                vec![SimplePredicate::new(CmpOp::Gt, 15)],
            )],
        );
        assert_eq!(true_cardinality(&db, &q).unwrap(), 3);
    }

    #[test]
    fn single_table_mixed_predicate() {
        let db = db();
        let q = Query::single_table(
            TableId(0),
            vec![CompoundPredicate {
                column: orders_col(1),
                expr: PredicateExpr::Or(vec![
                    PredicateExpr::leaf(CmpOp::Le, 10),
                    PredicateExpr::leaf(CmpOp::Ge, 40),
                ]),
            }],
        );
        assert_eq!(true_cardinality(&db, &q).unwrap(), 2);
    }

    fn two_way_join() -> Query {
        Query {
            tables: vec![TableId(0), TableId(1)],
            joins: vec![JoinPredicate {
                left: ColumnRef::new(TableId(1), ColumnId(0)),
                right: ColumnRef::new(TableId(0), ColumnId(0)),
            }],
            predicates: vec![],
        }
    }

    #[test]
    fn two_way_join_count() {
        let db = db();
        // items per order: 2 + 1 + 3 + 0 = 6.
        assert_eq!(true_cardinality(&db, &two_way_join()).unwrap(), 6);
        assert_eq!(brute_force_count(&db, &two_way_join()).unwrap(), 6);
    }

    #[test]
    fn join_with_selections() {
        let db = db();
        let mut q = two_way_join();
        q.predicates.push(CompoundPredicate::conjunction(
            orders_col(1),
            vec![SimplePredicate::new(CmpOp::Ge, 30)],
        ));
        // Only order 2 (price 30, 3 items) and order 3 (price 40, 0 items).
        assert_eq!(true_cardinality(&db, &q).unwrap(), 3);
        assert_eq!(brute_force_count(&db, &q).unwrap(), 3);
    }

    #[test]
    fn three_way_star_join() {
        let db = db();
        let q = Query {
            tables: vec![TableId(0), TableId(1), TableId(2)],
            joins: vec![
                JoinPredicate {
                    left: ColumnRef::new(TableId(1), ColumnId(0)),
                    right: ColumnRef::new(TableId(0), ColumnId(0)),
                },
                JoinPredicate {
                    left: ColumnRef::new(TableId(2), ColumnId(0)),
                    right: ColumnRef::new(TableId(0), ColumnId(0)),
                },
            ],
            predicates: vec![],
        };
        // order 0: 2 items × 1 note; order 2: 3 items × 2 notes = 2 + 6 = 8.
        assert_eq!(true_cardinality(&db, &q).unwrap(), 8);
        assert_eq!(brute_force_count(&db, &q).unwrap(), 8);
    }

    #[test]
    fn star_join_with_fact_selection() {
        let db = db();
        let q = Query {
            tables: vec![TableId(0), TableId(1), TableId(2)],
            joins: vec![
                JoinPredicate {
                    left: ColumnRef::new(TableId(1), ColumnId(0)),
                    right: ColumnRef::new(TableId(0), ColumnId(0)),
                },
                JoinPredicate {
                    left: ColumnRef::new(TableId(2), ColumnId(0)),
                    right: ColumnRef::new(TableId(0), ColumnId(0)),
                },
            ],
            predicates: vec![CompoundPredicate::conjunction(
                ColumnRef::new(TableId(2), ColumnId(1)),
                vec![SimplePredicate::new(CmpOp::Eq, 2)],
            )],
        };
        // notes with kind=2: order 2 (one note), order 3 (one note).
        // order 2: 3 items × 1 note = 3; order 3: 0 items.
        assert_eq!(true_cardinality(&db, &q).unwrap(), 3);
        assert_eq!(brute_force_count(&db, &q).unwrap(), 3);
    }

    #[test]
    fn root_choice_does_not_matter() {
        let db = db();
        let mut q = two_way_join();
        q.tables = vec![TableId(1), TableId(0)]; // fact table first
        assert_eq!(true_cardinality(&db, &q).unwrap(), 6);
    }

    #[test]
    fn empty_join_result() {
        let db = db();
        let mut q = two_way_join();
        q.predicates.push(CompoundPredicate::conjunction(
            orders_col(1),
            vec![SimplePredicate::new(CmpOp::Gt, 1000)],
        ));
        assert_eq!(true_cardinality(&db, &q).unwrap(), 0);
    }
}

/// Exact result cardinality of a grouped query: the number of distinct
/// grouping-key combinations among qualifying rows (the row count of
/// `SELECT …, count(*) … GROUP BY …`).
///
/// Single-table queries only (grouped join estimation is future work in
/// the paper as well). An empty GROUP BY yields 1 if any row qualifies,
/// 0 otherwise — SQL aggregate semantics.
pub fn grouped_cardinality(
    db: &Database,
    grouped: &qfe_core::featurize::GroupedQuery,
) -> Result<u64, QfeError> {
    let query = &grouped.query;
    query.validate(db.catalog())?;
    if query.tables.len() != 1 {
        return Err(QfeError::UnsupportedQuery(
            "grouped counting supports single-table queries".into(),
        ));
    }
    let table = query.tables[0];
    for col in &grouped.group_by {
        if col.table != table {
            return Err(QfeError::InvalidQuery(
                "grouping attribute on a table the query does not access".into(),
            ));
        }
    }
    let t = db.table(table);
    let preds: Vec<&CompoundPredicate> = query.predicates.iter().collect();
    let rows = selection_bitmap(t, &preds);
    if grouped.group_by.is_empty() {
        return Ok(u64::from(rows.count() > 0));
    }
    let mut groups: std::collections::HashSet<Vec<i64>> = std::collections::HashSet::new();
    let columns: Vec<_> = grouped
        .group_by
        .iter()
        .map(|c| t.column(c.column))
        .collect();
    for row in rows.iter_ones() {
        let key: Vec<i64> = columns.iter().map(|c| c.get_i64(row)).collect();
        groups.insert(key);
    }
    Ok(groups.len() as u64)
}

#[cfg(test)]
mod grouped_tests {
    use super::*;
    use qfe_core::featurize::GroupedQuery;
    use qfe_core::predicate::{CmpOp, SimplePredicate};
    use qfe_core::query::ColumnRef;
    use qfe_core::ColumnId;
    use qfe_data::table::Table;
    use qfe_data::Column;

    fn db() -> Database {
        Database::new(
            vec![Table::new(
                "t",
                vec![
                    ("a".into(), Column::Int((0..100).map(|i| i % 10).collect())),
                    ("b".into(), Column::Int((0..100).map(|i| i % 4).collect())),
                ],
            )],
            &[],
        )
    }

    fn col(i: usize) -> ColumnRef {
        ColumnRef::new(TableId(0), ColumnId(i))
    }

    #[test]
    fn counts_distinct_groups() {
        let db = db();
        let g = GroupedQuery::new(Query::single_table(TableId(0), vec![]), vec![col(0)]);
        assert_eq!(grouped_cardinality(&db, &g).unwrap(), 10);
        let g = GroupedQuery::new(
            Query::single_table(TableId(0), vec![]),
            vec![col(0), col(1)],
        );
        // lcm(10, 4) = 20 distinct (a, b) pairs over i % 10, i % 4.
        assert_eq!(grouped_cardinality(&db, &g).unwrap(), 20);
    }

    #[test]
    fn selections_reduce_groups() {
        let db = db();
        let g = GroupedQuery::new(
            Query::single_table(
                TableId(0),
                vec![CompoundPredicate::conjunction(
                    col(0),
                    vec![SimplePredicate::new(CmpOp::Lt, 3)],
                )],
            ),
            vec![col(0)],
        );
        assert_eq!(grouped_cardinality(&db, &g).unwrap(), 3);
    }

    #[test]
    fn empty_group_by_is_scalar_aggregate() {
        let db = db();
        let g = GroupedQuery::new(Query::single_table(TableId(0), vec![]), vec![]);
        assert_eq!(grouped_cardinality(&db, &g).unwrap(), 1);
        let g = GroupedQuery::new(
            Query::single_table(
                TableId(0),
                vec![CompoundPredicate::conjunction(
                    col(0),
                    vec![SimplePredicate::new(CmpOp::Gt, 100)],
                )],
            ),
            vec![],
        );
        assert_eq!(grouped_cardinality(&db, &g).unwrap(), 0);
    }

    #[test]
    fn join_queries_are_rejected() {
        let db = db();
        let mut q = Query::single_table(TableId(0), vec![]);
        q.tables.push(TableId(0));
        let g = GroupedQuery::new(q, vec![col(0)]);
        assert!(grouped_cardinality(&db, &g).is_err());
    }
}
