//! Cost-based join-order optimization, parameterized by a cardinality
//! estimator.
//!
//! This is the substrate for the paper's end-to-end experiment (Table 4):
//! the same query is optimized three times — with PostgreSQL-style
//! estimates, with the learned estimator, and with true cardinalities —
//! and the chosen plans are executed to compare runtimes.
//!
//! The optimizer is a textbook dynamic program over connected table
//! subsets (bushy plans allowed) with a hash-join cost model
//! `cost(L ⋈ R) = cost(L) + cost(R) + |L| + |R| + |L ⋈ R|`,
//! where all cardinalities come from the injected
//! [`CardinalityEstimator`].
//!
//! # Estimation is fallible
//!
//! Every sub-plan cardinality goes through
//! [`CardinalityEstimator::try_estimate`]; a failing estimator aborts the
//! optimization with a typed [`OptimizeError::Estimate`] naming the
//! sub-plan, instead of silently planning on garbage. (An earlier version
//! called `estimate().max(1.0)`, which swallowed every failure into the
//! least informative legal estimate — the plan choice then depended on
//! *which* sub-plans happened to fail.)
//!
//! # Sub-plan estimate caching
//!
//! Estimates are memoized in two scopes, following Hyrise's
//! `CardinalityEstimationCache` design:
//!
//! * **per-call** — always on, always sound: within one `optimize()` call
//!   every semantically distinct sub-plan is estimated at most once, keyed
//!   by its canonical [`QueryFingerprint`](qfe_core::fingerprint::QueryFingerprint).
//! * **cross-call** — opt-in via [`Optimizer::with_cache`]: an
//!   [`EstimateCache`] shared across `optimize()` calls (and threads)
//!   answers sub-plans seen in earlier queries. Its generation protocol
//!   invalidates everything when the underlying model hot-swaps.
//!
//! On a cache hit the sub-query is never materialized and never
//! featurized; [`OptimizeStats`] reports how often that happened.

use std::collections::HashMap;
use std::sync::Arc;

use qfe_core::error::EstimateError;
use qfe_core::estimator::CardinalityEstimator;
use qfe_core::fingerprint::CanonicalQuery;
use qfe_core::query::JoinPredicate;
use qfe_core::{QfeError, Query, TableId};
use qfe_obs::{NoopRecorder, Recorder};

use crate::cache::{EstimateCache, Probe};

/// Counter bumped once per sub-plan whose estimation failed (the failure
/// also surfaces as [`OptimizeError::Estimate`]; the counter exists so
/// fleet dashboards see optimizer-scope estimate failures without parsing
/// errors).
const ESTIMATE_FAIL: &str = "optimizer.estimate.fail";

/// Gauge set at the end of every `optimize()` call: percentage of sub-plan
/// estimate probes answered by either cache scope, rounded to an integer.
const CACHE_HIT_RATE_PCT: &str = "optimizer.cache.hit_rate_pct";

/// A physical plan: scans joined by binary hash joins.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinPlan {
    /// Scan one table with all its pushed-down predicates.
    Scan(TableId),
    /// Hash join of two sub-plans along `join`.
    Join {
        /// Build side.
        left: Box<JoinPlan>,
        /// Probe side.
        right: Box<JoinPlan>,
        /// The equi-join connecting the sides.
        join: JoinPredicate,
    },
}

impl JoinPlan {
    /// Tables of the plan in left-to-right order.
    pub fn tables(&self) -> Vec<TableId> {
        match self {
            JoinPlan::Scan(t) => vec![*t],
            JoinPlan::Join { left, right, .. } => {
                let mut v = left.tables();
                v.extend(right.tables());
                v
            }
        }
    }

    /// Human-readable plan rendering, e.g. `((t0 ⋈ t1) ⋈ t2)`.
    pub fn render(&self) -> String {
        match self {
            JoinPlan::Scan(t) => format!("t{}", t.0),
            JoinPlan::Join { left, right, .. } => {
                format!("({} ⋈ {})", left.render(), right.render())
            }
        }
    }
}

/// Why [`Optimizer::optimize`] gave up.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizeError {
    /// The query itself is malformed or unsupported (no tables, too many
    /// tables, disconnected join graph).
    Query(QfeError),
    /// The estimator failed on a sub-plan. The failure is typed and named
    /// after the sub-plan's tables so callers can react per failure class
    /// instead of planning on a silently substituted estimate.
    Estimate {
        /// Tables of the sub-plan whose estimation failed.
        tables: Vec<TableId>,
        /// The estimator's own failure classification.
        error: EstimateError,
    },
}

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizeError::Query(e) => write!(f, "{e}"),
            OptimizeError::Estimate { tables, error } => {
                write!(f, "estimating sub-plan over tables [")?;
                for (i, t) in tables.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "t{}", t.0)?;
                }
                write!(f, "]: {error}")
            }
        }
    }
}

impl std::error::Error for OptimizeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptimizeError::Query(e) => Some(e),
            OptimizeError::Estimate { error, .. } => Some(error),
        }
    }
}

impl From<QfeError> for OptimizeError {
    fn from(e: QfeError) -> Self {
        OptimizeError::Query(e)
    }
}

/// Per-call estimation accounting of one [`Optimizer::optimize`] run.
///
/// Conservation law (asserted in tests and by `bench_optimizer`): every
/// sub-plan estimate request is exactly one of a per-call hit, a
/// cross-call hit, or a miss — `probes == call_hits + cross_hits +
/// misses`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Sub-plan estimate requests issued by the dynamic program.
    pub probes: u64,
    /// Probes answered by the per-call memo (same fingerprint seen earlier
    /// in this `optimize()` call).
    pub call_hits: u64,
    /// Probes answered by the shared cross-call [`EstimateCache`].
    pub cross_hits: u64,
    /// Probes that reached the estimator.
    pub misses: u64,
    /// Freshly computed estimates that were produced by a fallback stage
    /// rather than the primary estimator.
    pub fallbacks: u64,
    /// Deepest fallback chain observed among freshly computed estimates.
    pub max_fallback_depth: usize,
}

impl OptimizeStats {
    /// Probes answered without consulting the estimator.
    pub fn hits(&self) -> u64 {
        self.call_hits + self.cross_hits
    }

    /// Fraction of probes answered from either cache scope, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.hits() as f64 / self.probes as f64
        }
    }
}

/// The optimization result: the best plan and its estimated cost.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    /// Chosen plan.
    pub plan: JoinPlan,
    /// Estimated total cost under the injected estimator.
    pub cost: f64,
    /// Estimated cardinality of the full join.
    pub estimated_cardinality: f64,
    /// Estimation accounting for this call.
    pub stats: OptimizeStats,
}

/// Dynamic-programming join-order optimizer.
pub struct Optimizer<'a, E: CardinalityEstimator> {
    estimator: &'a E,
    cache: Option<Arc<EstimateCache>>,
    recorder: Arc<dyn Recorder>,
}

/// Everything about one query the sub-plan loop needs, precomputed once
/// per `optimize()` call: the canonical form (for O(sub-plan-size)
/// fingerprints), and per-join / per-predicate membership bit masks so
/// materializing a sub-query never scans a `Vec<TableId>`.
struct SubsetCtx<'q> {
    query: &'q Query,
    canon: CanonicalQuery,
    tables: Vec<TableId>,
    /// `(left_bit | right_bit, join)` for every join whose sides are both
    /// known tables; a join belongs to `mask` iff `mask & m == m`.
    join_masks: Vec<(u32, JoinPredicate)>,
    /// Bit of each predicate's table (parallel to `query.predicates`);
    /// `0` for predicates on tables outside the accessed set, which no
    /// sub-query includes (mirroring [`subset_query`]).
    pred_bits: Vec<u32>,
}

impl<'q> SubsetCtx<'q> {
    fn new(query: &'q Query, tables: Vec<TableId>) -> Self {
        let index_of: HashMap<TableId, usize> =
            tables.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let bit = |t: TableId| index_of.get(&t).map_or(0u32, |&i| 1 << i);
        let join_masks = query
            .joins
            .iter()
            .filter_map(|j| {
                let (l, r) = (bit(j.left.table), bit(j.right.table));
                (l != 0 && r != 0).then_some((l | r, *j))
            })
            .collect();
        let pred_bits = query
            .predicates
            .iter()
            .map(|cp| bit(cp.column.table))
            .collect();
        SubsetCtx {
            query,
            canon: CanonicalQuery::new(query),
            tables,
            join_masks,
            pred_bits,
        }
    }

    /// Materialize the sub-query for `mask` (only reached on cache
    /// misses — hits never clone a predicate).
    fn subset_query(&self, mask: u32) -> Query {
        Query {
            tables: self
                .tables
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &t)| t)
                .collect(),
            joins: self
                .join_masks
                .iter()
                .filter(|(m, _)| mask & m == *m)
                .map(|(_, j)| *j)
                .collect(),
            predicates: self
                .query
                .predicates
                .iter()
                .zip(&self.pred_bits)
                .filter(|(_, &b)| b != 0 && mask & b != 0)
                .map(|(cp, _)| cp.clone())
                .collect(),
        }
    }
}

impl<'a, E: CardinalityEstimator> Optimizer<'a, E> {
    /// Create an optimizer using `estimator` for all cardinalities.
    pub fn new(estimator: &'a E) -> Self {
        Optimizer {
            estimator,
            cache: None,
            recorder: Arc::new(NoopRecorder),
        }
    }

    /// Share `cache` across `optimize()` calls: sub-plans fingerprint-equal
    /// to ones estimated earlier (by any optimizer holding the same cache)
    /// are answered without consulting the estimator. Only sound while the
    /// estimator does not change underneath the cache — tie the cache to a
    /// generation source ([`EstimateCache::with_generation_source`]) when
    /// it can.
    pub fn with_cache(mut self, cache: Arc<EstimateCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Route optimizer metrics (estimate-failure counter, per-call cache
    /// hit-rate gauge) to `recorder`.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Find the cheapest bushy hash-join plan for `query`.
    ///
    /// Supports up to 20 tables (subset DP); the paper's JOB-light queries
    /// have at most 5.
    ///
    /// # Errors
    /// [`OptimizeError::Query`] for malformed queries (no tables, more
    /// than 20 tables, disconnected join graph);
    /// [`OptimizeError::Estimate`] when the estimator fails on any
    /// sub-plan — estimation failures abort planning instead of being
    /// silently replaced.
    pub fn optimize(&self, query: &Query) -> Result<OptimizedPlan, OptimizeError> {
        let tables = query.sub_schema().tables().to_vec();
        let n = tables.len();
        if n == 0 {
            return Err(QfeError::InvalidQuery("query accesses no table".into()).into());
        }
        if n > 20 {
            return Err(
                QfeError::UnsupportedQuery("optimizer supports at most 20 tables".into()).into(),
            );
        }
        let ctx = SubsetCtx::new(query, tables);
        let mut state = CallState::default();
        let result = self.optimize_inner(&ctx, &mut state, n);
        self.recorder.set_gauge(
            CACHE_HIT_RATE_PCT,
            (state.stats.hit_rate() * 100.0).round() as u64,
        );
        result.map(|(plan, cost, estimated_cardinality)| OptimizedPlan {
            plan,
            cost,
            estimated_cardinality,
            stats: state.stats,
        })
    }

    fn optimize_inner(
        &self,
        ctx: &SubsetCtx<'_>,
        state: &mut CallState,
        n: usize,
    ) -> Result<(JoinPlan, f64, f64), OptimizeError> {
        if n == 1 {
            let card = self.subset_estimate(ctx, state, 1)?;
            return Ok((JoinPlan::Scan(ctx.tables[0]), card, card));
        }

        // Adjacency as table-index bit masks.
        let index_of: HashMap<TableId, usize> = ctx
            .tables
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i))
            .collect();
        let mut adjacency = vec![0u32; n];
        for (m, _) in &ctx.join_masks {
            let l = m.trailing_zeros() as usize;
            let r = (31 - m.leading_zeros()) as usize;
            adjacency[l] |= 1 << r;
            adjacency[r] |= 1 << l;
        }

        // DP over connected subsets.
        let full = (1u32 << n) - 1;
        let mut best: HashMap<u32, (f64, JoinPlan)> = HashMap::new();
        let mut cards: HashMap<u32, f64> = HashMap::new();
        for (i, &t) in ctx.tables.iter().enumerate() {
            let mask = 1u32 << i;
            let card = self.subset_estimate(ctx, state, mask)?;
            cards.insert(mask, card);
            best.insert(mask, (card, JoinPlan::Scan(t)));
        }
        for mask in 1..=full {
            if mask.count_ones() < 2 || !subset_connected(mask, &adjacency) {
                continue;
            }
            let card = self.subset_estimate(ctx, state, mask)?;
            cards.insert(mask, card);
            let mut best_here: Option<(f64, JoinPlan)> = None;
            // Enumerate proper sub-splits (left = submask containing the
            // lowest bit to halve the enumeration).
            let low = mask & mask.wrapping_neg();
            let mut left = (mask - 1) & mask;
            while left != 0 {
                let right = mask ^ left;
                if left & low != 0 && best.contains_key(&left) && best.contains_key(&right) {
                    if let Some(join) = connecting_join(ctx.query, &index_of, left, right) {
                        let (lc, lp) = &best[&left];
                        let (rc, rp) = &best[&right];
                        let cost = lc + rc + cards[&left] + cards[&right] + card;
                        if best_here.as_ref().is_none_or(|(c, _)| cost < *c) {
                            best_here = Some((
                                cost,
                                JoinPlan::Join {
                                    left: Box::new(lp.clone()),
                                    right: Box::new(rp.clone()),
                                    join,
                                },
                            ));
                        }
                    }
                }
                left = (left - 1) & mask;
            }
            if let Some(b) = best_here {
                best.insert(mask, b);
            }
        }

        let (cost, plan) = best.remove(&full).ok_or_else(|| {
            QfeError::InvalidQuery("join graph does not connect all accessed tables".into())
        })?;
        Ok((plan, cost, cards[&full]))
    }

    /// Estimated cardinality of the query restricted to the tables in
    /// `mask`, through both cache scopes (per-call memo, then the shared
    /// cross-call cache), reaching the estimator only on a double miss.
    fn subset_estimate(
        &self,
        ctx: &SubsetCtx<'_>,
        state: &mut CallState,
        mask: u32,
    ) -> Result<f64, OptimizeError> {
        state.stats.probes += 1;
        let fp = ctx.canon.subset_fingerprint(mask);
        if let Some(&card) = state.per_call.get(&fp.0) {
            state.stats.call_hits += 1;
            return Ok(card);
        }
        let token = match &self.cache {
            Some(cache) => match cache.probe(fp) {
                Probe::Hit(est) => {
                    state.stats.cross_hits += 1;
                    state.per_call.insert(fp.0, est.value);
                    return Ok(est.value);
                }
                Probe::Miss(token) => Some(token),
            },
            None => None,
        };
        let sub = ctx.subset_query(mask);
        let est = match self.estimator.try_estimate(&sub) {
            Ok(est) => est,
            Err(error) => {
                self.recorder.incr(ESTIMATE_FAIL);
                return Err(OptimizeError::Estimate {
                    tables: sub.tables,
                    error,
                });
            }
        };
        state.stats.misses += 1;
        if est.fell_back() {
            state.stats.fallbacks += 1;
            state.stats.max_fallback_depth = state.stats.max_fallback_depth.max(est.fallback_depth);
        }
        if let (Some(cache), Some(token)) = (&self.cache, token) {
            cache.fill(fp, est.clone(), token);
        }
        state.per_call.insert(fp.0, est.value);
        Ok(est.value)
    }
}

/// Per-`optimize()` mutable state: the always-on per-call memo plus the
/// call's [`OptimizeStats`].
#[derive(Default)]
struct CallState {
    per_call: HashMap<u128, f64>,
    stats: OptimizeStats,
}

/// The query restricted to the tables selected by `mask`: their joins and
/// predicates only. Membership is decided by bit tests against an index
/// built once — no per-join or per-predicate scan of the table list.
pub fn subset_query(query: &Query, tables: &[TableId], mask: u32) -> Query {
    let index_of: HashMap<TableId, usize> =
        tables.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let in_mask = |t: TableId| index_of.get(&t).is_some_and(|&i| mask >> i & 1 == 1);
    Query {
        joins: query
            .joins
            .iter()
            .filter(|j| in_mask(j.left.table) && in_mask(j.right.table))
            .cloned()
            .collect(),
        predicates: query
            .predicates
            .iter()
            .filter(|cp| in_mask(cp.column.table))
            .cloned()
            .collect(),
        tables: tables
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &t)| t)
            .collect(),
    }
}

fn subset_connected(mask: u32, adjacency: &[u32]) -> bool {
    let start = mask.trailing_zeros() as usize;
    let mut reached = 1u32 << start;
    let mut frontier = reached;
    while frontier != 0 {
        let mut next = 0u32;
        let mut f = frontier;
        while f != 0 {
            let i = f.trailing_zeros() as usize;
            f &= f - 1;
            next |= adjacency[i] & mask & !reached;
        }
        reached |= next;
        frontier = next;
    }
    reached == mask
}

fn connecting_join(
    query: &Query,
    index_of: &HashMap<TableId, usize>,
    left: u32,
    right: u32,
) -> Option<JoinPredicate> {
    query.joins.iter().copied().find(|j| {
        let l = 1u32 << index_of[&j.left.table];
        let r = 1u32 << index_of[&j.right.table];
        (l & left != 0 && r & right != 0) || (l & right != 0 && r & left != 0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::query::ColumnRef;
    use qfe_core::ColumnId;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Estimator with hardcoded per-sub-schema cardinalities, to force
    /// specific plan choices.
    struct Scripted(HashMap<Vec<TableId>, f64>);

    impl CardinalityEstimator for Scripted {
        fn name(&self) -> String {
            "scripted".into()
        }

        fn estimate(&self, query: &Query) -> f64 {
            let key = query.sub_schema().tables().to_vec();
            *self.0.get(&key).unwrap_or(&1.0)
        }
    }

    /// Estimator that counts how often the optimizer actually reaches it.
    struct Counting {
        calls: AtomicU64,
    }

    impl Counting {
        fn new() -> Self {
            Counting {
                calls: AtomicU64::new(0),
            }
        }
    }

    impl CardinalityEstimator for Counting {
        fn name(&self) -> String {
            "counting".into()
        }

        fn estimate(&self, _query: &Query) -> f64 {
            self.calls.fetch_add(1, Ordering::Relaxed);
            10.0
        }
    }

    /// Estimator that fails on sub-schemata listed in its set.
    struct Failing(Vec<Vec<TableId>>);

    impl CardinalityEstimator for Failing {
        fn name(&self) -> String {
            "failing".into()
        }

        fn estimate(&self, query: &Query) -> f64 {
            if self.0.contains(&query.sub_schema().tables().to_vec()) {
                f64::NAN
            } else {
                10.0
            }
        }
    }

    fn chain_query(n: usize) -> Query {
        // t0 — t1 — t2 — … joined on column 0.
        Query {
            tables: (0..n).map(TableId).collect(),
            joins: (1..n)
                .map(|i| JoinPredicate {
                    left: ColumnRef::new(TableId(i - 1), ColumnId(0)),
                    right: ColumnRef::new(TableId(i), ColumnId(0)),
                })
                .collect(),
            predicates: vec![],
        }
    }

    fn t(ids: &[usize]) -> Vec<TableId> {
        ids.iter().map(|&i| TableId(i)).collect()
    }

    #[test]
    fn single_table_plan() {
        let est = Scripted(HashMap::from([(t(&[0]), 50.0)]));
        let opt = Optimizer::new(&est);
        let plan = opt.optimize(&chain_query(1)).unwrap();
        assert_eq!(plan.plan, JoinPlan::Scan(TableId(0)));
        assert_eq!(plan.estimated_cardinality, 50.0);
        assert_eq!(plan.stats.probes, 1);
        assert_eq!(plan.stats.misses, 1);
    }

    #[test]
    fn two_table_plan() {
        let est = Scripted(HashMap::from([
            (t(&[0]), 10.0),
            (t(&[1]), 20.0),
            (t(&[0, 1]), 5.0),
        ]));
        let opt = Optimizer::new(&est);
        let plan = opt.optimize(&chain_query(2)).unwrap();
        assert_eq!(plan.plan.tables().len(), 2);
        assert_eq!(plan.estimated_cardinality, 5.0);
        // cost = 10 + 20 (scans) + 10 + 20 (inputs) + 5 (output).
        assert_eq!(plan.cost, 65.0);
    }

    #[test]
    fn optimizer_prefers_selective_first_join() {
        // Chain t0-t1-t2. Joining t1⋈t2 first is much cheaper.
        let est = Scripted(HashMap::from([
            (t(&[0]), 1000.0),
            (t(&[1]), 1000.0),
            (t(&[2]), 1000.0),
            (t(&[0, 1]), 100_000.0),
            (t(&[1, 2]), 10.0),
            (t(&[0, 1, 2]), 50.0),
        ]));
        let opt = Optimizer::new(&est);
        let plan = opt.optimize(&chain_query(3)).unwrap();
        // The first join executed must be t1 ⋈ t2.
        fn first_join_tables(p: &JoinPlan) -> Vec<TableId> {
            match p {
                JoinPlan::Scan(_) => vec![],
                JoinPlan::Join { left, right, .. } => {
                    let l = first_join_tables(left);
                    if !l.is_empty() {
                        return l;
                    }
                    let r = first_join_tables(right);
                    if !r.is_empty() {
                        return r;
                    }
                    let mut tables = left.tables();
                    tables.extend(right.tables());
                    tables
                }
            }
        }
        let mut first = first_join_tables(&plan.plan);
        first.sort();
        assert_eq!(first, t(&[1, 2]), "plan: {}", plan.plan.render());
    }

    #[test]
    fn misleading_estimates_produce_a_different_plan() {
        // Same query, but the estimator believes t0⋈t1 is tiny: the chosen
        // plan changes — the mechanism behind the paper's Table 4.
        let est = Scripted(HashMap::from([
            (t(&[0]), 1000.0),
            (t(&[1]), 1000.0),
            (t(&[2]), 1000.0),
            (t(&[0, 1]), 1.0),
            (t(&[1, 2]), 500_000.0),
            (t(&[0, 1, 2]), 50.0),
        ]));
        let opt = Optimizer::new(&est);
        let plan = opt.optimize(&chain_query(3)).unwrap();
        assert!(
            plan.plan.render().contains("(t0 ⋈ t1)"),
            "{}",
            plan.plan.render()
        );
    }

    #[test]
    fn cross_product_is_rejected() {
        let est = Scripted(HashMap::new());
        let opt = Optimizer::new(&est);
        let mut q = chain_query(3);
        q.joins.remove(0); // disconnect t0
        let err = opt.optimize(&q).unwrap_err();
        assert!(matches!(err, OptimizeError::Query(_)), "{err}");
    }

    #[test]
    fn five_table_chain_optimizes() {
        let mut cards = HashMap::new();
        // Any subset estimate defaults to 1.0 via Scripted's fallback.
        cards.insert(t(&[0, 1, 2, 3, 4]), 42.0);
        let est = Scripted(cards);
        let opt = Optimizer::new(&est);
        let plan = opt.optimize(&chain_query(5)).unwrap();
        assert_eq!(plan.plan.tables().len(), 5);
        assert_eq!(plan.estimated_cardinality, 42.0);
    }

    #[test]
    fn estimate_failure_propagates_with_subplan_context() {
        // The estimator fails on the {t1, t2} sub-plan: the optimizer must
        // surface the typed error, not plan around a substituted value.
        let est = Failing(vec![t(&[1, 2])]);
        let opt = Optimizer::new(&est);
        let err = opt.optimize(&chain_query(3)).unwrap_err();
        match err {
            OptimizeError::Estimate { tables, error } => {
                assert_eq!(tables, t(&[1, 2]));
                assert!(
                    matches!(error, EstimateError::NonFinite { .. }),
                    "{error:?}"
                );
            }
            other => panic!("expected Estimate error, got {other:?}"),
        }
    }

    #[test]
    fn estimate_failures_are_counted() {
        let recorder = Arc::new(qfe_obs::MetricsRecorder::new());
        let est = Failing(vec![t(&[0])]);
        let opt = Optimizer::new(&est).with_recorder(recorder.clone());
        assert!(opt.optimize(&chain_query(2)).is_err());
        assert_eq!(recorder.counter(ESTIMATE_FAIL), 1);
    }

    #[test]
    fn stats_conserve_probes() {
        let est = Counting::new();
        let opt = Optimizer::new(&est);
        let plan = opt.optimize(&chain_query(4)).unwrap();
        let s = plan.stats;
        assert_eq!(s.probes, s.call_hits + s.cross_hits + s.misses);
        // No cross-call cache installed.
        assert_eq!(s.cross_hits, 0);
        // Every miss is exactly one estimator call.
        assert_eq!(est.calls.load(Ordering::Relaxed), s.misses);
        // The chain query has no predicates, so all sub-plans of equal
        // shape are distinct (different tables) — every probe misses.
        assert_eq!(s.call_hits, 0);
    }

    #[test]
    fn cross_call_cache_answers_repeat_queries() {
        let est = Counting::new();
        let cache = Arc::new(EstimateCache::new());
        let opt = Optimizer::new(&est).with_cache(cache.clone());
        let q = chain_query(3);
        let first = opt.optimize(&q).unwrap();
        let calls_after_first = est.calls.load(Ordering::Relaxed);
        assert!(calls_after_first > 0);
        let second = opt.optimize(&q).unwrap();
        // The second call is answered entirely from the cross-call cache.
        assert_eq!(est.calls.load(Ordering::Relaxed), calls_after_first);
        assert_eq!(second.stats.misses, 0);
        assert_eq!(second.stats.cross_hits, second.stats.probes);
        // And it chose the identical plan at the identical cost.
        assert_eq!(first.plan, second.plan);
        assert_eq!(first.cost, second.cost);
        assert_eq!(first.estimated_cardinality, second.estimated_cardinality);
    }

    #[test]
    fn reordered_predicates_hit_the_cross_call_cache() {
        // Two predicates on the same column in either order: the sub-plans
        // for {t0} under both orderings fingerprint identically, so within
        // one call the estimator is asked once per distinct sub-plan even
        // without a cross-call cache.
        use qfe_core::{CmpOp, CompoundPredicate, SimplePredicate};
        let col = ColumnRef::new(TableId(0), ColumnId(1));
        let mut q = chain_query(2);
        q.predicates = vec![
            CompoundPredicate::conjunction(col, vec![SimplePredicate::new(CmpOp::Ge, 1)]),
            CompoundPredicate::conjunction(col, vec![SimplePredicate::new(CmpOp::Le, 9)]),
        ];
        let est = Counting::new();
        let cache = Arc::new(EstimateCache::new());
        let opt = Optimizer::new(&est).with_cache(cache.clone());
        opt.optimize(&q).unwrap();

        let mut q2 = chain_query(2);
        q2.predicates = vec![
            CompoundPredicate::conjunction(col, vec![SimplePredicate::new(CmpOp::Le, 9)]),
            CompoundPredicate::conjunction(col, vec![SimplePredicate::new(CmpOp::Ge, 1)]),
        ];
        let calls_before = est.calls.load(Ordering::Relaxed);
        let plan = opt.optimize(&q2).unwrap();
        // Reordered predicates hit the cache filled by the first query.
        assert_eq!(est.calls.load(Ordering::Relaxed), calls_before);
        assert_eq!(plan.stats.misses, 0);
    }

    #[test]
    fn hit_rate_gauge_is_set_per_call() {
        let recorder = Arc::new(qfe_obs::MetricsRecorder::new());
        let est = Counting::new();
        let cache = Arc::new(EstimateCache::new());
        let opt = Optimizer::new(&est)
            .with_cache(cache)
            .with_recorder(recorder.clone());
        let q = chain_query(3);
        opt.optimize(&q).unwrap();
        assert_eq!(recorder.gauge(CACHE_HIT_RATE_PCT), 0);
        opt.optimize(&q).unwrap();
        assert_eq!(recorder.gauge(CACHE_HIT_RATE_PCT), 100);
    }

    #[test]
    fn subset_query_restricts_everything() {
        let mut q = chain_query(3);
        q.predicates.push(qfe_core::CompoundPredicate::conjunction(
            ColumnRef::new(TableId(2), ColumnId(0)),
            vec![qfe_core::SimplePredicate::new(qfe_core::CmpOp::Eq, 1)],
        ));
        let sub = subset_query(&q, &t(&[0, 1, 2]), 0b011);
        assert_eq!(sub.tables, t(&[0, 1]));
        assert_eq!(sub.joins.len(), 1);
        assert!(sub.predicates.is_empty());
    }

    #[test]
    fn subset_query_ignores_unknown_tables() {
        // Predicates and joins on tables absent from the table list are
        // excluded no matter the mask (same contract as the scan-based
        // implementation this replaced).
        let mut q = chain_query(2);
        q.predicates.push(qfe_core::CompoundPredicate::conjunction(
            ColumnRef::new(TableId(9), ColumnId(0)),
            vec![qfe_core::SimplePredicate::new(qfe_core::CmpOp::Eq, 1)],
        ));
        let sub = subset_query(&q, &t(&[0, 1]), 0b11);
        assert_eq!(sub.tables, t(&[0, 1]));
        assert!(sub.predicates.is_empty());
    }
}
