//! Cost-based join-order optimization, parameterized by a cardinality
//! estimator.
//!
//! This is the substrate for the paper's end-to-end experiment (Table 4):
//! the same query is optimized three times — with PostgreSQL-style
//! estimates, with the learned estimator, and with true cardinalities —
//! and the chosen plans are executed to compare runtimes.
//!
//! The optimizer is a textbook dynamic program over connected table
//! subsets (bushy plans allowed) with a hash-join cost model
//! `cost(L ⋈ R) = cost(L) + cost(R) + |L| + |R| + |L ⋈ R|`,
//! where all cardinalities come from the injected
//! [`CardinalityEstimator`].

use std::collections::HashMap;

use qfe_core::estimator::CardinalityEstimator;
use qfe_core::query::JoinPredicate;
use qfe_core::{QfeError, Query, TableId};

/// A physical plan: scans joined by binary hash joins.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinPlan {
    /// Scan one table with all its pushed-down predicates.
    Scan(TableId),
    /// Hash join of two sub-plans along `join`.
    Join {
        /// Build side.
        left: Box<JoinPlan>,
        /// Probe side.
        right: Box<JoinPlan>,
        /// The equi-join connecting the sides.
        join: JoinPredicate,
    },
}

impl JoinPlan {
    /// Tables of the plan in left-to-right order.
    pub fn tables(&self) -> Vec<TableId> {
        match self {
            JoinPlan::Scan(t) => vec![*t],
            JoinPlan::Join { left, right, .. } => {
                let mut v = left.tables();
                v.extend(right.tables());
                v
            }
        }
    }

    /// Human-readable plan rendering, e.g. `((t0 ⋈ t1) ⋈ t2)`.
    pub fn render(&self) -> String {
        match self {
            JoinPlan::Scan(t) => format!("t{}", t.0),
            JoinPlan::Join { left, right, .. } => {
                format!("({} ⋈ {})", left.render(), right.render())
            }
        }
    }
}

/// The optimization result: the best plan and its estimated cost.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    /// Chosen plan.
    pub plan: JoinPlan,
    /// Estimated total cost under the injected estimator.
    pub cost: f64,
    /// Estimated cardinality of the full join.
    pub estimated_cardinality: f64,
}

/// Dynamic-programming join-order optimizer.
pub struct Optimizer<'a, E: CardinalityEstimator> {
    estimator: &'a E,
}

impl<'a, E: CardinalityEstimator> Optimizer<'a, E> {
    /// Create an optimizer using `estimator` for all cardinalities.
    pub fn new(estimator: &'a E) -> Self {
        Optimizer { estimator }
    }

    /// Find the cheapest bushy hash-join plan for `query`.
    ///
    /// Supports up to 20 tables (subset DP); the paper's JOB-light queries
    /// have at most 5.
    pub fn optimize(&self, query: &Query) -> Result<OptimizedPlan, QfeError> {
        let tables = query.sub_schema().tables().to_vec();
        let n = tables.len();
        if n == 0 {
            return Err(QfeError::InvalidQuery("query accesses no table".into()));
        }
        if n > 20 {
            return Err(QfeError::UnsupportedQuery(
                "optimizer supports at most 20 tables".into(),
            ));
        }
        if n == 1 {
            let card = self.subset_cardinality(query, &tables, 1);
            return Ok(OptimizedPlan {
                plan: JoinPlan::Scan(tables[0]),
                cost: card,
                estimated_cardinality: card,
            });
        }

        // Adjacency as table-index bit masks.
        let index_of: HashMap<TableId, usize> =
            tables.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let mut adjacency = vec![0u32; n];
        for j in &query.joins {
            let (l, r) = (index_of[&j.left.table], index_of[&j.right.table]);
            adjacency[l] |= 1 << r;
            adjacency[r] |= 1 << l;
        }

        // DP over connected subsets.
        let full = (1u32 << n) - 1;
        let mut best: HashMap<u32, (f64, JoinPlan)> = HashMap::new();
        let mut cards: HashMap<u32, f64> = HashMap::new();
        for i in 0..n {
            let mask = 1u32 << i;
            let card = self.subset_cardinality(query, &tables, mask);
            cards.insert(mask, card);
            best.insert(mask, (card, JoinPlan::Scan(tables[i])));
        }
        for mask in 1..=full {
            if mask.count_ones() < 2 || !subset_connected(mask, &adjacency) {
                continue;
            }
            let card = self.subset_cardinality(query, &tables, mask);
            cards.insert(mask, card);
            let mut best_here: Option<(f64, JoinPlan)> = None;
            // Enumerate proper sub-splits (left = submask containing the
            // lowest bit to halve the enumeration).
            let low = mask & mask.wrapping_neg();
            let mut left = (mask - 1) & mask;
            while left != 0 {
                let right = mask ^ left;
                if left & low != 0 && best.contains_key(&left) && best.contains_key(&right) {
                    if let Some(join) = connecting_join(query, &index_of, left, right) {
                        let (lc, lp) = &best[&left];
                        let (rc, rp) = &best[&right];
                        let cost = lc + rc + cards[&left] + cards[&right] + card;
                        if best_here.as_ref().is_none_or(|(c, _)| cost < *c) {
                            best_here = Some((
                                cost,
                                JoinPlan::Join {
                                    left: Box::new(lp.clone()),
                                    right: Box::new(rp.clone()),
                                    join,
                                },
                            ));
                        }
                    }
                }
                left = (left - 1) & mask;
            }
            if let Some(b) = best_here {
                best.insert(mask, b);
            }
        }

        let (cost, plan) = best.remove(&full).ok_or_else(|| {
            QfeError::InvalidQuery("join graph does not connect all accessed tables".into())
        })?;
        Ok(OptimizedPlan {
            plan,
            cost,
            estimated_cardinality: cards[&full],
        })
    }

    /// Estimated cardinality of the query restricted to the tables in
    /// `mask`.
    fn subset_cardinality(&self, query: &Query, tables: &[TableId], mask: u32) -> f64 {
        let sub = subset_query(query, tables, mask);
        self.estimator.estimate(&sub).max(1.0)
    }
}

/// The query restricted to the tables selected by `mask`: their joins and
/// predicates only.
pub fn subset_query(query: &Query, tables: &[TableId], mask: u32) -> Query {
    let selected: Vec<TableId> = tables
        .iter()
        .enumerate()
        .filter(|(i, _)| mask >> i & 1 == 1)
        .map(|(_, &t)| t)
        .collect();
    Query {
        joins: query
            .joins
            .iter()
            .filter(|j| selected.contains(&j.left.table) && selected.contains(&j.right.table))
            .cloned()
            .collect(),
        predicates: query
            .predicates
            .iter()
            .filter(|cp| selected.contains(&cp.column.table))
            .cloned()
            .collect(),
        tables: selected,
    }
}

fn subset_connected(mask: u32, adjacency: &[u32]) -> bool {
    let start = mask.trailing_zeros() as usize;
    let mut reached = 1u32 << start;
    let mut frontier = reached;
    while frontier != 0 {
        let mut next = 0u32;
        let mut f = frontier;
        while f != 0 {
            let i = f.trailing_zeros() as usize;
            f &= f - 1;
            next |= adjacency[i] & mask & !reached;
        }
        reached |= next;
        frontier = next;
    }
    reached == mask
}

fn connecting_join(
    query: &Query,
    index_of: &HashMap<TableId, usize>,
    left: u32,
    right: u32,
) -> Option<JoinPredicate> {
    query.joins.iter().copied().find(|j| {
        let l = 1u32 << index_of[&j.left.table];
        let r = 1u32 << index_of[&j.right.table];
        (l & left != 0 && r & right != 0) || (l & right != 0 && r & left != 0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::query::ColumnRef;
    use qfe_core::ColumnId;

    /// Estimator with hardcoded per-sub-schema cardinalities, to force
    /// specific plan choices.
    struct Scripted(HashMap<Vec<TableId>, f64>);

    impl CardinalityEstimator for Scripted {
        fn name(&self) -> String {
            "scripted".into()
        }

        fn estimate(&self, query: &Query) -> f64 {
            let key = query.sub_schema().tables().to_vec();
            *self.0.get(&key).unwrap_or(&1.0)
        }
    }

    fn chain_query(n: usize) -> Query {
        // t0 — t1 — t2 — … joined on column 0.
        Query {
            tables: (0..n).map(TableId).collect(),
            joins: (1..n)
                .map(|i| JoinPredicate {
                    left: ColumnRef::new(TableId(i - 1), ColumnId(0)),
                    right: ColumnRef::new(TableId(i), ColumnId(0)),
                })
                .collect(),
            predicates: vec![],
        }
    }

    fn t(ids: &[usize]) -> Vec<TableId> {
        ids.iter().map(|&i| TableId(i)).collect()
    }

    #[test]
    fn single_table_plan() {
        let est = Scripted(HashMap::from([(t(&[0]), 50.0)]));
        let opt = Optimizer::new(&est);
        let plan = opt.optimize(&chain_query(1)).unwrap();
        assert_eq!(plan.plan, JoinPlan::Scan(TableId(0)));
        assert_eq!(plan.estimated_cardinality, 50.0);
    }

    #[test]
    fn two_table_plan() {
        let est = Scripted(HashMap::from([
            (t(&[0]), 10.0),
            (t(&[1]), 20.0),
            (t(&[0, 1]), 5.0),
        ]));
        let opt = Optimizer::new(&est);
        let plan = opt.optimize(&chain_query(2)).unwrap();
        assert_eq!(plan.plan.tables().len(), 2);
        assert_eq!(plan.estimated_cardinality, 5.0);
        // cost = 10 + 20 (scans) + 10 + 20 (inputs) + 5 (output).
        assert_eq!(plan.cost, 65.0);
    }

    #[test]
    fn optimizer_prefers_selective_first_join() {
        // Chain t0-t1-t2. Joining t1⋈t2 first is much cheaper.
        let est = Scripted(HashMap::from([
            (t(&[0]), 1000.0),
            (t(&[1]), 1000.0),
            (t(&[2]), 1000.0),
            (t(&[0, 1]), 100_000.0),
            (t(&[1, 2]), 10.0),
            (t(&[0, 1, 2]), 50.0),
        ]));
        let opt = Optimizer::new(&est);
        let plan = opt.optimize(&chain_query(3)).unwrap();
        // The first join executed must be t1 ⋈ t2.
        fn first_join_tables(p: &JoinPlan) -> Vec<TableId> {
            match p {
                JoinPlan::Scan(_) => vec![],
                JoinPlan::Join { left, right, .. } => {
                    let l = first_join_tables(left);
                    if !l.is_empty() {
                        return l;
                    }
                    let r = first_join_tables(right);
                    if !r.is_empty() {
                        return r;
                    }
                    let mut tables = left.tables();
                    tables.extend(right.tables());
                    tables
                }
            }
        }
        let mut first = first_join_tables(&plan.plan);
        first.sort();
        assert_eq!(first, t(&[1, 2]), "plan: {}", plan.plan.render());
    }

    #[test]
    fn misleading_estimates_produce_a_different_plan() {
        // Same query, but the estimator believes t0⋈t1 is tiny: the chosen
        // plan changes — the mechanism behind the paper's Table 4.
        let est = Scripted(HashMap::from([
            (t(&[0]), 1000.0),
            (t(&[1]), 1000.0),
            (t(&[2]), 1000.0),
            (t(&[0, 1]), 1.0),
            (t(&[1, 2]), 500_000.0),
            (t(&[0, 1, 2]), 50.0),
        ]));
        let opt = Optimizer::new(&est);
        let plan = opt.optimize(&chain_query(3)).unwrap();
        assert!(
            plan.plan.render().contains("(t0 ⋈ t1)"),
            "{}",
            plan.plan.render()
        );
    }

    #[test]
    fn cross_product_is_rejected() {
        let est = Scripted(HashMap::new());
        let opt = Optimizer::new(&est);
        let mut q = chain_query(3);
        q.joins.remove(0); // disconnect t0
        assert!(opt.optimize(&q).is_err());
    }

    #[test]
    fn five_table_chain_optimizes() {
        let mut cards = HashMap::new();
        // Any subset estimate defaults to 1.0 via Scripted's fallback.
        cards.insert(t(&[0, 1, 2, 3, 4]), 42.0);
        let est = Scripted(cards);
        let opt = Optimizer::new(&est);
        let plan = opt.optimize(&chain_query(5)).unwrap();
        assert_eq!(plan.plan.tables().len(), 5);
        assert_eq!(plan.estimated_cardinality, 42.0);
    }

    #[test]
    fn subset_query_restricts_everything() {
        let mut q = chain_query(3);
        q.predicates.push(qfe_core::CompoundPredicate::conjunction(
            ColumnRef::new(TableId(2), ColumnId(0)),
            vec![qfe_core::SimplePredicate::new(qfe_core::CmpOp::Eq, 1)],
        ));
        let sub = subset_query(&q, &t(&[0, 1, 2]), 0b011);
        assert_eq!(sub.tables, t(&[0, 1]));
        assert_eq!(sub.joins.len(), 1);
        assert!(sub.predicates.is_empty());
    }
}
