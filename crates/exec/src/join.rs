//! Hash-join primitives shared by counting and plan execution.

use std::collections::HashMap;

/// A build-side hash table: join key → row positions.
#[derive(Debug, Clone, Default)]
pub struct HashJoinTable {
    map: HashMap<i64, Vec<u32>>,
    build_rows: usize,
}

impl HashJoinTable {
    /// Build from `(key, position)` pairs.
    pub fn build(keys: impl Iterator<Item = i64>) -> Self {
        let mut map: HashMap<i64, Vec<u32>> = HashMap::new();
        let mut build_rows = 0;
        for (pos, key) in keys.enumerate() {
            map.entry(key).or_default().push(pos as u32);
            build_rows += 1;
        }
        HashJoinTable { map, build_rows }
    }

    /// Positions matching `key`.
    pub fn probe(&self, key: i64) -> &[u32] {
        self.map.get(&key).map_or(&[], Vec::as_slice)
    }

    /// Number of matches for `key` (used by count-only joins).
    pub fn probe_count(&self, key: i64) -> usize {
        self.map.get(&key).map_or(0, Vec::len)
    }

    /// Number of rows on the build side.
    pub fn build_rows(&self) -> usize {
        self.build_rows
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_probe() {
        let ht = HashJoinTable::build([5, 7, 5, 9].into_iter());
        assert_eq!(ht.build_rows(), 4);
        assert_eq!(ht.distinct_keys(), 3);
        assert_eq!(ht.probe(5), &[0, 2]);
        assert_eq!(ht.probe(7), &[1]);
        assert_eq!(ht.probe(42), &[] as &[u32]);
        assert_eq!(ht.probe_count(5), 2);
        assert_eq!(ht.probe_count(42), 0);
    }

    #[test]
    fn empty_build_side() {
        let ht = HashJoinTable::build(std::iter::empty());
        assert_eq!(ht.build_rows(), 0);
        assert_eq!(ht.probe_count(0), 0);
    }
}
