//! Cross-call sub-plan estimate cache (the Hyrise
//! `CardinalityEstimationCache` pattern).
//!
//! The join-order optimizer probes its estimator once per connected table
//! subset, and consecutive queries in a workload overlap heavily in those
//! sub-plans. [`EstimateCache`] persists estimates *across* `optimize()`
//! calls, keyed on the semantic [`QueryFingerprint`] of the sub-plan, so a
//! sub-plan estimated for one query is free for every later query that
//! contains it — regardless of predicate order or join spelling
//! (fingerprint canonicalization makes semantically equal sub-queries
//! collide).
//!
//! Caching across calls is only sound while the estimator itself does not
//! change. The cache therefore carries a [`GenerationSource`]: the serving
//! layer's `ModelSlot` bumps its generation on every accepted hot swap,
//! and the cache compares that generation on each probe, dropping every
//! entry the moment it moves — an adaptation swap atomically invalidates
//! all stale estimates. A cache built without a source
//! ([`EstimateCache::new`]) pins generation 0 and never invalidates,
//! which is correct exactly when the estimator is immutable.
//!
//! The probe/fill protocol is generation-checked end to end:
//! [`EstimateCache::probe`] returns a [`Probe::Miss`] carrying the
//! generation observed at probe time, and [`EstimateCache::fill`] refuses
//! the insert if the generation has moved since — an estimate computed
//! against the old model can never be published under the new one, even
//! when a swap lands between probe and fill.
//!
//! Counter contract (the conservation law asserted by `bench_optimizer`):
//! every probe is exactly one hit or one miss, so
//! `hits + misses == probes`. Evictions count entries dropped by capacity
//! sweeps; invalidations count entries dropped by generation changes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use qfe_core::estimator::{Estimate, GenerationSource};
use qfe_core::fingerprint::QueryFingerprint;
use qfe_obs::{NoopRecorder, Recorder};

/// Metric names under which the cache reports, precomputed so the hot
/// path never formats (the convention of the rest of the workspace).
const HIT: &str = "cache.hit";
const MISS: &str = "cache.miss";
const EVICT: &str = "cache.evict";
const INVALIDATE: &str = "cache.invalidate";

/// Default entry bound. A JOB-light-sized workload needs a few hundred
/// distinct sub-plans; this leaves generous headroom while keeping the
/// worst case at a few MB.
pub const DEFAULT_CACHE_CAPACITY: usize = 65_536;

/// Result of [`EstimateCache::probe`].
#[derive(Debug, Clone, PartialEq)]
pub enum Probe {
    /// The fingerprint was cached; here is the estimate.
    Hit(Estimate),
    /// Not cached. The token is the generation observed at probe time;
    /// pass it to [`EstimateCache::fill`] so a concurrent model swap
    /// cannot publish the (now stale) estimate.
    Miss(FillToken),
}

/// Proof of a probe-time generation observation (see [`Probe::Miss`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillToken {
    generation: u64,
}

/// Cumulative counters of an [`EstimateCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that found nothing (and were issued a fill token).
    pub misses: u64,
    /// Entries dropped by capacity sweeps.
    pub evictions: u64,
    /// Entries dropped because the model generation moved.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total probes (every probe is exactly one hit or one miss).
    pub fn probes(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; `0` before the first probe.
    pub fn hit_rate(&self) -> f64 {
        if self.probes() == 0 {
            0.0
        } else {
            self.hits as f64 / self.probes() as f64
        }
    }
}

struct CacheState {
    map: HashMap<u128, Estimate>,
    /// Generation the cached entries were produced under.
    generation: u64,
}

/// Fingerprint-keyed cross-call estimate cache with generation-based
/// invalidation (module docs have the full contract).
pub struct EstimateCache {
    state: Mutex<CacheState>,
    capacity: usize,
    source: Option<Arc<dyn GenerationSource>>,
    recorder: Arc<dyn Recorder>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl std::fmt::Debug for EstimateCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EstimateCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl EstimateCache {
    /// A cache for an estimator that never changes (generation pinned at
    /// 0, no invalidation), bounded by [`DEFAULT_CACHE_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// [`new`](Self::new) with an explicit entry bound.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::build(capacity, None)
    }

    /// A cache whose validity is tied to `source` (typically the serving
    /// layer's `ModelSlot`): whenever `source.generation()` moves, all
    /// entries are dropped on the next probe and counted as
    /// invalidations.
    pub fn with_generation_source(source: Arc<dyn GenerationSource>) -> Self {
        Self::build(DEFAULT_CACHE_CAPACITY, Some(source))
    }

    /// [`with_generation_source`](Self::with_generation_source) with an
    /// explicit entry bound.
    pub fn with_generation_source_and_capacity(
        source: Arc<dyn GenerationSource>,
        capacity: usize,
    ) -> Self {
        Self::build(capacity, Some(source))
    }

    fn build(capacity: usize, source: Option<Arc<dyn GenerationSource>>) -> Self {
        let generation = source.as_ref().map_or(0, |s| s.generation());
        EstimateCache {
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                generation,
            }),
            capacity: capacity.max(1),
            source,
            recorder: Arc::new(NoopRecorder),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Route `cache.{hit,miss,evict,invalidate}` counters to `recorder`
    /// (builder form; the default sink is a [`NoopRecorder`]).
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        // An estimate cache holds no invariants a panicking writer could
        // tear (entries are immutable once inserted); adopt the inner
        // state rather than cascading the poison.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Drop all entries if the source generation moved since they were
    /// filled. Returns the current generation.
    fn sync_generation(&self, state: &mut CacheState) -> u64 {
        if let Some(source) = &self.source {
            let now = source.generation();
            if now != state.generation {
                let dropped = state.map.len() as u64;
                state.map.clear();
                state.generation = now;
                if dropped > 0 {
                    self.invalidations.fetch_add(dropped, Ordering::Relaxed);
                    self.recorder.add(INVALIDATE, dropped);
                }
            }
        }
        state.generation
    }

    /// Look up `fp`, invalidating first if the model generation moved.
    /// Every call is exactly one hit or one miss.
    pub fn probe(&self, fp: QueryFingerprint) -> Probe {
        let mut state = self.lock();
        let generation = self.sync_generation(&mut state);
        match state.map.get(&fp.0) {
            Some(est) => {
                let est = est.clone();
                drop(state);
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.recorder.incr(HIT);
                Probe::Hit(est)
            }
            None => {
                drop(state);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.recorder.incr(MISS);
                Probe::Miss(FillToken { generation })
            }
        }
    }

    /// Publish the estimate computed for a [`Probe::Miss`]. Rejected
    /// (silently — the cache stays correct, the work is merely lost) if
    /// the generation moved since the probe, so stale estimates never
    /// enter a fresh cache. At capacity the whole table is swept (epoch
    /// eviction — sub-plan working sets are small and bookkeeping-free
    /// sweeps beat per-entry LRU at this size), counted as evictions.
    pub fn fill(&self, fp: QueryFingerprint, estimate: Estimate, token: FillToken) {
        let mut state = self.lock();
        let generation = self.sync_generation(&mut state);
        if token.generation != generation {
            return;
        }
        if state.map.len() >= self.capacity {
            let dropped = state.map.len() as u64;
            state.map.clear();
            self.evictions.fetch_add(dropped, Ordering::Relaxed);
            self.recorder.add(EVICT, dropped);
        }
        state.map.insert(fp.0, estimate);
    }

    /// Drop every entry unconditionally (counted as evictions).
    pub fn clear(&self) {
        let mut state = self.lock();
        let dropped = state.map.len() as u64;
        state.map.clear();
        if dropped > 0 {
            self.evictions.fetch_add(dropped, Ordering::Relaxed);
            self.recorder.add(EVICT, dropped);
        }
    }
}

impl Default for EstimateCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Gen;

    struct Bumpable(Gen);

    impl GenerationSource for Bumpable {
        fn generation(&self) -> u64 {
            self.0.load(Ordering::Relaxed)
        }
    }

    fn fp(x: u128) -> QueryFingerprint {
        QueryFingerprint(x)
    }

    fn est(v: f64) -> Estimate {
        Estimate::primary(v, "test")
    }

    #[test]
    fn probe_fill_roundtrip_and_conservation() {
        let cache = EstimateCache::new();
        let Probe::Miss(token) = cache.probe(fp(1)) else {
            panic!("empty cache must miss");
        };
        cache.fill(fp(1), est(42.0), token);
        assert_eq!(cache.probe(fp(1)), Probe::Hit(est(42.0)));
        assert!(matches!(cache.probe(fp(2)), Probe::Miss(_)));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.probes(), 3);
        assert_eq!(stats.evictions + stats.invalidations, 0);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn generation_change_invalidates_everything() {
        let source = Arc::new(Bumpable(Gen::new(0)));
        let cache = EstimateCache::with_generation_source(source.clone());
        for i in 0..4 {
            let Probe::Miss(token) = cache.probe(fp(i)) else {
                panic!("miss expected");
            };
            cache.fill(fp(i), est(i as f64 + 1.0), token);
        }
        assert_eq!(cache.len(), 4);
        source.0.store(1, Ordering::Relaxed);
        // First probe after the swap sees an empty cache.
        assert!(matches!(cache.probe(fp(0)), Probe::Miss(_)));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().invalidations, 4);
    }

    #[test]
    fn stale_token_fill_is_rejected() {
        let source = Arc::new(Bumpable(Gen::new(0)));
        let cache = EstimateCache::with_generation_source(source.clone());
        let Probe::Miss(token) = cache.probe(fp(9)) else {
            panic!("miss expected");
        };
        // A swap lands between probe and fill: the estimate was computed
        // against the old model and must not be published.
        source.0.store(1, Ordering::Relaxed);
        cache.fill(fp(9), est(5.0), token);
        assert!(matches!(cache.probe(fp(9)), Probe::Miss(_)));
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn capacity_sweep_counts_evictions() {
        let cache = EstimateCache::with_capacity(2);
        for i in 0..3 {
            let Probe::Miss(token) = cache.probe(fp(i)) else {
                panic!("miss expected");
            };
            cache.fill(fp(i), est(1.0), token);
        }
        // Third fill swept the first two.
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 2);
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().evictions, 3);
    }

    #[test]
    fn counters_reach_the_recorder() {
        let recorder = Arc::new(qfe_obs::MetricsRecorder::new());
        let source = Arc::new(Bumpable(Gen::new(0)));
        let cache = EstimateCache::with_generation_source_and_capacity(source.clone(), 1)
            .with_recorder(recorder.clone());
        let Probe::Miss(t) = cache.probe(fp(1)) else {
            panic!()
        };
        cache.fill(fp(1), est(2.0), t);
        cache.probe(fp(1));
        let Probe::Miss(t) = cache.probe(fp(2)) else {
            panic!()
        };
        cache.fill(fp(2), est(3.0), t); // sweeps fp(1)
        source.0.store(5, Ordering::Relaxed);
        cache.probe(fp(2)); // invalidates 1 entry, then misses
        assert_eq!(recorder.counter("cache.hit"), 1);
        assert_eq!(recorder.counter("cache.miss"), 3);
        assert_eq!(recorder.counter("cache.evict"), 1);
        assert_eq!(recorder.counter("cache.invalidate"), 1);
        // Conservation: probes == hits + misses.
        let s = cache.stats();
        assert_eq!(s.probes(), s.hits + s.misses);
        assert_eq!(s.probes(), 4);
    }
}
