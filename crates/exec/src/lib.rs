//! # qfe-exec
//!
//! Query execution over `qfe-data` tables:
//!
//! * [`bitmap`] / [`eval`] — vectorized predicate evaluation into selection
//!   bitmaps, including mixed (AND/OR) compound predicates.
//! * [`count`] — exact result cardinalities for selection and join queries;
//!   this is the labeling oracle that produces training/test cardinalities
//!   for the learned estimators and the ground truth for q-errors.
//! * [`join`] — hash-join machinery shared by counting and execution.
//! * [`cache`] — cross-call sub-plan estimate cache keyed on semantic
//!   query fingerprints, with generation-based invalidation for
//!   hot-swapped models.
//! * [`optimizer`] — a cost-based dynamic-programming join-order optimizer
//!   parameterized by any [`qfe_core::CardinalityEstimator`]; used by the
//!   end-to-end experiment (paper Table 4) to measure how estimate quality
//!   translates into plan quality and runtime.
//! * [`executor`] — physical execution of optimized plans with measured
//!   wall-clock time.

pub mod bitmap;
pub mod cache;
pub mod count;
pub mod eval;
pub mod executor;
pub mod join;
pub mod optimizer;

pub use bitmap::Bitmap;
pub use cache::{CacheStats, EstimateCache, FillToken, Probe};
pub use count::true_cardinality;
pub use optimizer::{JoinPlan, OptimizeError, OptimizeStats, OptimizedPlan, Optimizer};
