//! Selection bitmaps: one bit per row, with the boolean algebra needed to
//! evaluate mixed predicates.

/// A fixed-length bitmap over table rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zero bitmap of `len` rows.
    pub fn zeros(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-one bitmap of `len` rows.
    pub fn ones(len: usize) -> Self {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.clear_tail();
        b
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set the bit for `row`.
    ///
    /// # Panics
    /// Panics if `row >= len`.
    pub fn set(&mut self, row: usize) {
        assert!(row < self.len, "row {row} out of bounds ({})", self.len);
        self.words[row / 64] |= 1u64 << (row % 64);
    }

    /// Read the bit for `row`.
    pub fn get(&self, row: usize) -> bool {
        assert!(row < self.len, "row {row} out of bounds ({})", self.len);
        self.words[row / 64] >> (row % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// In-place intersection.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn and_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union.
    pub fn or_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place complement.
    pub fn not_in_place(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.clear_tail();
    }

    /// Iterate over set row indices in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Collect set rows as `u32` indices.
    pub fn to_rows(&self) -> Vec<u32> {
        let mut rows = Vec::with_capacity(self.count() as usize);
        rows.extend(self.iter_ones().map(|r| r as u32));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_counts() {
        assert_eq!(Bitmap::zeros(100).count(), 0);
        assert_eq!(Bitmap::ones(100).count(), 100);
        assert_eq!(Bitmap::ones(0).count(), 0);
        assert!(Bitmap::zeros(0).is_empty());
    }

    #[test]
    fn tail_bits_are_clear() {
        // 65 rows → 2 words, only 1 tail bit used in the second.
        let b = Bitmap::ones(65);
        assert_eq!(b.count(), 65);
        let mut c = Bitmap::zeros(65);
        c.not_in_place();
        assert_eq!(c.count(), 65);
    }

    #[test]
    fn set_get() {
        let mut b = Bitmap::zeros(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn boolean_algebra() {
        let mut a = Bitmap::zeros(10);
        a.set(1);
        a.set(3);
        let mut b = Bitmap::zeros(10);
        b.set(3);
        b.set(5);
        let mut and = a.clone();
        and.and_with(&b);
        assert_eq!(and.to_rows(), vec![3]);
        let mut or = a.clone();
        or.or_with(&b);
        assert_eq!(or.to_rows(), vec![1, 3, 5]);
        let mut not = a.clone();
        not.not_in_place();
        assert_eq!(not.count(), 8);
        assert!(!not.get(1));
        assert!(not.get(0));
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = Bitmap::zeros(200);
        for r in [5, 63, 64, 127, 128, 199] {
            b.set(r);
        }
        let rows: Vec<usize> = b.iter_ones().collect();
        assert_eq!(rows, vec![5, 63, 64, 127, 128, 199]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_set_panics() {
        Bitmap::zeros(10).set(10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_and_panics() {
        let mut a = Bitmap::zeros(10);
        a.and_with(&Bitmap::zeros(11));
    }
}
