//! Vectorized predicate evaluation into selection bitmaps.

use qfe_core::predicate::{CompoundPredicate, PredicateExpr, SimplePredicate};
use qfe_core::CmpOp;
use qfe_data::{Column, Table};

use crate::bitmap::Bitmap;

/// Evaluate one simple predicate over a column.
pub fn eval_simple(column: &Column, pred: &SimplePredicate) -> Bitmap {
    let n = column.len();
    let mut bm = Bitmap::zeros(n);
    let Some(rhs) = pred.value.as_f64() else {
        // Raw string literals never match: they must be dictionary-encoded
        // before execution.
        return bm;
    };
    match column {
        Column::Int(values) => {
            // Integer fast path: compare in i64 when the literal is
            // integral, avoiding float conversion per row.
            if rhs.fract() == 0.0 && rhs.abs() < 9e15 {
                let rhs = rhs as i64;
                for (row, &v) in values.iter().enumerate() {
                    if pred.op.eval_i64(v, rhs) {
                        bm.set(row);
                    }
                }
            } else {
                for (row, &v) in values.iter().enumerate() {
                    if pred.op.eval_f64(v as f64, rhs) {
                        bm.set(row);
                    }
                }
            }
        }
        Column::Float(values) => {
            for (row, &v) in values.iter().enumerate() {
                if pred.op.eval_f64(v, rhs) {
                    bm.set(row);
                }
            }
        }
        Column::Dict { codes, .. } => {
            for (row, &c) in codes.iter().enumerate() {
                if pred.op.eval_f64(c as f64, rhs) {
                    bm.set(row);
                }
            }
        }
    }
    bm
}

/// Evaluate an arbitrary AND/OR predicate expression over a column.
pub fn eval_expr(column: &Column, expr: &PredicateExpr) -> Bitmap {
    match expr {
        PredicateExpr::Leaf(p) => eval_simple(column, p),
        PredicateExpr::And(children) => {
            let mut acc = Bitmap::ones(column.len());
            for child in children {
                acc.and_with(&eval_expr(column, child));
            }
            acc
        }
        PredicateExpr::Or(children) => {
            let mut acc = Bitmap::zeros(column.len());
            for child in children {
                acc.or_with(&eval_expr(column, child));
            }
            acc
        }
    }
}

/// Evaluate one compound predicate over its table.
pub fn eval_compound(table: &Table, cp: &CompoundPredicate) -> Bitmap {
    eval_expr(table.column(cp.column.column), &cp.expr)
}

/// Selection bitmap of a conjunction of compound predicates over one table
/// (the per-table filter of a query).
pub fn selection_bitmap(table: &Table, predicates: &[&CompoundPredicate]) -> Bitmap {
    let mut acc = Bitmap::ones(table.row_count());
    for cp in predicates {
        acc.and_with(&eval_compound(table, cp));
    }
    acc
}

/// Brute-force row check used as a test oracle (and by the sampling
/// estimator for sampled rows).
pub fn row_matches(table: &Table, predicates: &[&CompoundPredicate], row: usize) -> bool {
    predicates.iter().all(|cp| {
        let v = table.column(cp.column.column).get_f64(row);
        cp.expr.matches_f64(v)
    })
}

/// Evaluate a simple predicate via an explicit match — kept for clarity in
/// examples of how `CmpOp` maps onto scans.
pub fn scan_count(column: &Column, op: CmpOp, rhs: f64) -> u64 {
    (0..column.len())
        .filter(|&row| op.eval_f64(column.get_f64(row), rhs))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfe_core::query::ColumnRef;
    use qfe_core::schema::{ColumnId, TableId};

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                ("a".into(), Column::Int((0..100).collect())),
                (
                    "b".into(),
                    Column::Float((0..100).map(|i| i as f64 / 10.0).collect()),
                ),
            ],
        )
    }

    fn col(i: usize) -> ColumnRef {
        ColumnRef::new(TableId(0), ColumnId(i))
    }

    #[test]
    fn simple_ops_on_int_column() {
        let t = table();
        let c = t.column(ColumnId(0));
        assert_eq!(
            eval_simple(c, &SimplePredicate::new(CmpOp::Lt, 10)).count(),
            10
        );
        assert_eq!(
            eval_simple(c, &SimplePredicate::new(CmpOp::Le, 10)).count(),
            11
        );
        assert_eq!(
            eval_simple(c, &SimplePredicate::new(CmpOp::Eq, 42)).count(),
            1
        );
        assert_eq!(
            eval_simple(c, &SimplePredicate::new(CmpOp::Ne, 42)).count(),
            99
        );
        assert_eq!(
            eval_simple(c, &SimplePredicate::new(CmpOp::Gt, 89)).count(),
            10
        );
        assert_eq!(
            eval_simple(c, &SimplePredicate::new(CmpOp::Ge, 90)).count(),
            10
        );
    }

    #[test]
    fn float_literal_on_int_column() {
        let t = table();
        let c = t.column(ColumnId(0));
        // a < 9.5 matches 0..=9.
        assert_eq!(
            eval_simple(c, &SimplePredicate::new(CmpOp::Lt, 9.5)).count(),
            10
        );
    }

    #[test]
    fn float_column() {
        let t = table();
        let c = t.column(ColumnId(1));
        assert_eq!(
            eval_simple(c, &SimplePredicate::new(CmpOp::Ge, 5.0)).count(),
            50
        );
    }

    #[test]
    fn raw_string_literal_matches_nothing() {
        let t = table();
        let c = t.column(ColumnId(0));
        assert_eq!(
            eval_simple(c, &SimplePredicate::new(CmpOp::Eq, "raw")).count(),
            0
        );
    }

    #[test]
    fn expr_and_or_match_semantics() {
        let t = table();
        let c = t.column(ColumnId(0));
        // (a < 10 OR a >= 90) AND a <> 5  → 19 rows
        let e = PredicateExpr::And(vec![
            PredicateExpr::Or(vec![
                PredicateExpr::leaf(CmpOp::Lt, 10),
                PredicateExpr::leaf(CmpOp::Ge, 90),
            ]),
            PredicateExpr::leaf(CmpOp::Ne, 5),
        ]);
        let bm = eval_expr(c, &e);
        assert_eq!(bm.count(), 19);
        // Cross-check against scalar evaluation.
        for row in 0..100 {
            assert_eq!(bm.get(row), e.matches_f64(row as f64), "row {row}");
        }
    }

    #[test]
    fn selection_bitmap_intersects_compounds() {
        let t = table();
        let cp_a = CompoundPredicate::conjunction(
            col(0),
            vec![
                SimplePredicate::new(CmpOp::Ge, 20),
                SimplePredicate::new(CmpOp::Lt, 60),
            ],
        );
        let cp_b =
            CompoundPredicate::conjunction(col(1), vec![SimplePredicate::new(CmpOp::Lt, 4.0)]);
        let bm = selection_bitmap(&t, &[&cp_a, &cp_b]);
        // a in [20, 60) AND b < 4.0 (b = a/10) → a in [20, 40).
        assert_eq!(bm.count(), 20);
        for row in bm.iter_ones() {
            assert!(row_matches(&t, &[&cp_a, &cp_b], row));
        }
    }

    #[test]
    fn empty_predicate_list_selects_all() {
        let t = table();
        assert_eq!(selection_bitmap(&t, &[]).count(), 100);
    }

    #[test]
    fn scan_count_oracle() {
        let t = table();
        assert_eq!(scan_count(t.column(ColumnId(0)), CmpOp::Lt, 50.0), 50);
    }
}
