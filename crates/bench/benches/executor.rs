//! Criterion micro-benchmarks of the execution substrate: selection
//! bitmap throughput and join-count throughput (the labeling oracle's
//! hot paths).

use criterion::{criterion_group, criterion_main, Criterion};

use qfe_core::predicate::{CmpOp, CompoundPredicate, SimplePredicate};
use qfe_core::query::{ColumnRef, JoinPredicate};
use qfe_core::{ColumnId, Query, TableId};
use qfe_data::imdb::{generate_imdb, ImdbConfig};
use qfe_data::table::Table;
use qfe_data::{Column, Database};
use qfe_exec::eval::selection_bitmap;
use qfe_exec::true_cardinality;

fn bench_selection(c: &mut Criterion) {
    let table = Table::new(
        "t",
        vec![(
            "a".into(),
            Column::Int((0..500_000).map(|i| i % 1000).collect()),
        )],
    );
    let cp = CompoundPredicate::conjunction(
        ColumnRef::new(TableId(0), ColumnId(0)),
        vec![
            SimplePredicate::new(CmpOp::Ge, 100),
            SimplePredicate::new(CmpOp::Le, 600),
            SimplePredicate::new(CmpOp::Ne, 250),
        ],
    );
    c.bench_function("selection_500k_rows", |b| {
        b.iter(|| std::hint::black_box(selection_bitmap(&table, &[&cp]).count()))
    });
}

fn bench_join_count(c: &mut Criterion) {
    let db: Database = generate_imdb(&ImdbConfig {
        titles: 10_000,
        seed: 2,
    });
    let title = db.table_id("title").unwrap();
    let ci = db.table_id("cast_info").unwrap();
    let mk = db.table_id("movie_keyword").unwrap();
    let title_id = ColumnId(0);
    let q = Query {
        tables: vec![title, ci, mk],
        joins: vec![
            JoinPredicate {
                left: ColumnRef::new(ci, ColumnId(0)),
                right: ColumnRef::new(title, title_id),
            },
            JoinPredicate {
                left: ColumnRef::new(mk, ColumnId(0)),
                right: ColumnRef::new(title, title_id),
            },
        ],
        predicates: vec![CompoundPredicate::conjunction(
            ColumnRef::new(title, ColumnId(2)),
            vec![SimplePredicate::new(CmpOp::Ge, 2000)],
        )],
    };
    let mut group = c.benchmark_group("join_count");
    group.sample_size(20);
    group.bench_function("three_way_star", |b| {
        b.iter(|| std::hint::black_box(true_cardinality(&db, &q).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_selection, bench_join_count);
criterion_main!(benches);
