//! Criterion micro-benchmarks of the ML substrate: forward-pass latency
//! of trained GB / NN models and GBDT training throughput.

use criterion::{criterion_group, criterion_main, Criterion};

use qfe_ml::gbdt::{Gbdt, GbdtConfig};
use qfe_ml::matrix::Matrix;
use qfe_ml::mlp::{Mlp, MlpConfig};
use qfe_ml::train::Regressor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn make_data(n: usize, dim: usize) -> (Matrix, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f32> = (0..dim).map(|_| rng.gen()).collect();
        y.push(row.iter().sum::<f32>() / dim as f32);
        rows.push(row);
    }
    (Matrix::from_rows(&rows), y)
}

fn bench_forward_pass(c: &mut Criterion) {
    let (x, y) = make_data(2000, 128);
    let mut gb = Gbdt::new(GbdtConfig {
        n_trees: 60,
        ..GbdtConfig::default()
    });
    gb.fit(&x, &y);
    let mut nn = Mlp::new(MlpConfig {
        hidden: vec![64, 64],
        epochs: 3,
        ..MlpConfig::default()
    });
    nn.fit(&x, &y);

    let mut group = c.benchmark_group("forward_pass");
    let sample = x.row(7).to_vec();
    group.bench_function("gbdt_single", |b| {
        b.iter(|| std::hint::black_box(gb.predict(&sample)))
    });
    group.bench_function("mlp_single", |b| {
        b.iter(|| std::hint::black_box(nn.predict(&sample)))
    });
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let (x, y) = make_data(1000, 64);
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.bench_function("gbdt_20_trees", |b| {
        b.iter(|| {
            let mut gb = Gbdt::new(GbdtConfig {
                n_trees: 20,
                ..GbdtConfig::default()
            });
            gb.fit(&x, &y);
            std::hint::black_box(gb.tree_count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_forward_pass, bench_training);
criterion_main!(benches);
