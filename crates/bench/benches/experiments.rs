//! The full experiment suite: regenerates every table and figure of the
//! paper in one run (`cargo bench -p qfe-bench --bench experiments`).
//!
//! This is a custom `harness = false` bench target, not a criterion
//! micro-benchmark: the "benchmark" here is the paper's evaluation itself.
//! Scale via `QFE_SCALE=smoke|small|full` (default `small`).

use std::time::Instant;

use qfe_bench::envs::{ForestEnv, ImdbEnv};
use qfe_bench::{experiments, Scale};

fn main() {
    // `cargo bench` passes --bench and filter args; a filter selects a
    // subset of experiments by substring.
    let filter: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let selected = |name: &str| filter.is_empty() || filter.iter().any(|f| name.contains(f));

    let scale = Scale::from_env();
    println!(
        "qfe experiment suite — scale '{}' (set QFE_SCALE=smoke|small|full)",
        scale.label
    );
    let total = Instant::now();

    let forest_names = [
        "fig1",
        "fig2",
        "fig3",
        "tab3",
        "fig4",
        "fig5",
        "tab6",
        "tab7",
        "sec552",
        "sec6",
        "ablations",
    ];
    let imdb_names = ["tab1", "tab2", "tab4", "tab5"];

    let need_forest = forest_names.iter().any(|n| selected(n));
    let need_imdb = imdb_names.iter().any(|n| selected(n));

    let forest = need_forest.then(|| {
        let t = Instant::now();
        let env = ForestEnv::build(&scale);
        println!(
            "[setup] forest env: {} rows, {}+{} conj, {}+{} mixed queries ({:.1}s)",
            scale.forest_rows,
            env.conj_train.len(),
            env.conj_test.len(),
            env.mixed_train.len(),
            env.mixed_test.len(),
            t.elapsed().as_secs_f64()
        );
        env
    });
    let imdb = need_imdb.then(|| {
        let t = Instant::now();
        let env = ImdbEnv::build(&scale);
        println!(
            "[setup] imdb env: {} titles, {} train joins, {} suite queries ({:.1}s)",
            scale.imdb_titles,
            env.train.len(),
            env.suite.len(),
            t.elapsed().as_secs_f64()
        );
        env
    });

    macro_rules! run {
        ($name:literal, $module:ident, $env:expr) => {
            if selected($name) {
                let t = Instant::now();
                let _ = experiments::$module::run($env, &scale);
                println!("[{}] done in {:.1}s", $name, t.elapsed().as_secs_f64());
            }
        };
    }

    if let Some(env) = &forest {
        run!("fig1", fig1, env);
        run!("fig2", fig2, env);
        run!("fig3", fig3, env);
        run!("tab3", tab3, env);
        run!("fig4", fig4, env);
        run!("fig5", fig5, env);
        run!("tab6", tab6, env);
        run!("tab7", tab7, env);
        run!("sec552", sec552, env);
        run!("sec6", sec6, env);
        run!("ablations", ablations, env);
    }
    if let Some(env) = &imdb {
        run!("tab1", tab1, env);
        run!("tab2", tab2, env);
        run!("tab4", tab4, env);
        run!("tab5", tab5, env);
    }

    println!(
        "\nexperiment suite finished in {:.1}s",
        total.elapsed().as_secs_f64()
    );
}
