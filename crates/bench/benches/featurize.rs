//! Criterion micro-benchmark of featurization latency per QFT — the
//! precise version of the paper's Table 7 (µs per query).

use criterion::{criterion_group, criterion_main, Criterion};

use qfe_bench::envs::ForestEnv;
use qfe_bench::trainers::{make_featurizer, QftKind};
use qfe_bench::Scale;
use qfe_core::featurize::AttributeSpace;
use qfe_core::TableId;

fn bench_featurization(c: &mut Criterion) {
    let scale = Scale::smoke();
    let env = ForestEnv::build(&scale);
    let space = AttributeSpace::for_table(env.db.catalog(), TableId(0));
    let mut group = c.benchmark_group("featurize");
    for qft in QftKind::ALL {
        let featurizer = make_featurizer(qft, space.clone(), 64, true);
        let queries = match qft {
            QftKind::Complex => &env.mixed_test.queries,
            _ => &env.conj_test.queries,
        };
        group.bench_function(qft.label(), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                std::hint::black_box(featurizer.featurize(q).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_featurization);
criterion_main!(benches);
