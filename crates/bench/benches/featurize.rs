//! Criterion micro-benchmark of featurization latency per QFT — the
//! precise version of the paper's Table 7 (µs per query).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use qfe_bench::envs::ForestEnv;
use qfe_bench::trainers::{make_featurizer, QftKind};
use qfe_bench::Scale;
use qfe_core::featurize::{AttributeSpace, Featurizer};
use qfe_core::TableId;
use qfe_obs::{NoopRecorder, ObservedFeaturizer};

fn bench_featurization(c: &mut Criterion) {
    let scale = Scale::smoke();
    let env = ForestEnv::build(&scale);
    let space = AttributeSpace::for_table(env.db.catalog(), TableId(0));
    let mut group = c.benchmark_group("featurize");
    for qft in QftKind::ALL {
        let featurizer = make_featurizer(qft, space.clone(), 64, true);
        let queries = match qft {
            QftKind::Complex => &env.mixed_test.queries,
            _ => &env.conj_test.queries,
        };
        group.bench_function(qft.label(), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                std::hint::black_box(featurizer.featurize(q).unwrap())
            });
        });
    }
    group.finish();
}

/// The acceptance bar for the observability layer: wrapping a featurizer
/// in [`ObservedFeaturizer`] with the no-op recorder must not measurably
/// change featurization latency (the per-call cost is one virtual call
/// into empty method bodies).
fn bench_noop_recorder_overhead(c: &mut Criterion) {
    let scale = Scale::smoke();
    let env = ForestEnv::build(&scale);
    let space = AttributeSpace::for_table(env.db.catalog(), TableId(0));
    let queries = &env.conj_test.queries;
    let mut group = c.benchmark_group("featurize-observed");
    let bare = make_featurizer(QftKind::Conjunctive, space.clone(), 64, true);
    group.bench_function("bare", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            std::hint::black_box(bare.featurize(q).unwrap())
        });
    });
    let observed = ObservedFeaturizer::new(
        make_featurizer(QftKind::Conjunctive, space, 64, true),
        Arc::new(NoopRecorder),
    );
    group.bench_function("noop-observed", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            std::hint::black_box(observed.featurize(q).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_featurization, bench_noop_recorder_overhead);
criterion_main!(benches);
