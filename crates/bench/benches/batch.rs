//! Criterion micro-benchmarks of the batched execution path against its
//! singleton equivalent, at the three layers that grew a batch fast
//! path:
//!
//! * `featurize-batch` — per-query [`Featurizer::featurize`] (one
//!   allocation per query) vs the [`FeatureMatrix`] arena (one
//!   allocation per batch, `featurize_into` rows);
//! * `estimate-batch` — per-query `try_estimate` vs one
//!   `estimate_batch` (one featurize pass, one model forward);
//! * `serve-batch` — `EstimatorService::estimate_within` per query
//!   (admission, deadline bookkeeping, and a watchdog thread per stage
//!   call) vs `estimate_batch_within` (all of that once per batch).
//!
//! The committed throughput record lives in `BENCH_batch.json`,
//! produced by the `bench_batch` binary; this bench is the precise
//! criterion view of the same comparison.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use qfe_bench::envs::ForestEnv;
use qfe_bench::trainers::{train_single_table, ModelKind, QftKind};
use qfe_bench::Scale;
use qfe_core::featurize::{AttributeSpace, FeatureMatrix, Featurizer};
use qfe_core::{CardinalityEstimator, Deadline, Query, TableId};
use qfe_serve::{EstimatorService, ServiceConfig, SharedEstimator};

const BATCH: usize = 64;

fn batch_of(queries: &[Query], n: usize) -> Vec<Query> {
    (0..n).map(|i| queries[i % queries.len()].clone()).collect()
}

fn bench_featurize_batch(c: &mut Criterion) {
    let scale = Scale::smoke();
    let env = ForestEnv::build(&scale);
    let space = AttributeSpace::for_table(env.db.catalog(), TableId(0));
    let featurizer = qfe_bench::trainers::make_featurizer(QftKind::Conjunctive, space, 64, true);
    let batch = batch_of(&env.conj_test.queries, BATCH);
    let mut group = c.benchmark_group("featurize-batch");
    group.bench_function("singleton-x64", |b| {
        b.iter(|| {
            for q in &batch {
                std::hint::black_box(featurizer.featurize(q).unwrap());
            }
        });
    });
    group.bench_function("arena-x64", |b| {
        b.iter(|| {
            let m = FeatureMatrix::build(featurizer.as_ref(), &batch);
            assert_eq!(m.ok_rows(), BATCH);
            std::hint::black_box(m)
        });
    });
    group.finish();
}

fn bench_estimate_batch(c: &mut Criterion) {
    let scale = Scale::smoke();
    let env = ForestEnv::build(&scale);
    let est = train_single_table(
        env.db.catalog(),
        TableId(0),
        &env.conj_train,
        QftKind::Conjunctive,
        ModelKind::Gb,
        &scale,
        true,
    );
    let batch = batch_of(&env.conj_test.queries, BATCH);
    let mut group = c.benchmark_group("estimate-batch");
    group.bench_function("singleton-x64", |b| {
        b.iter(|| {
            for q in &batch {
                std::hint::black_box(est.try_estimate(q).unwrap());
            }
        });
    });
    group.bench_function("batched-x64", |b| {
        b.iter(|| {
            let rows = est.estimate_batch(&batch);
            assert_eq!(rows.len(), BATCH);
            std::hint::black_box(rows)
        });
    });
    group.finish();
}

fn bench_serve_batch(c: &mut Criterion) {
    let scale = Scale::smoke();
    let env = ForestEnv::build(&scale);
    let est = train_single_table(
        env.db.catalog(),
        TableId(0),
        &env.conj_train,
        QftKind::Conjunctive,
        ModelKind::Gb,
        &scale,
        true,
    );
    let svc = EstimatorService::new(
        vec![Arc::new(est) as SharedEstimator],
        ServiceConfig::default(),
    );
    let batch = batch_of(&env.conj_test.queries, BATCH);
    let budget = Duration::from_millis(100);
    let mut group = c.benchmark_group("serve-batch");
    group.bench_function("singleton-x64", |b| {
        b.iter(|| {
            for q in &batch {
                std::hint::black_box(svc.estimate_within(q, Deadline::within(budget)).unwrap());
            }
        });
    });
    group.bench_function("batched-x64", |b| {
        b.iter(|| {
            let rows = svc.estimate_batch_within(&batch, Deadline::within(budget));
            assert_eq!(rows.len(), BATCH);
            std::hint::black_box(rows)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_featurize_batch,
    bench_estimate_batch,
    bench_serve_batch
);
criterion_main!(benches);
