//! Standalone runner for the fig5 experiment (see `qfe_bench::experiments::fig5`).
//! Scale via `QFE_SCALE=smoke|small|full`.

fn main() {
    let scale = qfe_bench::Scale::from_env();
    eprintln!("building forest environment at scale '{}'…", scale.label);
    let env = qfe_bench::envs::ForestEnv::build(&scale);
    qfe_bench::experiments::fig5::run(&env, &scale);
}
