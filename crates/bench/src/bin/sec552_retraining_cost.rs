//! Standalone runner for the sec552 experiment (see `qfe_bench::experiments::sec552`).
//! Scale via `QFE_SCALE=smoke|small|full`.

fn main() {
    let scale = qfe_bench::Scale::from_env();
    eprintln!("building forest environment at scale '{}'…", scale.label);
    let env = qfe_bench::envs::ForestEnv::build(&scale);
    qfe_bench::experiments::sec552::run(&env, &scale);
}
