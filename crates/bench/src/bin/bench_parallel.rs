//! Scaling record for the parallel execution layer: GBDT training on
//! the forest conjunctive workload at smoke scale, timed on pools of
//! 1/2/4/8 threads via the `qfe_core::parallel::with_pool` override.
//! Writes the machine-readable record to `BENCH_parallel.json` (override
//! with `QFE_BENCH_JSON`).
//!
//! Two gates, one hard and one environmental:
//!
//! * **Determinism (hard):** the serialized model bytes must be
//!   identical at every thread count. Any mismatch is a violation of the
//!   determinism contract (fixed chunk boundaries, chunk-order
//!   reduction) and exits non-zero regardless of hardware.
//! * **Scaling (environmental):** the 4-thread speedup is recorded, and
//!   enforced (≥ `QFE_MIN_SPEEDUP`, default 2.0) only when the machine
//!   actually has ≥ 4 cores — on a 1-core container the pool degrades to
//!   inline execution and a speedup is physically impossible, so the
//!   record stays honest (`cores` is part of the JSON) without failing.

use std::sync::Arc;
use std::time::Instant;

use qfe_bench::envs::ForestEnv;
use qfe_bench::trainers::{make_featurizer, QftKind};
use qfe_bench::Scale;
use qfe_core::featurize::{AttributeSpace, FeatureMatrix};
use qfe_core::parallel::{with_pool, ThreadPool};
use qfe_core::TableId;
use qfe_ml::{gbdt_to_bytes, Gbdt, GbdtConfig, Matrix, Regressor};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let scale = Scale::from_env();
    eprintln!("building forest environment at scale '{}'…", scale.label);
    let env = ForestEnv::build(&scale);

    let space = AttributeSpace::for_table(env.db.catalog(), TableId(0));
    let featurizer = make_featurizer(QftKind::Conjunctive, space, scale.buckets, true);
    let fm = FeatureMatrix::build(featurizer.as_ref(), &env.conj_train.queries);
    let (rows, cols, data, _errors) = fm.into_raw();
    let x = Matrix::from_vec(rows, cols, data);
    let y: Vec<f32> = env
        .conj_train
        .cardinalities
        .iter()
        .map(|&c| (1.0 + c).ln() as f32)
        .collect();
    let cfg = GbdtConfig {
        n_trees: scale.gbdt_trees,
        min_samples_leaf: 3,
        max_leaves: 64,
        seed: 0,
        ..GbdtConfig::default()
    };

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "GBDT training scaling, forest conjunctive at scale '{}' ({rows} rows × {cols} features, {} trees, {cores} core(s)):",
        scale.label, cfg.n_trees
    );

    let mut runs: Vec<(usize, f64, Vec<u8>)> = Vec::new();
    for &threads in &THREAD_COUNTS {
        let pool = Arc::new(ThreadPool::new(threads));
        let (secs, bytes) = with_pool(&pool, || {
            // Warmup run so page faults / lazy allocs don't bill the
            // first timed config.
            let mut warm = Gbdt::new(cfg.clone());
            warm.fit(&x, &y);
            let mut gb = Gbdt::new(cfg.clone());
            let t0 = Instant::now();
            gb.fit(&x, &y);
            (t0.elapsed().as_secs_f64(), gbdt_to_bytes(&gb))
        });
        runs.push((threads, secs, bytes));
    }

    let base = runs[0].1;
    let mut identical = true;
    for (threads, secs, bytes) in &runs {
        let same = *bytes == runs[0].2;
        identical &= same;
        println!(
            "  {threads} thread(s): {:>7.3} s   speedup {:>5.2}×   model bytes {}",
            secs,
            base / secs,
            if same { "identical" } else { "DIVERGED" }
        );
    }

    let speedup_at = |t: usize| {
        runs.iter()
            .find(|(threads, _, _)| *threads == t)
            .map(|(_, secs, _)| base / secs)
            .unwrap_or(0.0)
    };
    let entries: Vec<String> = runs
        .iter()
        .map(|(threads, secs, _)| {
            format!(
                "{{\"threads\":{threads},\"seconds\":{:.4},\"speedup\":{:.3}}}",
                secs,
                base / secs
            )
        })
        .collect();
    // Timings from this record are only comparable to others measured on
    // the same hardware; spell out the caveat in the record itself so a
    // 1-core-container run (speedups pinned near 1×) is never misread as
    // a scaling regression.
    let environment = if cores < 4 {
        format!("{cores}-core container: pool degrades toward inline execution, speedups near 1x are expected; only the determinism gate is meaningful here")
    } else {
        format!("{cores} cores available: scaling gate enforced at 4 threads")
    };
    let json = format!(
        "{{\"workload\":\"forest-conjunctive\",\"scale\":\"{}\",\"rows\":{rows},\"features\":{cols},\"trees\":{},\"cores\":{cores},\"environment\":\"{environment}\",\"identical_models\":{identical},\"runs\":[{}],\"speedup_4t\":{:.3}}}\n",
        scale.label,
        cfg.n_trees,
        entries.join(","),
        speedup_at(4)
    );
    let path = std::env::var("QFE_BENCH_JSON").unwrap_or_else(|_| "BENCH_parallel.json".into());
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("wrote {path}");

    if !identical {
        eprintln!("DETERMINISM VIOLATION: model bytes differ across thread counts");
        std::process::exit(1);
    }
    let min_speedup: f64 = std::env::var("QFE_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    if cores >= 4 && speedup_at(4) < min_speedup {
        eprintln!(
            "SCALING REGRESSION: {:.2}× at 4 threads on a {cores}-core machine (need ≥ {min_speedup:.1}×)",
            speedup_at(4)
        );
        std::process::exit(1);
    }
    if cores < 4 {
        eprintln!(
            "note: {cores} core(s) available — scaling gate skipped, determinism gate enforced"
        );
    }
}
