//! CI accuracy gate: trains the GB model on the synthetic forest
//! workload at smoke scale for each of the four QFTs, asserts the median
//! q-error stays within the committed per-QFT bound, and writes the
//! machine-readable record to `ACCURACY.json` (override with
//! `QFE_ACCURACY_JSON`).
//!
//! The record is **timing-free by design**: everything in it is a pure
//! function of the seeded training run, so CI can run this bin twice —
//! once with `QFE_THREADS=1`, once with `QFE_THREADS=4` — and `diff` the
//! two outputs byte-for-byte. Any difference is a violation of the
//! determinism contract in `qfe_core::parallel` (fixed chunk boundaries,
//! chunk-order reduction). To make that check bite on the model itself
//! and not just its q-error quantiles, the record embeds FNV-1a
//! fingerprints of a GBDT's serialized bytes *and* of the compiled
//! inference form built from it (flattened node arrays, leaf table, and
//! quantization cuts), so compiled-model construction is under the same
//! determinism gate as training.
//!
//! Exits non-zero if any QFT's median q-error exceeds its bound.

use qfe_bench::envs::ForestEnv;
use qfe_bench::trainers::{make_featurizer, q_errors, train_single_table, ModelKind, QftKind};
use qfe_bench::Scale;
use qfe_core::featurize::{AttributeSpace, FeatureMatrix};
use qfe_core::metrics::ErrorSummary;
use qfe_core::TableId;
use qfe_ml::{gbdt_to_bytes, Gbdt, GbdtConfig, Matrix, Regressor};

/// Committed per-QFT median q-error bounds at smoke scale (GB model,
/// fixed seeds). Derived from the committed `ACCURACY.json` medians with
/// ≈50% headroom so legitimate refactors don't trip the gate while a
/// real accuracy regression (bad featurization, broken reduction order)
/// still does.
const BOUNDS: [(QftKind, f64); 4] = [
    (QftKind::Simple, 5.0),
    (QftKind::Range, 4.0),
    (QftKind::Conjunctive, 3.0),
    (QftKind::Complex, 2.7),
];

/// FNV-1a 64-bit over `bytes`, rendered as fixed-width hex.
fn fingerprint(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

fn main() {
    let scale = Scale::smoke();
    eprintln!("building forest environment at scale '{}'…", scale.label);
    let env = ForestEnv::build(&scale);

    // A raw GBDT training run whose serialized bytes go into the record:
    // the strongest possible determinism witness (every split threshold,
    // leaf value, and tree shape must match bit-for-bit across thread
    // counts for the fingerprint to agree).
    let space = AttributeSpace::for_table(env.db.catalog(), TableId(0));
    let featurizer = make_featurizer(QftKind::Conjunctive, space, scale.buckets, true);
    let fm = FeatureMatrix::build(featurizer.as_ref(), &env.conj_train.queries);
    let (rows, cols, data, _errors) = fm.into_raw();
    let x = Matrix::from_vec(rows, cols, data);
    let y: Vec<f32> = env
        .conj_train
        .cardinalities
        .iter()
        .map(|&c| (1.0 + c).ln() as f32)
        .collect();
    let mut gb = Gbdt::new(GbdtConfig {
        n_trees: scale.gbdt_trees,
        min_samples_leaf: 3,
        max_leaves: 64,
        seed: 0,
        ..GbdtConfig::default()
    });
    gb.fit(&x, &y);
    let gb_fp = fingerprint(&gbdt_to_bytes(&gb));
    eprintln!("gbdt fingerprint: {gb_fp}");
    // Same witness for the compiled-inference layer: the flattened node
    // arrays, leaf table, and quantization cuts compiled from that model
    // must also be identical across thread counts, or the binned serving
    // path would silently depend on the training pool.
    let compiled_fp = fingerprint(
        &gb.compiled_fingerprint_bytes()
            .expect("trained GB compiles"),
    );
    eprintln!("compiled fingerprint: {compiled_fp}");

    let mut rows_json = Vec::new();
    let mut failed = false;
    println!(
        "accuracy gate: GB on forest at scale '{}' (median q-error ≤ bound)",
        scale.label
    );
    for (qft, bound) in BOUNDS {
        let (train, test) = match qft {
            QftKind::Complex => (&env.mixed_train, &env.mixed_test),
            _ => (&env.conj_train, &env.conj_test),
        };
        let est = train_single_table(
            env.db.catalog(),
            TableId(0),
            train,
            qft,
            ModelKind::Gb,
            &scale,
            true,
        );
        let summary = ErrorSummary::from_errors(&q_errors(&est, test));
        let ok = summary.median <= bound;
        failed |= !ok;
        println!(
            "  GB + {:<7} median {:>8.3}   p95 {:>9.3}   p99 {:>9.3}   bound {:>5.1}   {}",
            qft.label(),
            summary.median,
            summary.p95,
            summary.p99,
            bound,
            if ok { "ok" } else { "FAIL" }
        );
        // Full-precision Display (shortest round-trip) so any bit-level
        // difference between thread counts shows up in the byte diff.
        rows_json.push(format!(
            "\"{}\":{{\"median\":{},\"p95\":{},\"p99\":{},\"max\":{},\"bound\":{}}}",
            qft.label(),
            summary.median,
            summary.p95,
            summary.p99,
            summary.max,
            bound
        ));
    }

    let json = format!(
        "{{\"workload\":\"forest\",\"scale\":\"{}\",\"model\":\"GB\",\"gbdt_fingerprint\":\"{}\",\"compiled_fingerprint\":\"{}\",\"qfts\":{{{}}}}}\n",
        scale.label,
        gb_fp,
        compiled_fp,
        rows_json.join(",")
    );
    let path = std::env::var("QFE_ACCURACY_JSON").unwrap_or_else(|_| "ACCURACY.json".into());
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("wrote {path}");

    if failed {
        eprintln!("ACCURACY REGRESSION: at least one QFT exceeded its committed bound");
        std::process::exit(1);
    }
}
