//! Optimizer throughput record for the sub-plan estimate cache: the full
//! JOB-light-like suite is optimized repeatedly with a trained local-model
//! estimator, once without any cross-call cache and once with a shared
//! [`qfe_exec::EstimateCache`]. Writes the machine-readable record to
//! `BENCH_optimizer.json` (override with `QFE_BENCH_JSON`), prints the
//! same numbers as text, and exits non-zero if the cached arm is slower
//! than the uncached arm, if the cache's counter conservation law breaks
//! (`probes != hits + misses`), or if any cached plan differs from its
//! uncached equivalent — the CI regression gate for this path. Scale via
//! `QFE_SCALE=smoke|small|full`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use qfe_bench::envs::ImdbEnv;
use qfe_bench::trainers::{train_local_models, ModelKind, QftKind};
use qfe_exec::{EstimateCache, Optimizer};

/// Run `f` (which optimizes `per_iter` queries) repeatedly for at least
/// `budget`, after one warmup call; returns microseconds per query.
fn measure(per_iter: usize, budget: Duration, mut f: impl FnMut()) -> f64 {
    f();
    let started = Instant::now();
    let mut iters = 0u64;
    while started.elapsed() < budget {
        f();
        iters += 1;
    }
    let total = started.elapsed().as_secs_f64() * 1e6;
    total / (iters as f64 * per_iter as f64)
}

fn main() {
    let scale = qfe_bench::Scale::from_env();
    eprintln!("building JOB-light environment at scale '{}'…", scale.label);
    let env = ImdbEnv::build(&scale);
    eprintln!("training GB × conjunctive local models…");
    let est = train_local_models(
        env.db.catalog(),
        &env.train,
        QftKind::Conjunctive,
        ModelKind::Gb,
        &scale,
        scale.buckets,
    );
    let queries = &env.suite.queries;
    let budget = Duration::from_millis(300);

    // Plan equivalence first: the cache must never change a plan choice.
    let uncached = Optimizer::new(&est);
    let cache = Arc::new(EstimateCache::new());
    let cached = Optimizer::new(&est).with_cache(cache.clone());
    let mut divergent = 0usize;
    for q in queries {
        let off = uncached.optimize(q).expect("optimizable query");
        let on = cached.optimize(q).expect("optimizable query");
        if off.plan != on.plan || off.cost.to_bits() != on.cost.to_bits() {
            divergent += 1;
        }
    }

    // Uncached arm: every sub-plan estimate reaches the estimator.
    let uncached_us = measure(queries.len(), budget, || {
        for q in queries {
            std::hint::black_box(uncached.optimize(q).expect("optimizable query"));
        }
    });

    // Cached arm: one shared cross-call cache over the whole suite; after
    // the warmup pass, every sub-plan estimate is a cache hit (the
    // Hyrise-style steady state of a workload with recurring sub-plans).
    let cached_us = measure(queries.len(), budget, || {
        for q in queries {
            std::hint::black_box(cached.optimize(q).expect("optimizable query"));
        }
    });

    let speedup = uncached_us / cached_us;
    let stats = cache.stats();
    let conserved = stats.probes() == stats.hits + stats.misses;

    println!(
        "optimizer over the JOB-light-like suite ({} queries, {}):",
        queries.len(),
        scale.label
    );
    println!("  uncached {uncached_us:>9.2} µs/query");
    println!("  cached   {cached_us:>9.2} µs/query   speedup {speedup:>5.2}×");
    println!(
        "  cache: {} hits / {} misses ({:.1}% hit rate), {} evictions, {} invalidations",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.evictions,
        stats.invalidations
    );

    let json = format!(
        "{{\"workload\":\"joblight\",\"scale\":\"{}\",\"queries\":{},\"uncached_us_per_query\":{:.3},\"cached_us_per_query\":{:.3},\"speedup\":{:.2},\"hit_rate\":{:.4},\"hits\":{},\"misses\":{},\"evictions\":{},\"invalidations\":{}}}\n",
        scale.label,
        queries.len(),
        uncached_us,
        cached_us,
        speedup,
        stats.hit_rate(),
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.invalidations
    );
    let path = std::env::var("QFE_BENCH_JSON").unwrap_or_else(|_| "BENCH_optimizer.json".into());
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("wrote {path}");

    let mut failed = false;
    if divergent > 0 {
        eprintln!("REGRESSION: {divergent} cached plans diverge from uncached plans");
        failed = true;
    }
    if !conserved {
        eprintln!(
            "REGRESSION: cache counters violate conservation ({} probes != {} hits + {} misses)",
            stats.probes(),
            stats.hits,
            stats.misses
        );
        failed = true;
    }
    if speedup < 1.0 {
        eprintln!("REGRESSION: cached optimization is slower than uncached ({speedup:.2}×)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
