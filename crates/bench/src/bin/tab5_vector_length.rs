//! Standalone runner for the tab5 experiment (see `qfe_bench::experiments::tab5`).
//! Scale via `QFE_SCALE=smoke|small|full`.

fn main() {
    let scale = qfe_bench::Scale::from_env();
    eprintln!("building IMDB environment at scale '{}'…", scale.label);
    let env = qfe_bench::envs::ImdbEnv::build(&scale);
    qfe_bench::experiments::tab5::run(&env, &scale);
}
