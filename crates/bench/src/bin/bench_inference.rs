//! Compiled-inference smoke gate: stage-by-stage timing of the estimator
//! hot path plus the hard equivalence gates for the compiled layer.
//!
//! Stages measured (µs/query, batch 64, forest conjunctive workload):
//!
//! * `featurize` — `f32` arena build alone.
//! * `featurize_binned` — `u16` binned arena build alone (featurize +
//!   quantize; the delta against `featurize` is the binning cost).
//! * `walk_reference` — enum-tree GBDT walk over a prebuilt `f32` matrix.
//! * `walk_compiled` — flattened-forest walk, `f32` traversal mode.
//! * `walk_binned` — flattened-forest walk over prebuilt `u16` bins.
//! * `pipeline_reference` / `pipeline_compiled` — the full arena → model
//!   → inverse-scaling pipelines the estimator batch path composes.
//! * `mlp_reference` / `mlp_compiled` — MLP forward, matmul reference vs
//!   compiled scratch kernels (SIMD if the host has AVX2+FMA).
//!
//! Hard gates (non-zero exit):
//!
//! * GBDT compiled predictions — both traversal modes — must be
//!   **bit-identical** to the reference walk.
//! * MLP compiled predictions must match the reference within 1e-4
//!   relative tolerance.
//! * Neither compiled pipeline may be slower than its reference.
//!
//! Writes `BENCH_inference.json` (override with `QFE_BENCH_JSON`).

use std::time::{Duration, Instant};

use qfe_bench::envs::ForestEnv;
use qfe_bench::trainers::{make_featurizer, QftKind};
use qfe_core::featurize::{AttributeSpace, BinnedFeatureMatrix, FeatureMatrix};
use qfe_core::{Query, TableId};
use qfe_ml::gbdt::{Gbdt, GbdtConfig};
use qfe_ml::matrix::Matrix;
use qfe_ml::mlp::{Mlp, MlpConfig};
use qfe_ml::scaling::LogScaler;
use qfe_ml::train::Regressor;
use qfe_ml::{fma_available, mlp_simd_active};

const BATCH: usize = 64;

/// Run `f` (which processes `per_iter` queries) repeatedly for at least
/// `budget`, after one warmup call; returns microseconds per query.
fn measure(per_iter: usize, budget: Duration, mut f: impl FnMut()) -> f64 {
    f();
    let started = Instant::now();
    let mut iters = 0u64;
    while started.elapsed() < budget {
        f();
        iters += 1;
    }
    let total = started.elapsed().as_secs_f64() * 1e6;
    total / (iters as f64 * per_iter as f64)
}

fn main() {
    let scale = qfe_bench::Scale::from_env();
    eprintln!("building forest environment at scale '{}'…", scale.label);
    let env = ForestEnv::build(&scale);
    let budget = Duration::from_millis(200);
    let batch: Vec<Query> = (0..BATCH)
        .map(|i| env.conj_test.queries[i % env.conj_test.queries.len()].clone())
        .collect();

    let space = AttributeSpace::for_table(env.db.catalog(), TableId(0));
    let featurizer = make_featurizer(QftKind::Conjunctive, space, 64, true);

    eprintln!("training GB on the forest workload…");
    let mut gb = Gbdt::new(GbdtConfig {
        n_trees: scale.gbdt_trees,
        min_samples_leaf: 3,
        max_leaves: 64,
        ..GbdtConfig::default()
    });
    let (rows, cols, data, _) =
        FeatureMatrix::build(featurizer.as_ref(), &env.conj_train.queries).into_raw();
    let x_train = Matrix::from_vec(rows, cols, data);
    let scaler = LogScaler::fit(&env.conj_train.cardinalities).expect("labels scale");
    let y_train = scaler.transform_batch(&env.conj_train.cardinalities);
    gb.try_fit(&x_train, &y_train).expect("GB fit");
    let binner = gb.feature_binner().expect("trained GB compiles");
    let active = (0..binner.features())
        .filter(|&f| !binner.cuts(f).is_empty())
        .count();
    let total_cuts: usize = (0..binner.features()).map(|f| binner.cuts(f).len()).sum();
    let max_cuts = (0..binner.features())
        .map(|f| binner.cuts(f).len())
        .max()
        .unwrap_or(0);
    let by_count = |lo: usize, hi: usize| {
        (0..binner.features())
            .filter(|&f| (lo..=hi).contains(&binner.cuts(f).len()))
            .count()
    };
    eprintln!(
        "binner: {} features, {active} with cuts ({} one, {} two, {} more), {total_cuts} cuts total (max {max_cuts})",
        binner.features(),
        by_count(1, 1),
        by_count(2, 2),
        by_count(3, usize::MAX),
    );

    // Prebuilt arenas for the walk-only stages.
    let (r, c, d, _) = FeatureMatrix::build(featurizer.as_ref(), &batch).into_raw();
    let x_batch = Matrix::from_vec(r, c, d);
    let (bin_rows, _bc, bins, _) =
        BinnedFeatureMatrix::build(featurizer.as_ref(), binner, &batch).into_raw();

    // ── Equivalence gates first: timing a wrong answer is worthless. ──
    let reference = gb.predict_batch_reference(&x_batch);
    let compiled_f32 = gb.predict_batch(&x_batch);
    let compiled_binned = gb
        .predict_batch_binned(bin_rows, &bins)
        .expect("binned path");
    if reference != compiled_f32 {
        eprintln!("GATE FAILED: compiled f32 walk diverged from the reference");
        std::process::exit(1);
    }
    if reference != compiled_binned {
        eprintln!("GATE FAILED: compiled binned walk diverged from the reference");
        std::process::exit(1);
    }
    eprintln!(
        "equivalence gate: {} predictions bit-identical down all three GBDT paths",
        reference.len()
    );

    eprintln!("training MLP for the kernel comparison…");
    let mut mlp = Mlp::new(MlpConfig {
        hidden: vec![scale.nn_hidden, scale.nn_hidden],
        epochs: scale.nn_epochs.min(10),
        ..MlpConfig::default()
    });
    mlp.try_fit(&x_train, &y_train).expect("MLP fit");
    let mlp_ref = mlp.predict_batch_reference(&x_batch);
    let mlp_compiled = mlp.predict_batch(&x_batch);
    for (i, (&a, &b)) in mlp_ref.iter().zip(&mlp_compiled).enumerate() {
        let tol = 1e-4f32 * a.abs().max(1.0);
        if (a - b).abs() > tol {
            eprintln!("GATE FAILED: MLP row {i}: reference {a} vs compiled {b}");
            std::process::exit(1);
        }
    }
    eprintln!(
        "MLP gate: {} predictions within 1e-4 relative (simd {})",
        mlp_ref.len(),
        if mlp_simd_active() { "on" } else { "off" }
    );

    // ── Stage timings. ──
    let featurize = measure(BATCH, budget, || {
        let m = FeatureMatrix::build(featurizer.as_ref(), &batch);
        assert_eq!(m.ok_rows(), BATCH);
        std::hint::black_box(m);
    });
    let featurize_binned = measure(BATCH, budget, || {
        let m = BinnedFeatureMatrix::build(featurizer.as_ref(), binner, &batch);
        assert_eq!(m.ok_rows(), BATCH);
        std::hint::black_box(m);
    });
    let quantize = {
        let mut scratch_bins = vec![0u16; bins.len()];
        let data = x_batch.data().to_vec();
        measure(BATCH, budget, move || {
            binner.bin_matrix(&data, &mut scratch_bins);
            std::hint::black_box(&mut scratch_bins);
        })
    };
    let walk_reference = measure(BATCH, budget, || {
        std::hint::black_box(gb.predict_batch_reference(&x_batch));
    });
    let walk_compiled = measure(BATCH, budget, || {
        std::hint::black_box(gb.predict_batch(&x_batch));
    });
    let walk_binned = measure(BATCH, budget, || {
        std::hint::black_box(gb.predict_batch_binned(bin_rows, &bins).expect("binned"));
    });
    let pipeline_reference = measure(BATCH, budget, || {
        let (r, c, d, _) = FeatureMatrix::build(featurizer.as_ref(), &batch).into_raw();
        let preds = gb.predict_batch_reference(&Matrix::from_vec(r, c, d));
        let out: Vec<f64> = preds.iter().map(|&p| scaler.inverse(p)).collect();
        std::hint::black_box(out);
    });
    let pipeline_compiled = measure(BATCH, budget, || {
        let (r, _c, bins, _) =
            BinnedFeatureMatrix::build(featurizer.as_ref(), binner, &batch).into_raw();
        let preds = gb.predict_batch_binned(r, &bins).expect("binned");
        let out: Vec<f64> = preds.iter().map(|&p| scaler.inverse(p)).collect();
        std::hint::black_box(out);
    });
    let mlp_reference = measure(BATCH, budget, || {
        std::hint::black_box(mlp.predict_batch_reference(&x_batch));
    });
    let mlp_compiled_us = measure(BATCH, budget, || {
        std::hint::black_box(mlp.predict_batch(&x_batch));
    });

    let gbdt_speedup = pipeline_reference / pipeline_compiled;
    let mlp_speedup = mlp_reference / mlp_compiled_us;
    println!(
        "compiled inference, batch {BATCH}, scale '{}':",
        scale.label
    );
    println!("  featurize          {featurize:>9.2} µs/query");
    println!("  featurize+bin      {featurize_binned:>9.2} µs/query");
    println!("  quantize only      {quantize:>9.2} µs/query");
    println!("  walk reference     {walk_reference:>9.2} µs/query");
    println!("  walk compiled f32  {walk_compiled:>9.2} µs/query");
    println!("  walk binned        {walk_binned:>9.2} µs/query");
    println!("  pipeline reference {pipeline_reference:>9.2} µs/query");
    println!(
        "  pipeline compiled  {pipeline_compiled:>9.2} µs/query   speedup {gbdt_speedup:>5.2}×"
    );
    println!("  mlp reference      {mlp_reference:>9.2} µs/query");
    println!("  mlp compiled       {mlp_compiled_us:>9.2} µs/query   speedup {mlp_speedup:>5.2}×");

    let json = format!(
        "{{\"workload\":\"forest-conjunctive\",\"scale\":\"{}\",\"batch_size\":{BATCH},\
\"fma\":{},\"simd_active\":{},\
\"featurize_us\":{featurize:.3},\"featurize_binned_us\":{featurize_binned:.3},\"quantize_us\":{quantize:.3},\
\"walk_reference_us\":{walk_reference:.3},\"walk_compiled_us\":{walk_compiled:.3},\"walk_binned_us\":{walk_binned:.3},\
\"pipeline_reference_us\":{pipeline_reference:.3},\"pipeline_compiled_us\":{pipeline_compiled:.3},\"gbdt_speedup\":{gbdt_speedup:.2},\
\"mlp_reference_us\":{mlp_reference:.3},\"mlp_compiled_us\":{mlp_compiled_us:.3},\"mlp_speedup\":{mlp_speedup:.2}}}\n",
        scale.label,
        fma_available(),
        mlp_simd_active(),
    );
    let path = std::env::var("QFE_BENCH_JSON").unwrap_or_else(|_| "BENCH_inference.json".into());
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("wrote {path}");

    let mut failed = false;
    if gbdt_speedup < 1.0 {
        eprintln!("REGRESSION: compiled GBDT pipeline slower than reference ({gbdt_speedup:.2}×)");
        failed = true;
    }
    if mlp_speedup < 1.0 {
        eprintln!("REGRESSION: compiled MLP forward slower than reference ({mlp_speedup:.2}×)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
