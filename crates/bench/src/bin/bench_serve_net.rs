//! Loopback throughput record for the sharded TCP front door: a
//! registry of per-tenant shards (PostgreSQL-style baseline estimators
//! over tiny per-tenant tables) behind `NetServer`, driven by client
//! threads speaking the length-prefixed wire protocol over real TCP.
//! Writes the machine-readable record to `BENCH_serve_net.json`
//! (override with `QFE_BENCH_JSON`).
//!
//! Hard gates (exit non-zero on any violation, hardware-independent):
//!
//! * **Zero protocol errors** — every response decodes as a typed
//!   frame, every request gets `EstimateOk` for its own request id.
//! * **Conservation** — per shard, `routed == admitted + quota_shed`
//!   at quiescence, and the fleet-wide routed total equals the number
//!   of requests sent.
//!
//! Throughput (qps) and latency quantiles are recorded but not gated
//! here: they are hardware-dependent, so the CI compare step gates
//! them generously against the committed record instead, and the
//! `environment` field spells out the caveat for small containers.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qfe_bench::Scale;
use qfe_core::predicate::{CmpOp, CompoundPredicate, PredicateExpr};
use qfe_core::query::{ColumnRef, Query};
use qfe_core::schema::{ColumnId, TableId};
use qfe_core::Value;
use qfe_data::{Column, Database, Table};
use qfe_estimators::PostgresEstimator;
use qfe_serve::{
    read_frame, write_frame, Frame, NetConfig, ServiceConfig, Shard, ShardConfig, ShardKey,
    ShardRegistry,
};

const TENANTS: usize = 4;
const CONNECTIONS: usize = 8;

fn tenant_db(rows: usize, seed: i64) -> Database {
    Database::new(
        vec![Table::new(
            "t",
            vec![
                (
                    "a".into(),
                    Column::Int((0..rows as i64).map(|v| (v * 7 + seed) % 50).collect()),
                ),
                (
                    "b".into(),
                    Column::Int((0..rows as i64).map(|v| (v + seed) % 10).collect()),
                ),
            ],
        )],
        &[],
    )
}

fn query_for(value: i64) -> Query {
    Query {
        tables: vec![TableId(0)],
        joins: vec![],
        predicates: vec![CompoundPredicate {
            column: ColumnRef::new(TableId(0), ColumnId(0)),
            expr: PredicateExpr::leaf(CmpOp::Le, Value::Int(value % 50)),
        }],
    }
}

struct ClientTally {
    latencies_micros: Vec<u64>,
    estimate_errors: u64,
    proto_anomalies: u64,
}

fn drive_connection(
    addr: std::net::SocketAddr,
    tenants: &[u128],
    first_id: u64,
    requests: usize,
) -> ClientTally {
    let stream = TcpStream::connect(addr).expect("connect to loopback front door");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut tally = ClientTally {
        latencies_micros: Vec::with_capacity(requests),
        estimate_errors: 0,
        proto_anomalies: 0,
    };
    for i in 0..requests {
        let request_id = first_id + i as u64;
        let req = Frame::EstimateRequest {
            request_id,
            tenant: tenants[i % tenants.len()],
            budget_micros: 0, // server default
            query: query_for(request_id as i64),
        };
        let t0 = Instant::now();
        write_frame(&mut writer, &req).expect("write request");
        match read_frame(&mut reader) {
            Ok(Some(Frame::EstimateOk {
                request_id: rid,
                value,
                ..
            })) if rid == request_id && value.is_finite() && value >= 1.0 => {
                tally.latencies_micros.push(t0.elapsed().as_micros() as u64);
            }
            Ok(Some(Frame::EstimateErr { .. })) => tally.estimate_errors += 1,
            other => {
                eprintln!("protocol anomaly on request {request_id}: {other:?}");
                tally.proto_anomalies += 1;
            }
        }
    }
    tally
}

fn quantile(sorted_micros: &[u64], q: f64) -> u64 {
    if sorted_micros.is_empty() {
        return 0;
    }
    let idx = ((sorted_micros.len() - 1) as f64 * q).round() as usize;
    sorted_micros[idx]
}

fn main() {
    let scale = Scale::from_env();
    let total_requests: usize = std::env::var("QFE_NET_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let per_connection = total_requests.div_ceil(CONNECTIONS);
    let total_requests = per_connection * CONNECTIONS;

    eprintln!(
        "building {TENANTS} tenant shards at scale '{}'…",
        scale.label
    );
    let registry = Arc::new(ShardRegistry::new());
    let mut tenant_keys = Vec::with_capacity(TENANTS);
    for t in 0..TENANTS {
        let name = format!("tenant{t}");
        let db = tenant_db(64 + 16 * t, t as i64);
        let key = ShardKey::for_tenant(&name);
        registry
            .register(Shard::new(
                &name,
                key,
                vec![Arc::new(PostgresEstimator::analyze_default(&db))],
                ShardConfig {
                    quota: 64,
                    service: ServiceConfig {
                        max_batch_wait: Duration::from_micros(200),
                        ..ServiceConfig::default()
                    },
                },
            ))
            .expect("register tenant shard");
        tenant_keys.push(key.0);
    }

    // Satellite flake-proofing: bind on port 0 with retries, never a
    // fixed port that a parallel CI job could be squatting on.
    let mut server = qfe_serve::NetServer::bind_loopback_with_retry(
        Arc::clone(&registry),
        NetConfig {
            max_connections: CONNECTIONS + 4,
            ..NetConfig::default()
        },
        5,
    )
    .expect("bind loopback front door");
    let addr = server.local_addr();
    eprintln!("front door listening on {addr}");

    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..CONNECTIONS {
        let tenants = tenant_keys.clone();
        // Offset each connection's tenant rotation so every connection
        // carries a mixed-tenant stream rather than a single tenant.
        let rotated: Vec<u128> = (0..tenants.len())
            .map(|i| tenants[(i + c) % tenants.len()])
            .collect();
        let first_id = (c * per_connection) as u64;
        handles.push(std::thread::spawn(move || {
            drive_connection(addr, &rotated, first_id, per_connection)
        }));
    }
    let mut latencies: Vec<u64> = Vec::with_capacity(total_requests);
    let mut estimate_errors = 0u64;
    let mut proto_anomalies = 0u64;
    for h in handles {
        let tally = h.join().expect("client thread");
        latencies.extend(tally.latencies_micros);
        estimate_errors += tally.estimate_errors;
        proto_anomalies += tally.proto_anomalies;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    server.shutdown();

    latencies.sort_unstable();
    let qps = total_requests as f64 / elapsed;
    let p50 = quantile(&latencies, 0.50);
    let p99 = quantile(&latencies, 0.99);

    // Conservation audit at quiescence: every request the clients sent
    // must appear exactly once in some shard's routed counter, and
    // each shard's books must balance.
    let mut routed_total = 0u64;
    let mut conserved = registry.conserved();
    let mut per_shard = Vec::new();
    for shard in registry.shards() {
        let stats = shard.stats();
        conserved &= stats.conserved();
        routed_total += stats.routed;
        per_shard.push(format!(
            "{{\"shard\":\"{}\",\"routed\":{},\"admitted\":{},\"quota_shed\":{}}}",
            shard.name(),
            stats.routed,
            stats.admitted,
            stats.quota_shed
        ));
    }
    per_shard.sort();

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "serve-net loopback: {total_requests} requests, {TENANTS} tenants, {CONNECTIONS} connections, {cores} core(s):"
    );
    println!("  {qps:>9.0} req/s   p50 {p50} µs   p99 {p99} µs   wall {elapsed:.2} s");
    println!(
        "  routed {routed_total}   estimate errors {estimate_errors}   protocol anomalies {proto_anomalies}   conserved {conserved}"
    );

    // Loopback qps is only comparable across runs on similar hardware;
    // the record carries the caveat so a tiny CI container is never
    // misread as a serving regression.
    let environment = if cores < 4 {
        format!("{cores}-core container: acceptors, handlers and clients contend for the same cores, qps and tail latency degrade; only the correctness gates are meaningful here")
    } else {
        format!("{cores} cores available: loopback throughput comparable across runs on this class of machine")
    };
    let json = format!(
        "{{\"workload\":\"serve-net-loopback\",\"scale\":\"{}\",\"tenants\":{TENANTS},\"connections\":{CONNECTIONS},\"requests\":{total_requests},\"cores\":{cores},\"environment\":\"{environment}\",\"qps\":{qps:.0},\"p50_micros\":{p50},\"p99_micros\":{p99},\"estimate_errors\":{estimate_errors},\"proto_anomalies\":{proto_anomalies},\"routed_total\":{routed_total},\"conserved\":{conserved},\"shards\":[{}]}}\n",
        scale.label,
        per_shard.join(",")
    );
    let path = std::env::var("QFE_BENCH_JSON").unwrap_or_else(|_| "BENCH_serve_net.json".into());
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("wrote {path}");

    let mut failed = false;
    if proto_anomalies > 0 {
        eprintln!("PROTOCOL VIOLATION: {proto_anomalies} response(s) failed to decode or mismatched their request");
        failed = true;
    }
    if estimate_errors > 0 {
        eprintln!("SERVING VIOLATION: {estimate_errors} request(s) were refused under a calm, in-quota workload");
        failed = true;
    }
    if routed_total != total_requests as u64 {
        eprintln!(
            "ACCOUNTING VIOLATION: clients sent {total_requests} requests but shards routed {routed_total}"
        );
        failed = true;
    }
    if !conserved {
        eprintln!(
            "CONSERVATION VIOLATION: some shard has routed != admitted + quota_shed at quiescence"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
