//! Throughput record for the batched execution path: singleton vs
//! batched execution at batch size 64 on the forest conjunctive
//! workload, measured at the three layers that grew a batch fast path
//! (featurization arena, learned-estimator batch forward, batched
//! service walk). Writes the machine-readable record to
//! `BENCH_batch.json` (override with `QFE_BENCH_JSON`), prints the same
//! numbers as text, and exits non-zero if any batched layer is *slower*
//! than its singleton equivalent — the CI regression gate for this
//! path. Scale via `QFE_SCALE=smoke|small|full`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use qfe_bench::envs::ForestEnv;
use qfe_bench::trainers::{make_featurizer, train_single_table, ModelKind, QftKind};
use qfe_core::featurize::{AttributeSpace, BinnedFeatureMatrix, FeatureMatrix};
use qfe_core::{CardinalityEstimator, Deadline, Query, TableId};
use qfe_ml::gbdt::{Gbdt, GbdtConfig};
use qfe_ml::matrix::Matrix;
use qfe_ml::scaling::LogScaler;
use qfe_ml::train::Regressor;
use qfe_serve::{EstimatorService, ServiceConfig, SharedEstimator};

const BATCH: usize = 64;

/// Estimator-segment µs/query committed with the pre-compiled-inference
/// batch record (smoke scale, 1-core CI runner) — the fixed yardstick the
/// compiled pipeline is gated against, independent of run-to-run drift in
/// the freshly measured reference.
const COMMITTED_ESTIMATOR_BASELINE_US: f64 = 4.202;

/// One measured comparison: microseconds per query down each path.
struct Layer {
    name: &'static str,
    singleton_us: f64,
    batched_us: f64,
}

impl Layer {
    fn speedup(&self) -> f64 {
        self.singleton_us / self.batched_us
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"singleton_us_per_query\":{:.3},\"batched_us_per_query\":{:.3},\"speedup\":{:.2}}}",
            self.singleton_us,
            self.batched_us,
            self.speedup()
        )
    }
}

/// Run `f` (which processes `per_iter` queries) repeatedly for at least
/// `budget`, after one warmup call; returns microseconds per query.
fn measure(per_iter: usize, budget: Duration, mut f: impl FnMut()) -> f64 {
    f();
    let started = Instant::now();
    let mut iters = 0u64;
    while started.elapsed() < budget {
        f();
        iters += 1;
    }
    let total = started.elapsed().as_secs_f64() * 1e6;
    total / (iters as f64 * per_iter as f64)
}

fn main() {
    let scale = qfe_bench::Scale::from_env();
    eprintln!("building forest environment at scale '{}'…", scale.label);
    let env = ForestEnv::build(&scale);
    let budget = Duration::from_millis(300);
    let batch: Vec<Query> = (0..BATCH)
        .map(|i| env.conj_test.queries[i % env.conj_test.queries.len()].clone())
        .collect();

    // Layer 1: featurization — per-query allocation vs the arena.
    let space = AttributeSpace::for_table(env.db.catalog(), TableId(0));
    let featurizer = make_featurizer(QftKind::Conjunctive, space, 64, true);
    let feat = Layer {
        name: "featurize",
        singleton_us: measure(BATCH, budget, || {
            for q in &batch {
                std::hint::black_box(featurizer.featurize(q).unwrap());
            }
        }),
        batched_us: measure(BATCH, budget, || {
            let m = FeatureMatrix::build(featurizer.as_ref(), &batch);
            assert_eq!(m.ok_rows(), BATCH);
            std::hint::black_box(m);
        }),
    };

    // Layer 2: the learned estimator — try_estimate vs estimate_batch.
    eprintln!("training GB × conjunctive on the forest workload…");
    let est = train_single_table(
        env.db.catalog(),
        TableId(0),
        &env.conj_train,
        QftKind::Conjunctive,
        ModelKind::Gb,
        &scale,
        true,
    );
    let estimator = Layer {
        name: "estimator",
        singleton_us: measure(BATCH, budget, || {
            for q in &batch {
                std::hint::black_box(est.try_estimate(q).unwrap());
            }
        }),
        batched_us: measure(BATCH, budget, || {
            let rows = est.estimate_batch(&batch);
            assert_eq!(rows.len(), BATCH);
            std::hint::black_box(rows);
        }),
    };

    // Layer 3: the serving front end — one admission + deadline walk +
    // watchdog per query vs one per batch.
    let svc = EstimatorService::new(
        vec![Arc::new(est) as SharedEstimator],
        ServiceConfig::default(),
    );
    let req_budget = Duration::from_millis(100);
    let serve = Layer {
        name: "serve",
        singleton_us: measure(BATCH, budget, || {
            for q in &batch {
                std::hint::black_box(
                    svc.estimate_within(q, Deadline::within(req_budget))
                        .unwrap(),
                );
            }
        }),
        batched_us: measure(BATCH, budget, || {
            let rows = svc.estimate_batch_within(&batch, Deadline::within(req_budget));
            assert_eq!(rows.len(), BATCH);
            std::hint::black_box(rows);
        }),
    };

    // The serve layer spawned one watchdog thread per deadline-bounded
    // call; drop the service before timing the compiled pipeline so no
    // straggler competes for the core on single-CPU runners.
    drop(svc);

    // Layer 2b: compiled inference inside the estimator segment — the
    // full reference pipeline (f32 arena → enum-tree walk → inverse
    // scaling) against the compiled pipeline (u16 binned arena →
    // flattened-forest walk → inverse scaling), on the same raw GB model.
    // The two must agree bit-for-bit (quantization contract); the
    // speedup is the tentpole number of the compiled-inference layer.
    eprintln!("training raw GB for the compiled-inference comparison…");
    let mut gb = Gbdt::new(GbdtConfig {
        n_trees: scale.gbdt_trees,
        min_samples_leaf: 3,
        max_leaves: 64,
        ..GbdtConfig::default()
    });
    let train_m = FeatureMatrix::build(featurizer.as_ref(), &env.conj_train.queries);
    let (rows, cols, data, _errs) = train_m.into_raw();
    let x_train = Matrix::from_vec(rows, cols, data);
    let scaler = LogScaler::fit(&env.conj_train.cardinalities).expect("labels scale");
    let y_train = scaler.transform_batch(&env.conj_train.cardinalities);
    gb.try_fit(&x_train, &y_train).expect("GB fit");
    let binner = gb.feature_binner().expect("trained GB compiles");
    {
        // Equivalence gate before timing anything: both pipelines must
        // produce bit-identical estimates on the bench batch.
        let (r, c, d, _) = FeatureMatrix::build(featurizer.as_ref(), &batch).into_raw();
        let reference = gb.predict_batch_reference(&Matrix::from_vec(r, c, d));
        let (br, _bc, bins, _) =
            BinnedFeatureMatrix::build(featurizer.as_ref(), binner, &batch).into_raw();
        let compiled = gb.predict_batch_binned(br, &bins).expect("binned path");
        assert_eq!(reference, compiled, "compiled pipeline diverged");
    }
    let estimator_compiled = Layer {
        name: "est-compiled",
        singleton_us: measure(BATCH, budget, || {
            let (r, c, d, _) = FeatureMatrix::build(featurizer.as_ref(), &batch).into_raw();
            let preds = gb.predict_batch_reference(&Matrix::from_vec(r, c, d));
            let out: Vec<f64> = preds.iter().map(|&p| scaler.inverse(p)).collect();
            assert_eq!(out.len(), BATCH);
            std::hint::black_box(out);
        }),
        batched_us: measure(BATCH, budget, || {
            let (r, _c, bins, _) =
                BinnedFeatureMatrix::build(featurizer.as_ref(), binner, &batch).into_raw();
            let preds = gb.predict_batch_binned(r, &bins).expect("binned path");
            let out: Vec<f64> = preds.iter().map(|&p| scaler.inverse(p)).collect();
            assert_eq!(out.len(), BATCH);
            std::hint::black_box(out);
        }),
    };

    let layers = [feat, estimator, serve];
    println!(
        "batched execution at batch {BATCH}, forest conjunctive workload ({}):",
        scale.label
    );
    for l in &layers {
        println!(
            "  {:<10} singleton {:>9.2} µs/query   batched {:>9.2} µs/query   speedup {:>5.2}×",
            l.name,
            l.singleton_us,
            l.batched_us,
            l.speedup()
        );
    }
    let vs_committed = COMMITTED_ESTIMATOR_BASELINE_US / estimator_compiled.batched_us;
    println!(
        "  {:<10} reference {:>9.2} µs/query   compiled {:>9.2} µs/query   speedup {:>5.2}×",
        estimator_compiled.name,
        estimator_compiled.singleton_us,
        estimator_compiled.batched_us,
        estimator_compiled.speedup()
    );
    println!(
        "  compiled vs committed {COMMITTED_ESTIMATOR_BASELINE_US} µs/query baseline: {vs_committed:>5.2}×"
    );
    // The headline number is the end-to-end serving layer: that is what
    // the micro-batcher amortizes per request.
    let headline = layers[2].speedup();
    let json = format!(
        "{{\"workload\":\"forest-conjunctive\",\"scale\":\"{}\",\"batch_size\":{},\"featurize\":{},\"estimator\":{},\"estimator_compiled\":{{\"reference_us_per_query\":{:.3},\"compiled_us_per_query\":{:.3},\"speedup\":{:.2},\"committed_baseline_us_per_query\":{COMMITTED_ESTIMATOR_BASELINE_US},\"speedup_vs_committed\":{vs_committed:.2}}},\"serve\":{},\"speedup\":{:.2}}}\n",
        scale.label,
        BATCH,
        layers[0].to_json(),
        layers[1].to_json(),
        estimator_compiled.singleton_us,
        estimator_compiled.batched_us,
        estimator_compiled.speedup(),
        layers[2].to_json(),
        headline
    );
    let path = std::env::var("QFE_BENCH_JSON").unwrap_or_else(|_| "BENCH_batch.json".into());
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("wrote {path}");

    let mut failed = false;
    for l in &layers {
        if l.speedup() < 1.0 {
            eprintln!(
                "REGRESSION: batched {} path is slower than singleton ({:.2}×)",
                l.name,
                l.speedup()
            );
            failed = true;
        }
    }
    if estimator_compiled.speedup() < 1.0 {
        eprintln!(
            "REGRESSION: compiled estimator pipeline is slower than the reference ({:.2}×)",
            estimator_compiled.speedup()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
