//! Factories building QFT × model estimators at the configured scale.

use qfe_core::estimator::CardinalityEstimator;
use qfe_core::featurize::{
    AttributeSpace, Featurizer, LimitedDisjunctionEncoding, RangePredicateEncoding,
    SingularPredicateEncoding, UniversalConjunctionEncoding,
};
use qfe_core::metrics::q_error;
use qfe_core::schema::Catalog;
use qfe_core::TableId;
use qfe_estimators::labels::LabeledQueries;
use qfe_estimators::{LearnedEstimator, LocalModelEstimator};
use qfe_ml::gbdt::{Gbdt, GbdtConfig};
use qfe_ml::linreg::LinearRegression;
use qfe_ml::mlp::{Mlp, MlpConfig};
use qfe_ml::train::Regressor;

use crate::scale::Scale;

/// The four QFTs of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QftKind {
    /// Singular Predicate Encoding (`simple`).
    Simple,
    /// Range Predicate Encoding (`range`).
    Range,
    /// Universal Conjunction Encoding (`conjunctive`).
    Conjunctive,
    /// Limited Disjunction Encoding (`complex`).
    Complex,
}

impl QftKind {
    /// Paper plot label.
    pub fn label(&self) -> &'static str {
        match self {
            QftKind::Simple => "simple",
            QftKind::Range => "range",
            QftKind::Conjunctive => "conj",
            QftKind::Complex => "comp",
        }
    }

    /// All four, in the paper's presentation order.
    pub const ALL: [QftKind; 4] = [
        QftKind::Simple,
        QftKind::Range,
        QftKind::Conjunctive,
        QftKind::Complex,
    ];
}

/// Flat (non-set) model families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Gradient boosting.
    Gb,
    /// Feed-forward network.
    Nn,
    /// Linear regression (excluded baseline).
    Linreg,
}

impl ModelKind {
    /// Paper plot label.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::Gb => "GB",
            ModelKind::Nn => "NN",
            ModelKind::Linreg => "linreg",
        }
    }
}

/// Build a featurizer of the given kind over `space`.
pub fn make_featurizer(
    kind: QftKind,
    space: AttributeSpace,
    buckets: usize,
    attr_sel: bool,
) -> Box<dyn Featurizer + Send + Sync> {
    match kind {
        QftKind::Simple => Box::new(SingularPredicateEncoding::new(space)),
        QftKind::Range => Box::new(RangePredicateEncoding::new(space)),
        QftKind::Conjunctive => Box::new(
            UniversalConjunctionEncoding::new(space, buckets)
                .expect("valid featurizer config")
                .with_attr_sel(attr_sel),
        ),
        QftKind::Complex => Box::new(
            LimitedDisjunctionEncoding::new(space, buckets)
                .expect("valid featurizer config")
                .with_attr_sel(attr_sel),
        ),
    }
}

/// Build a model of the given kind at the configured scale. `seed` keeps
/// repeated trainings in one experiment independent yet reproducible.
pub fn make_model(kind: ModelKind, scale: &Scale, seed: u64) -> Box<dyn Regressor + Send + Sync> {
    match kind {
        ModelKind::Gb => Box::new(Gbdt::new(GbdtConfig {
            n_trees: scale.gbdt_trees,
            min_samples_leaf: 3,
            max_leaves: 64,
            seed,
            ..GbdtConfig::default()
        })),
        ModelKind::Nn => Box::new(Mlp::new(MlpConfig {
            hidden: vec![scale.nn_hidden, scale.nn_hidden],
            epochs: scale.nn_epochs,
            batch_size: 128,
            learning_rate: 1e-3,
            seed,
        })),
        ModelKind::Linreg => Box::new(LinearRegression::new(seed)),
    }
}

/// Train a single-table (local) QFT × model estimator on the forest table.
pub fn train_single_table(
    catalog: &Catalog,
    table: TableId,
    data: &LabeledQueries,
    qft: QftKind,
    model: ModelKind,
    scale: &Scale,
    attr_sel: bool,
) -> LearnedEstimator {
    let space = AttributeSpace::for_table(catalog, table);
    let featurizer = make_featurizer(qft, space, scale.buckets, attr_sel);
    let mut est = LearnedEstimator::new(featurizer, make_model(model, scale, 0));
    est.fit(data)
        .unwrap_or_else(|e| panic!("training {} failed: {e}", est.name()));
    est
}

/// Train local (per-sub-schema) models for a join workload.
pub fn train_local_models(
    catalog: &Catalog,
    data: &LabeledQueries,
    qft: QftKind,
    model: ModelKind,
    scale: &Scale,
    buckets: usize,
) -> LocalModelEstimator {
    let scale = scale.clone();
    LocalModelEstimator::train(
        catalog,
        data,
        20,
        &move |space| make_featurizer(qft, space, buckets, true),
        &move || make_model(model, &scale, 0),
    )
    .unwrap_or_else(|e| panic!("local training failed: {e}"))
}

/// q-errors of an estimator over a labeled test set.
pub fn q_errors(est: &dyn CardinalityEstimator, test: &LabeledQueries) -> Vec<f64> {
    test.queries
        .iter()
        .zip(&test.cardinalities)
        .map(|(q, &truth)| q_error(truth, est.estimate(q)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envs::ForestEnv;
    use qfe_core::metrics::ErrorSummary;

    #[test]
    fn gb_conj_beats_simple_on_forest_smoke() {
        // The paper's headline comparison, at smoke scale: Universal
        // Conjunction Encoding must clearly beat Singular Predicate
        // Encoding under the same GB model.
        let scale = Scale::smoke();
        let env = ForestEnv::build(&scale);
        let conj = train_single_table(
            env.db.catalog(),
            TableId(0),
            &env.conj_train,
            QftKind::Conjunctive,
            ModelKind::Gb,
            &scale,
            true,
        );
        let simple = train_single_table(
            env.db.catalog(),
            TableId(0),
            &env.conj_train,
            QftKind::Simple,
            ModelKind::Gb,
            &scale,
            true,
        );
        let e_conj = ErrorSummary::from_errors(&q_errors(&conj, &env.conj_test));
        let e_simple = ErrorSummary::from_errors(&q_errors(&simple, &env.conj_test));
        assert!(
            e_conj.median < e_simple.median,
            "conj median {} should beat simple median {}",
            e_conj.median,
            e_simple.median
        );
        assert!(
            e_conj.p99 < e_simple.p99,
            "conj p99 {} should beat simple p99 {}",
            e_conj.p99,
            e_simple.p99
        );
    }

    #[test]
    fn labels_cover_all_kinds() {
        assert_eq!(QftKind::ALL.len(), 4);
        assert_eq!(QftKind::Complex.label(), "comp");
        assert_eq!(ModelKind::Gb.label(), "GB");
        assert_eq!(ModelKind::Linreg.label(), "linreg");
    }
}
