//! Section 5.5.2 (data drift): the cost of reconstructing an estimator
//! after the data changes.
//!
//! The paper reports, for 125k mixed queries on forest: 3.5 days of query
//! generation + labeling (on their testbed), 1.5 minutes of featurization,
//! and training of 6 s (GB), 21 min (NN), 41 min (MSCN) — concluding that
//! obtaining labeled queries is the bottleneck and models should simply be
//! reconstructed on drift. This experiment measures the same three phases
//! at the configured scale.

use std::time::Instant;

use qfe_core::featurize::mscn::PredicateMode;
use qfe_core::featurize::{AttributeSpace, Featurizer, LimitedDisjunctionEncoding};
use qfe_core::TableId;
use qfe_estimators::labels::label_queries;
use qfe_estimators::MscnEstimator;
use qfe_ml::mscn::MscnConfig;
use qfe_workload::{generate_mixed, MixedConfig};

use crate::envs::ForestEnv;
use crate::report::Report;
use crate::scale::Scale;
use crate::trainers::{make_model, ModelKind};

/// Run the experiment; returns the rendered report.
pub fn run(env: &ForestEnv, scale: &Scale) -> String {
    let mut report = Report::new();
    report.heading("Section 5.5.2: estimator reconstruction cost after data drift");

    // Phase 1: query generation + labeling (the paper's bottleneck).
    let t = Instant::now();
    let queries = generate_mixed(
        env.db.catalog(),
        &MixedConfig::new(TableId(0), scale.train_queries, 9_090),
    );
    let labeled = label_queries(&env.db, queries);
    let labeling_secs = t.elapsed().as_secs_f64();
    report.line(format!(
        "generate + label {} mixed queries: {labeling_secs:.2}s",
        labeled.len()
    ));

    // Phase 2: featurization.
    let space = AttributeSpace::for_table(env.db.catalog(), TableId(0));
    let qft =
        LimitedDisjunctionEncoding::new(space, scale.buckets).expect("valid featurizer config");
    let t = Instant::now();
    let mut rows = Vec::with_capacity(labeled.len());
    for q in &labeled.queries {
        rows.push(qft.featurize(q).expect("featurizable").0);
    }
    let featurize_secs = t.elapsed().as_secs_f64();
    report.line(format!(
        "featurize {} queries (complex, n={}): {featurize_secs:.2}s",
        rows.len(),
        scale.buckets
    ));

    // Phase 3: training, per model family.
    let x = qfe_ml::matrix::Matrix::from_rows(&rows);
    let scaler =
        qfe_ml::scaling::LogScaler::fit(&labeled.cardinalities).expect("valid featurizer config");
    let y = scaler.transform_batch(&labeled.cardinalities);
    for kind in [ModelKind::Gb, ModelKind::Nn] {
        let mut model = make_model(kind, scale, 0);
        let t = Instant::now();
        model.fit(&x, &y);
        report.line(format!(
            "train {:<6}: {:.2}s",
            kind.label(),
            t.elapsed().as_secs_f64()
        ));
    }
    let mut mscn = MscnEstimator::new(
        env.db.catalog(),
        PredicateMode::PerAttribute {
            max_buckets: scale.buckets,
            attr_sel: true,
        },
        MscnConfig {
            hidden: 32,
            epochs: scale.mscn_epochs,
            batch_size: 64,
            learning_rate: 1e-3,
            seed: 2,
        },
    )
    .expect("valid featurizer config");
    let t = Instant::now();
    mscn.fit(&labeled).expect("MSCN training");
    report.line(format!("train MSCN  : {:.2}s", t.elapsed().as_secs_f64()));
    report.line(
        "conclusion (as in the paper): obtaining labeled queries dominates the \
         reconstruction cost, so models should simply be rebuilt on drift. The \
         paper's GB-vs-NN training gap (6 s vs 21 min) appears at full model \
         sizes; at this harness's scaled-down NN the two are comparable.",
    );
    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_smoke_scale() {
        let scale = Scale::smoke();
        let env = ForestEnv::build(&scale);
        let out = run(&env, &scale);
        assert!(out.contains("train GB"));
        assert!(out.contains("train MSCN"));
    }
}
