//! Table 4: end-to-end run times for JOB-light.
//!
//! The paper integrates its estimator into PostgreSQL and measures total
//! benchmark runtime under (a) PG's own estimates, (b) the learned
//! estimates, (c) true cardinalities. We reproduce the mechanism with our
//! own cost-based optimizer and executor: every suite query is optimized
//! three times (each arm supplying the cardinalities to the DP optimizer)
//! and the chosen plans are actually executed; total wall time and total
//! executor work are reported.
//!
//! The expected *shape* (paper Table 4): the learned arm lands close to
//! the true-cardinality arm, and the improvement over the PG-style arm is
//! modest because JOB-light plans are mostly robust.

use qfe_core::estimator::CardinalityEstimator;
use qfe_estimators::{PostgresEstimator, TrueCardinalityEstimator};
use qfe_exec::executor::execute_plan;
use qfe_exec::Optimizer;

use crate::envs::ImdbEnv;
use crate::report::Report;
use crate::scale::Scale;
use crate::trainers::{train_local_models, ModelKind, QftKind};

/// Cap on materialized intermediates: generous, but keeps a catastrophic
/// plan from consuming all memory.
const MAX_INTERMEDIATE: u64 = 200_000_000;

/// Optimize and execute every suite query with cardinalities from `est`;
/// returns `(total_seconds, total_work, plans_differing_from_truth)`.
fn run_arm(
    env: &ImdbEnv,
    est: &dyn CardinalityEstimator,
    truth_plans: Option<&[String]>,
) -> (f64, u64, usize, Vec<String>) {
    let optimizer = Optimizer::new(&est);
    let mut total_secs = 0.0;
    let mut total_work = 0u64;
    let mut differing = 0usize;
    let mut plans = Vec::with_capacity(env.suite.len());
    for (i, q) in env.suite.queries.iter().enumerate() {
        let plan = optimizer.optimize(q).expect("optimizable query");
        let rendered = plan.plan.render();
        if let Some(tp) = truth_plans {
            if tp[i] != rendered {
                differing += 1;
            }
        }
        let stats = execute_plan(&env.db, q, &plan.plan, MAX_INTERMEDIATE).expect("plan executes");
        debug_assert_eq!(stats.rows as f64, env.suite.cardinalities[i]);
        total_secs += stats.elapsed.as_secs_f64();
        total_work += stats.work;
        plans.push(rendered);
    }
    (total_secs, total_work, differing, plans)
}

/// Run the experiment; returns the rendered report.
pub fn run(env: &ImdbEnv, scale: &Scale) -> String {
    let mut report = Report::new();
    report.heading("Table 4: end-to-end run times for JOB-light (optimizer + executor)");

    let truth = TrueCardinalityEstimator::new(&env.db);
    let (true_secs, true_work, _, true_plans) = run_arm(env, &truth, None);

    let pg = PostgresEstimator::analyze_default(&env.db);
    let (pg_secs, pg_work, pg_diff, _) = run_arm(env, &pg, Some(&true_plans));

    let learned = train_local_models(
        env.db.catalog(),
        &env.train,
        QftKind::Conjunctive,
        ModelKind::Gb,
        scale,
        scale.buckets,
    );
    let (our_secs, our_work, our_diff, _) = run_arm(env, &learned, Some(&true_plans));

    report.line(format!(
        "{:<22} {:>12} {:>16} {:>22}",
        "estimates", "exec time", "executor work", "plans != true-card plan"
    ));
    report.line(format!(
        "{:<22} {:>10.3}s {:>16} {:>22}",
        "Postgres-style", pg_secs, pg_work, pg_diff
    ));
    report.line(format!(
        "{:<22} {:>10.3}s {:>16} {:>22}",
        "Our approach (GB+conj)", our_secs, our_work, our_diff
    ));
    report.line(format!(
        "{:<22} {:>10.3}s {:>16} {:>22}",
        "True cardinalities", true_secs, true_work, 0
    ));
    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_smoke_scale() {
        let scale = Scale::smoke();
        let env = ImdbEnv::build(&scale);
        let out = run(&env, &scale);
        assert!(out.contains("Postgres-style"));
        assert!(out.contains("True cardinalities"));
    }
}
