//! Figure 4: the best QFT × model combinations (GB + conj for conjunctive
//! queries, GB + complex for mixed queries) against established
//! estimators — Postgres-style independence, per-query Bernoulli sampling,
//! and MSCN — partitioned by the number of attributes per query. MSCN is
//! absent from the mixed panel: its standard featurization does not
//! support disjunctions (exactly as in the paper).

use qfe_core::featurize::mscn::PredicateMode;
use qfe_core::TableId;
use qfe_estimators::{
    CorrelatedSamplingEstimator, MscnEstimator, PostgresEstimator, SamplingEstimator,
};
use qfe_ml::mscn::MscnConfig;

use crate::envs::ForestEnv;
use crate::experiments::fig2::{by_attribute_count, ATTR_GROUPS};
use crate::report::Report;
use crate::scale::Scale;
use crate::trainers::{q_errors, train_single_table, ModelKind, QftKind};

/// Run the experiment; returns the rendered report.
pub fn run(env: &ForestEnv, scale: &Scale) -> String {
    let mut report = Report::new();
    report.heading("Figure 4: best QFT × model vs. established estimators (forest)");

    let pg = PostgresEstimator::analyze_default(&env.db);
    let sampling = SamplingEstimator::new(&env.db, 0.001, 99);
    // Extension beyond the paper's figure: the stronger sampling baseline
    // from its related work (single-table queries fall back to Bernoulli
    // semantics, so differences appear in the join experiments).
    let corr = CorrelatedSamplingEstimator::new(&env.db, 0.001, 99);

    report.line("-- Conjunctive queries --");
    let gb_conj = train_single_table(
        env.db.catalog(),
        TableId(0),
        &env.conj_train,
        QftKind::Conjunctive,
        ModelKind::Gb,
        scale,
        true,
    );
    let mut mscn = MscnEstimator::new(
        env.db.catalog(),
        PredicateMode::PerAttribute {
            max_buckets: scale.buckets,
            attr_sel: true,
        },
        MscnConfig {
            hidden: 32,
            epochs: scale.mscn_epochs,
            batch_size: 64,
            learning_rate: 1e-3,
            seed: 6,
        },
    )
    .expect("valid featurizer config");
    mscn.fit(&env.conj_train).expect("MSCN training");
    for k in ATTR_GROUPS {
        let group = by_attribute_count(&env.conj_test, k);
        if group.len() < 5 {
            continue;
        }
        report.boxplot(&format!("postgres   | {k} attrs"), &q_errors(&pg, &group));
        report.boxplot(
            &format!("sampling   | {k} attrs"),
            &q_errors(&sampling, &group),
        );
        report.boxplot(&format!("corr-sampl | {k} attrs"), &q_errors(&corr, &group));
        report.boxplot(&format!("MSCN       | {k} attrs"), &q_errors(&mscn, &group));
        report.boxplot(
            &format!("GB + conj  | {k} attrs"),
            &q_errors(&gb_conj, &group),
        );
        report.line("");
    }

    report.line("-- Mixed queries (MSCN not applicable) --");
    let gb_comp = train_single_table(
        env.db.catalog(),
        TableId(0),
        &env.mixed_train,
        QftKind::Complex,
        ModelKind::Gb,
        scale,
        true,
    );
    for k in ATTR_GROUPS {
        let group = by_attribute_count(&env.mixed_test, k);
        if group.len() < 5 {
            continue;
        }
        report.boxplot(&format!("postgres   | {k} attrs"), &q_errors(&pg, &group));
        report.boxplot(
            &format!("sampling   | {k} attrs"),
            &q_errors(&sampling, &group),
        );
        report.boxplot(
            &format!("GB + comp  | {k} attrs"),
            &q_errors(&gb_comp, &group),
        );
        report.line("");
    }
    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_smoke_scale() {
        let scale = Scale::smoke();
        let env = ForestEnv::build(&scale);
        let out = run(&env, &scale);
        assert!(out.contains("postgres"));
        assert!(out.contains("GB + comp"));
    }
}
