//! Figure 1: q-error distribution for every QFT × ML model combination on
//! the forest dataset. `simple`, `range`, and `conjunctive` run on the
//! conjunctive workload; `complex` runs on the mixed workload (as in the
//! paper, separated by a vertical line in the plot).

use qfe_core::featurize::mscn::PredicateMode;
use qfe_core::TableId;
use qfe_estimators::MscnEstimator;
use qfe_ml::mscn::MscnConfig;

use crate::envs::ForestEnv;
use crate::report::Report;
use crate::scale::Scale;
use crate::trainers::{q_errors, train_single_table, ModelKind, QftKind};

/// Run the experiment; returns the rendered report.
pub fn run(env: &ForestEnv, scale: &Scale) -> String {
    let mut report = Report::new();
    report.heading("Figure 1: error distribution by QFT × ML model (forest)");
    report.line(format!(
        "scale = {} ({} train / {} test conjunctive, {} / {} mixed)",
        scale.label,
        env.conj_train.len(),
        env.conj_test.len(),
        env.mixed_train.len(),
        env.mixed_test.len()
    ));

    // The QFT × model grid cells are independent training runs, so they
    // fan out on the shared pool; each cell's training nests further
    // pool-parallel work (GBDT split search, MLP minibatches), which the
    // caller-runs pool design supports without deadlock. Cells are
    // collected in task order, so the report is byte-identical to the
    // old serial double loop at any thread count.
    let cells: Vec<(ModelKind, QftKind)> = [ModelKind::Gb, ModelKind::Nn]
        .into_iter()
        .flat_map(|model| QftKind::ALL.into_iter().map(move |qft| (model, qft)))
        .collect();
    let pool = qfe_core::parallel::current();
    let results = pool.scoped(
        cells
            .iter()
            .map(|&(model, qft)| {
                move || {
                    let (train, test) = match qft {
                        QftKind::Complex => (&env.mixed_train, &env.mixed_test),
                        _ => (&env.conj_train, &env.conj_test),
                    };
                    let est = train_single_table(
                        env.db.catalog(),
                        TableId(0),
                        train,
                        qft,
                        model,
                        scale,
                        true,
                    );
                    q_errors(&est, test)
                }
            })
            .collect(),
    );
    for ((model, qft), errors) in cells.into_iter().zip(results) {
        report.boxplot(&format!("{} + {}", model.label(), qft.label()), &errors);
    }

    // MSCN rows: per-predicate mode is MSCN × simple (the original
    // featurization), per-attribute-range is MSCN × range, per-attribute
    // buckets is MSCN × conj (and × comp on the mixed workload — the mode
    // handles disjunctions).
    let mscn_cfg = MscnConfig {
        hidden: 32,
        epochs: scale.mscn_epochs,
        batch_size: 64,
        learning_rate: 1e-3,
        seed: 3,
    };
    let modes = [
        ("MSCN + simple", PredicateMode::PerPredicate, false),
        ("MSCN + range", PredicateMode::PerAttributeRange, false),
        (
            "MSCN + conj",
            PredicateMode::PerAttribute {
                max_buckets: scale.buckets,
                attr_sel: true,
            },
            false,
        ),
        (
            "MSCN + comp",
            PredicateMode::PerAttribute {
                max_buckets: scale.buckets,
                attr_sel: true,
            },
            true,
        ),
    ];
    for (label, mode, mixed) in modes {
        let (train, test) = if mixed {
            (&env.mixed_train, &env.mixed_test)
        } else {
            (&env.conj_train, &env.conj_test)
        };
        let mut est = MscnEstimator::new(env.db.catalog(), mode, mscn_cfg.clone())
            .expect("valid featurizer config");
        est.fit(train).expect("MSCN training");
        let errors = q_errors(&est, test);
        report.boxplot(label, &errors);
    }

    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_smoke_scale() {
        let scale = Scale::smoke();
        let env = ForestEnv::build(&scale);
        let out = run(&env, &scale);
        assert!(out.contains("GB + conj"));
        assert!(out.contains("NN + simple"));
        assert!(out.contains("MSCN + comp"));
    }
}
