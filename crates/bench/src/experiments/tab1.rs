//! Table 1: the 70 JOB-light join queries under local models, for
//! {NN, GB} × {simple, range, conj}. `complex` is omitted exactly as in
//! the paper: JOB-light contains no disjunctions, so its feature vectors
//! equal `conj`'s.

use crate::envs::ImdbEnv;
use crate::report::Report;
use crate::scale::Scale;
use crate::trainers::{q_errors, train_local_models, ModelKind, QftKind};

/// Run the experiment; returns the rendered report.
pub fn run(env: &ImdbEnv, scale: &Scale) -> String {
    let mut report = Report::new();
    report.heading("Table 1: JOB-light join queries (local models)");
    report.line(format!(
        "scale = {} ({} training join queries, {} suite queries)",
        scale.label,
        env.train.len(),
        env.suite.len()
    ));
    report.table_header("model + QFT");
    for model in [ModelKind::Nn, ModelKind::Gb] {
        for qft in [QftKind::Simple, QftKind::Range, QftKind::Conjunctive] {
            let est = train_local_models(
                env.db.catalog(),
                &env.train,
                qft,
                model,
                scale,
                scale.buckets,
            );
            let errors = q_errors(&est, &env.suite);
            report.table_row(&format!("{} + {}", model.label(), qft.label()), &errors);
        }
    }
    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_smoke_scale() {
        let scale = Scale::smoke();
        let env = ImdbEnv::build(&scale);
        let out = run(&env, &scale);
        assert!(out.contains("GB + conj"));
        assert!(out.contains("NN + simple"));
    }
}
