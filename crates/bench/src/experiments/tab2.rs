//! Table 2: local vs global models on JOB-light — the original MSCN,
//! MSCN with the paper's conjunction-encoded predicate set, and the local
//! NN + conj for comparison. The paper's finding: the QFT upgrade improves
//! MSCN across all quantiles, but local models still beat global ones.

use qfe_core::featurize::mscn::PredicateMode;
use qfe_estimators::MscnEstimator;
use qfe_ml::mscn::MscnConfig;

use crate::envs::ImdbEnv;
use crate::report::Report;
use crate::scale::Scale;
use crate::trainers::{q_errors, train_local_models, ModelKind, QftKind};

/// Run the experiment; returns the rendered report.
pub fn run(env: &ImdbEnv, scale: &Scale) -> String {
    let mut report = Report::new();
    report.heading("Table 2: JOB-light — local vs. global models");
    report.table_header("model + QFT");

    let mscn_cfg = MscnConfig {
        hidden: 32,
        epochs: scale.mscn_epochs,
        batch_size: 64,
        learning_rate: 1e-3,
        seed: 4,
    };
    let mut original = MscnEstimator::new(
        env.db.catalog(),
        PredicateMode::PerPredicate,
        mscn_cfg.clone(),
    )
    .expect("valid featurizer config");
    original.fit(&env.train).expect("MSCN training");
    report.table_row("MSCN w/o mods (global)", &q_errors(&original, &env.suite));

    let mut modded = MscnEstimator::new(
        env.db.catalog(),
        PredicateMode::PerAttribute {
            max_buckets: scale.buckets,
            attr_sel: true,
        },
        mscn_cfg,
    )
    .expect("valid featurizer config");
    modded.fit(&env.train).expect("MSCN training");
    report.table_row("MSCN + conj (global)", &q_errors(&modded, &env.suite));

    let local = train_local_models(
        env.db.catalog(),
        &env.train,
        QftKind::Conjunctive,
        ModelKind::Nn,
        scale,
        scale.buckets,
    );
    report.table_row("NN + conj (local)", &q_errors(&local, &env.suite));
    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_smoke_scale() {
        let scale = Scale::smoke();
        let env = ImdbEnv::build(&scale);
        let out = run(&env, &scale);
        assert!(out.contains("MSCN w/o mods"));
        assert!(out.contains("NN + conj (local)"));
    }
}
