//! Table 6: training convergence — mean q-error for growing training-set
//! sizes, {GB, NN} × all four QFTs. The paper's shape: errors decrease
//! monotonically in training size; GB needs far fewer queries than NN;
//! conj/comp dominate range/simple at every size.

use qfe_core::TableId;
use qfe_estimators::labels::LabeledQueries;

use crate::envs::ForestEnv;
use crate::report::Report;
use crate::scale::Scale;
use crate::trainers::{q_errors, train_single_table, ModelKind, QftKind};

/// Training-set fractions mirroring the paper's 10k–100k sweep.
pub const FRACTIONS: [f64; 6] = [0.1, 0.2, 0.3, 0.4, 0.5, 1.0];

fn prefix(data: &LabeledQueries, n: usize) -> LabeledQueries {
    LabeledQueries {
        queries: data.queries[..n].to_vec(),
        cardinalities: data.cardinalities[..n].to_vec(),
    }
}

/// Run the experiment; returns the rendered report.
pub fn run(env: &ForestEnv, scale: &Scale) -> String {
    let mut report = Report::new();
    report.heading("Table 6: mean q-error vs. number of training queries (forest)");
    for model in [ModelKind::Gb, ModelKind::Nn] {
        report.line(format!(
            "{:<10} {:>10} {:>10} {:>10} {:>10}",
            format!("[{}]", model.label()),
            "conj",
            "comp",
            "range",
            "simple"
        ));
        for frac in FRACTIONS {
            let mut row = format!("{:<10}", format!("{:.0}%", frac * 100.0));
            for qft in [
                QftKind::Conjunctive,
                QftKind::Complex,
                QftKind::Range,
                QftKind::Simple,
            ] {
                let (train, test) = match qft {
                    QftKind::Complex => (&env.mixed_train, &env.mixed_test),
                    _ => (&env.conj_train, &env.conj_test),
                };
                let n = ((train.len() as f64) * frac).round() as usize;
                let sub = prefix(train, n.max(50).min(train.len()));
                let est =
                    train_single_table(env.db.catalog(), TableId(0), &sub, qft, model, scale, true);
                let errors = q_errors(&est, test);
                let mean = errors.iter().sum::<f64>() / errors.len() as f64;
                row.push_str(&format!(" {mean:>10.2}"));
            }
            report.line(row);
        }
        report.line("");
    }
    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_selection() {
        let scale = Scale::smoke();
        let env = ForestEnv::build(&scale);
        let sub = prefix(&env.conj_train, 100);
        assert_eq!(sub.len(), 100);
        assert_eq!(sub.cardinalities[0], env.conj_train.cardinalities[0]);
    }
}
