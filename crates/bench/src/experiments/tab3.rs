//! Table 3: effect of the per-attribute selectivity entries (the gray
//! entries of Algorithm 1) — {GB, NN} × {conj, comp} each trained with and
//! without `attrSel`. The paper finds the difference mostly marginal but
//! worst-case errors usually improve with the entries.

use qfe_core::TableId;

use crate::envs::ForestEnv;
use crate::report::Report;
use crate::scale::Scale;
use crate::trainers::{q_errors, train_single_table, ModelKind, QftKind};

/// Run the experiment; returns the rendered report.
pub fn run(env: &ForestEnv, scale: &Scale) -> String {
    let mut report = Report::new();
    report.heading("Table 3: effect of per-attribute selectivity estimates (forest)");
    report.table_header("model");
    for model in [ModelKind::Gb, ModelKind::Nn] {
        for qft in [QftKind::Conjunctive, QftKind::Complex] {
            let (train, test) = match qft {
                QftKind::Complex => (&env.mixed_train, &env.mixed_test),
                _ => (&env.conj_train, &env.conj_test),
            };
            for attr_sel in [true, false] {
                let est = train_single_table(
                    env.db.catalog(),
                    TableId(0),
                    train,
                    qft,
                    model,
                    scale,
                    attr_sel,
                );
                let label = format!(
                    "{}+{} {}",
                    model.label(),
                    qft.label(),
                    if attr_sel {
                        "w/ attrSel"
                    } else {
                        "w/o attrSel"
                    }
                );
                report.table_row(&label, &q_errors(&est, test));
            }
        }
    }
    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_smoke_scale() {
        let scale = Scale::smoke();
        let env = ForestEnv::build(&scale);
        let out = run(&env, &scale);
        assert!(out.contains("GB+conj w/ attrSel"));
        assert!(out.contains("NN+comp w/o attrSel"));
    }
}
