//! Table 7 + Section 5.7: featurization time per QFT (µs/query) and the
//! memory consumption of every estimator family.
//!
//! Expected shape: all QFTs featurize well under 100 µs/query; cost grows
//! with QFT complexity (simple < range < conj < comp). Memory: GB smallest
//! (kB), NN largest (up to MB), sampling proportional to the sample,
//! Postgres histograms small.

use std::time::Instant;

use qfe_core::estimator::CardinalityEstimator;
use qfe_core::featurize::{AttributeSpace, Featurizer};
use qfe_core::TableId;
use qfe_estimators::{PostgresEstimator, SamplingEstimator};

use crate::envs::ForestEnv;
use crate::report::{format_bytes, Report};
use crate::scale::Scale;
use crate::trainers::{make_featurizer, train_single_table, ModelKind, QftKind};

/// Measure mean featurization latency (µs/query) of `featurizer` over the
/// given queries.
pub fn featurization_micros(featurizer: &dyn Featurizer, queries: &[qfe_core::Query]) -> f64 {
    let start = Instant::now();
    let mut sink = 0usize;
    for q in queries {
        if let Ok(f) = featurizer.featurize(q) {
            sink += f.dim();
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    elapsed * 1e6 / queries.len() as f64
}

/// Run the experiment; returns the rendered report.
pub fn run(env: &ForestEnv, scale: &Scale) -> String {
    let mut report = Report::new();
    report.heading("Table 7: time consumption of QFTs (forest workload)");
    let space = AttributeSpace::for_table(env.db.catalog(), TableId(0));
    for qft in QftKind::ALL {
        let featurizer = make_featurizer(qft, space.clone(), scale.buckets, true);
        let queries = match qft {
            QftKind::Complex => &env.mixed_test.queries,
            _ => &env.conj_test.queries,
        };
        let micros = featurization_micros(featurizer.as_ref(), queries);
        report.line(format!("{:<10} {micros:>8.1} µs per query", qft.label()));
    }

    report.heading("Section 5.7: estimator memory consumption");
    let pg = PostgresEstimator::analyze_default(&env.db);
    report.line(format!(
        "{:<22} {:>12}",
        "postgres (histograms)",
        format_bytes(pg.memory_bytes())
    ));
    let sampling = SamplingEstimator::new(&env.db, 0.001, 5);
    let _ = sampling.estimate(&env.conj_test.queries[0]);
    report.line(format!(
        "{:<22} {:>12}",
        "sampling (0.1% sample)",
        format_bytes(sampling.memory_bytes())
    ));
    let gb = train_single_table(
        env.db.catalog(),
        TableId(0),
        &env.conj_train,
        QftKind::Conjunctive,
        ModelKind::Gb,
        scale,
        true,
    );
    report.line(format!(
        "{:<22} {:>12}",
        "GB + conj",
        format_bytes(gb.memory_bytes())
    ));
    // A compact GB configuration (the paper's GB is a few kB; tree count
    // and leaf caps trade memory for the last bit of accuracy).
    let scale_compact = Scale {
        gbdt_trees: 40,
        ..scale.clone()
    };
    let gb_small = train_single_table(
        env.db.catalog(),
        TableId(0),
        &env.conj_train,
        QftKind::Conjunctive,
        ModelKind::Gb,
        &scale_compact,
        true,
    );
    report.line(format!(
        "{:<22} {:>12}",
        "GB + conj (40 trees)",
        format_bytes(gb_small.memory_bytes())
    ));
    let nn = train_single_table(
        env.db.catalog(),
        TableId(0),
        &env.conj_train,
        QftKind::Conjunctive,
        ModelKind::Nn,
        scale,
        true,
    );
    report.line(format!(
        "{:<22} {:>12}",
        "NN + conj",
        format_bytes(nn.memory_bytes())
    ));
    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn featurization_is_fast_and_ordered() {
        let scale = Scale::smoke();
        let env = ForestEnv::build(&scale);
        let space = AttributeSpace::for_table(env.db.catalog(), TableId(0));
        let simple = make_featurizer(QftKind::Simple, space.clone(), scale.buckets, true);
        let micros = featurization_micros(simple.as_ref(), &env.conj_test.queries);
        // Paper: well under 100 µs/query (debug builds are slower; allow
        // generous headroom).
        assert!(micros < 2_000.0, "simple featurization {micros} µs");
    }
}
