//! Figure 5: query drift (Section 5.5.1) — train on low-dimensional
//! queries (≤ 2 attributes), test on high-dimensional queries (≥ 3
//! attributes). Rows for 1–2 attributes show training-distribution
//! errors; rows for 3/5/8 attributes show the drifted test errors.
//!
//! Expected shape: GB generalizes under drift for all QFTs; NN degrades
//! visibly, least with conj/comp.

use qfe_core::TableId;
use qfe_estimators::labels::LabeledQueries;
use qfe_workload::drift::drift_split;

use crate::envs::ForestEnv;
use crate::experiments::fig2::by_attribute_count;
use crate::report::Report;
use crate::scale::Scale;
use crate::trainers::{q_errors, train_single_table, ModelKind, QftKind};

fn select(data: &LabeledQueries, idx: &[usize]) -> LabeledQueries {
    LabeledQueries {
        queries: idx.iter().map(|&i| data.queries[i].clone()).collect(),
        cardinalities: idx.iter().map(|&i| data.cardinalities[i]).collect(),
    }
}

/// Run the experiment; returns the rendered report.
pub fn run(env: &ForestEnv, scale: &Scale) -> String {
    let mut report = Report::new();
    report.heading("Figure 5: query drift — train on ≤2 attrs, test on ≥3 attrs (forest)");

    for model in [ModelKind::Gb, ModelKind::Nn] {
        for qft in QftKind::ALL {
            let (all_train, all_test) = match qft {
                QftKind::Complex => (&env.mixed_train, &env.mixed_test),
                _ => (&env.conj_train, &env.conj_test),
            };
            let (low_idx, _) = drift_split(&all_train.queries, 2);
            let train = select(all_train, &low_idx);
            if train.len() < 50 {
                continue;
            }
            let est = train_single_table(
                env.db.catalog(),
                TableId(0),
                &train,
                qft,
                model,
                scale,
                true,
            );
            for k in [1usize, 2, 3, 5, 8] {
                let group = by_attribute_count(all_test, k);
                if group.len() < 5 {
                    continue;
                }
                let marker = if k <= 2 { "train-dist" } else { "DRIFTED" };
                report.boxplot(
                    &format!("{}+{:<5} {k} attrs {marker}", model.label(), qft.label()),
                    &q_errors(&est, &group),
                );
            }
            report.line("");
        }
    }
    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_selection_works() {
        let scale = Scale::smoke();
        let env = ForestEnv::build(&scale);
        let (low, high) = drift_split(&env.conj_train.queries, 2);
        assert_eq!(low.len() + high.len(), env.conj_train.len());
        let train = select(&env.conj_train, &low);
        assert!(train.queries.iter().all(|q| q.attribute_count() <= 2));
    }
}
