//! Section 6 extensions, measured:
//!
//! * **GROUP BY** — grouped-result-size estimation with the binary
//!   grouping vector, against a naive baseline that ignores grouping
//!   (always estimating the mean group count).
//! * **String predicates** — prefix predicates over an order-preserving
//!   dictionary, featurized natively by the bucketized QFTs.

use qfe_core::featurize::{AttributeSpace, UniversalConjunctionEncoding};
use qfe_core::metrics::{q_error, ErrorSummary};
use qfe_core::{CmpOp, ColumnRef, CompoundPredicate, Query, SimplePredicate, TableId};
use qfe_data::table::{Database, Table};
use qfe_data::{Column, Dictionary};
use qfe_estimators::grouped::{label_grouped_queries, GroupedLearnedEstimator};
use qfe_estimators::labels::label_queries;
use qfe_estimators::LearnedEstimator;
use qfe_ml::gbdt::{Gbdt, GbdtConfig};
use qfe_workload::{generate_grouped, GroupedConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::envs::ForestEnv;
use crate::report::Report;
use crate::scale::Scale;

fn gbdt(scale: &Scale) -> Box<Gbdt> {
    Box::new(Gbdt::new(GbdtConfig {
        n_trees: scale.gbdt_trees,
        min_samples_leaf: 3,
        ..GbdtConfig::default()
    }))
}

fn group_by_part(env: &ForestEnv, scale: &Scale, report: &mut Report) {
    report.heading("Section 6: GROUP BY result-size estimation (forest)");
    let table = TableId(0);
    let space = AttributeSpace::for_table(env.db.catalog(), table);
    let train = label_grouped_queries(
        &env.db,
        generate_grouped(
            env.db.catalog(),
            &GroupedConfig::new(table, scale.train_queries, 6_001),
        ),
    );
    let test = label_grouped_queries(
        &env.db,
        generate_grouped(
            env.db.catalog(),
            &GroupedConfig::new(table, scale.test_queries, 6_002),
        ),
    );
    let mut est = GroupedLearnedEstimator::new(
        Box::new(
            UniversalConjunctionEncoding::new(space.clone(), scale.buckets)
                .expect("valid featurizer config"),
        ),
        space,
        gbdt(scale),
    );
    est.fit(&train).expect("training");
    let errors: Vec<f64> = test
        .queries
        .iter()
        .zip(&test.group_counts)
        .map(|(g, &c)| q_error(c, est.estimate(g)))
        .collect();
    report.table_row("GB + conj + group bits", &errors);
    // Baseline that ignores the grouping vector entirely: predict the
    // training-mean group count for everything.
    let mean_groups = train.group_counts.iter().sum::<f64>() / train.len().max(1) as f64;
    let baseline: Vec<f64> = test
        .group_counts
        .iter()
        .map(|&c| q_error(c, mean_groups))
        .collect();
    report.table_row("mean-group-count baseline", &baseline);
    let s_est = ErrorSummary::from_errors(&errors);
    let s_base = ErrorSummary::from_errors(&baseline);
    report.line(format!(
        "grouping bits cut the median from {:.2} to {:.2}",
        s_base.median, s_est.median
    ));
}

fn string_predicate_part(scale: &Scale, report: &mut Report) {
    report.heading("Section 6: prefix predicates over a sorted dictionary");
    // A table of words with a zipf-ish letter distribution.
    let mut rng = StdRng::seed_from_u64(0x57_12);
    let letters = b"aabbbcdeefghiijkl";
    let mut words = Vec::with_capacity(40_000);
    for _ in 0..40_000 {
        let len = rng.gen_range(3..8usize);
        let w: String = (0..len)
            .map(|_| letters[rng.gen_range(0..letters.len())] as char)
            .collect();
        words.push(w);
    }
    let dict = Dictionary::from_values(words.clone());
    let codes: Vec<u32> = words.iter().map(|w| dict.code(w).unwrap()).collect();
    let db = Database::new(
        vec![Table::new(
            "words",
            vec![(
                "word".into(),
                Column::Dict {
                    codes,
                    dict: dict.clone(),
                },
            )],
        )],
        &[],
    );
    let table = TableId(0);
    let col = ColumnRef::new(table, qfe_core::ColumnId(0));

    // Training workload: random code ranges (what prefix predicates
    // dictionary-encode to).
    let mut queries = Vec::new();
    let max_code = dict.len() as i64 - 1;
    for _ in 0..scale.train_queries.min(4_000) {
        let a = rng.gen_range(0..=max_code);
        let b = rng.gen_range(0..=max_code);
        queries.push(Query::single_table(
            table,
            vec![CompoundPredicate::conjunction(
                col,
                vec![
                    SimplePredicate::new(CmpOp::Ge, a.min(b)),
                    SimplePredicate::new(CmpOp::Le, a.max(b)),
                ],
            )],
        ));
    }
    let train = label_queries(&db, queries);
    let space = AttributeSpace::for_table(db.catalog(), table);
    let mut est = LearnedEstimator::new(
        Box::new(
            UniversalConjunctionEncoding::new(space, scale.buckets)
                .expect("valid featurizer config"),
        ),
        gbdt(scale),
    );
    est.fit(&train).expect("training");

    // Test: LIKE 'p%' prefix predicates, encoded via the dictionary.
    let mut errors = Vec::new();
    for prefix in ["a", "b", "ba", "c", "de", "e", "i", "ka"] {
        let expr = dict.prefix_expr(prefix);
        let q = Query::single_table(table, vec![CompoundPredicate { column: col, expr }]);
        let truth = qfe_exec::true_cardinality(&db, &q).unwrap();
        if truth == 0 {
            continue;
        }
        use qfe_core::CardinalityEstimator;
        let e = est.estimate(&q);
        errors.push(q_error(truth as f64, e));
        report.line(format!(
            "LIKE '{prefix}%'  truth {truth:>6}  estimate {e:>9.0}  q-error {:>6.2}",
            q_error(truth as f64, e)
        ));
    }
    let s = ErrorSummary::from_errors(&errors);
    report.line(format!(
        "prefix predicates: median q-error {:.2} (featurized natively, no rewrite)",
        s.median
    ));
}

/// Run the Section 6 extension experiments; returns the rendered report.
pub fn run(env: &ForestEnv, scale: &Scale) -> String {
    let mut report = Report::new();
    group_by_part(env, scale, &mut report);
    string_predicate_part(scale, &mut report);
    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_smoke_scale() {
        let scale = Scale::smoke();
        let env = ForestEnv::build(&scale);
        let out = run(&env, &scale);
        assert!(out.contains("group bits"));
        assert!(out.contains("LIKE"));
    }
}
