//! Ablation studies for the design choices DESIGN.md calls out (these go
//! beyond the paper's own tables):
//!
//! 1. **Ternary vs binary bucket marks** — are the `½` entries of
//!    Algorithm 1 worth anything over a binary superset encoding?
//! 2. **Label transform** — regressing on `log(1+card)` vs raw counts.
//! 3. **GBDT capacity** — trees × depth sensitivity of GB + conj.
//! 4. **Equal-width vs equi-depth vs v-optimal buckets** — the
//!    data-driven partitioning refinements Section 3.2 suggests.
//! 5. **Limited Disjunction Encoding vs inclusion-exclusion** — the
//!    Section 6 argument, measured: accuracy and inner-estimate counts.

use qfe_core::featurize::{
    AttributeSpace, EquiDepthConjunctionEncoding, LimitedDisjunctionEncoding,
    UniversalConjunctionEncoding,
};
use qfe_core::metrics::q_error;
use qfe_core::{ColumnId, TableId};
use qfe_estimators::{IepEstimator, LearnedEstimator};
use qfe_ml::gbdt::{Gbdt, GbdtConfig};
use qfe_ml::matrix::Matrix;
use qfe_ml::train::Regressor;

use crate::envs::ForestEnv;
use crate::report::Report;
use crate::scale::Scale;
use crate::trainers::q_errors;

fn featurize_all(enc: &UniversalConjunctionEncoding, queries: &[qfe_core::Query]) -> Matrix {
    use qfe_core::featurize::Featurizer;
    let rows: Vec<Vec<f32>> = queries
        .iter()
        .map(|q| enc.featurize(q).expect("featurizable").0)
        .collect();
    Matrix::from_rows(&rows)
}

/// Run all three ablations; returns the rendered report.
pub fn run(env: &ForestEnv, scale: &Scale) -> String {
    let mut report = Report::new();

    // 1. Ternary vs binary marks.
    report.heading("Ablation: ternary ½-marks vs. binary buckets (GB + conj)");
    for ternary in [true, false] {
        let space = AttributeSpace::for_table(env.db.catalog(), TableId(0));
        let enc = UniversalConjunctionEncoding::new(space, scale.buckets)
            .expect("valid featurizer config")
            .with_ternary(ternary);
        let mut est = LearnedEstimator::new(
            Box::new(enc),
            Box::new(Gbdt::new(GbdtConfig {
                n_trees: scale.gbdt_trees,
                min_samples_leaf: 5,
                ..GbdtConfig::default()
            })),
        );
        est.fit(&env.conj_train).expect("training");
        let label = if ternary {
            "ternary {0,½,1}"
        } else {
            "binary {0,1}"
        };
        report.table_row(label, &q_errors(&est, &env.conj_test));
    }

    // 2. Label transform: log vs raw.
    report.heading("Ablation: log-label transform vs. raw counts (GB + conj)");
    {
        let space = AttributeSpace::for_table(env.db.catalog(), TableId(0));
        let enc = UniversalConjunctionEncoding::new(space, scale.buckets)
            .expect("valid featurizer config");
        let x_train = featurize_all(&enc, &env.conj_train.queries);
        let x_test = featurize_all(&enc, &env.conj_test.queries);
        // Raw labels, normalized only by the max to keep f32 range sane.
        let max_card = env
            .conj_train
            .cardinalities
            .iter()
            .cloned()
            .fold(1.0, f64::max);
        let y_raw: Vec<f32> = env
            .conj_train
            .cardinalities
            .iter()
            .map(|&c| (c / max_card) as f32)
            .collect();
        let mut gb = Gbdt::new(GbdtConfig {
            n_trees: scale.gbdt_trees,
            min_samples_leaf: 5,
            ..GbdtConfig::default()
        });
        gb.fit(&x_train, &y_raw);
        let errors: Vec<f64> = gb
            .predict_batch(&x_test)
            .into_iter()
            .zip(&env.conj_test.cardinalities)
            .map(|(p, &truth)| q_error(truth, (p as f64 * max_card).max(1.0)))
            .collect();
        report.table_row("raw labels", &errors);

        let mut est = LearnedEstimator::new(
            Box::new(enc),
            Box::new(Gbdt::new(GbdtConfig {
                n_trees: scale.gbdt_trees,
                min_samples_leaf: 5,
                ..GbdtConfig::default()
            })),
        );
        est.fit(&env.conj_train).expect("training");
        report.table_row("log labels", &q_errors(&est, &env.conj_test));
    }

    // 3. GBDT capacity sweep.
    report.heading("Ablation: GBDT capacity (trees × depth, GB + conj)");
    for (trees, depth) in [(10usize, 4usize), (40, 4), (40, 8), (160, 8)] {
        let space = AttributeSpace::for_table(env.db.catalog(), TableId(0));
        let mut est = LearnedEstimator::new(
            Box::new(
                UniversalConjunctionEncoding::new(space, scale.buckets)
                    .expect("valid featurizer config"),
            ),
            Box::new(Gbdt::new(GbdtConfig {
                n_trees: trees,
                max_depth: depth,
                min_samples_leaf: 5,
                ..GbdtConfig::default()
            })),
        );
        est.fit(&env.conj_train).expect("training");
        report.table_row(
            &format!("{trees} trees, depth {depth}"),
            &q_errors(&est, &env.conj_test),
        );
    }

    // 4. Equal-width vs equi-depth vs v-optimal buckets, same budget.
    report.heading("Ablation: equal-width vs equi-depth vs v-optimal buckets (GB)");
    {
        let space = AttributeSpace::for_table(env.db.catalog(), TableId(0));
        let gbdt = || {
            Box::new(Gbdt::new(GbdtConfig {
                n_trees: scale.gbdt_trees,
                min_samples_leaf: 5,
                ..GbdtConfig::default()
            }))
        };
        let mut equal_width = LearnedEstimator::new(
            Box::new(
                UniversalConjunctionEncoding::new(space.clone(), scale.buckets)
                    .expect("valid featurizer config"),
            ),
            gbdt(),
        );
        equal_width.fit(&env.conj_train).expect("training");
        report.table_row(
            "equal-width buckets",
            &q_errors(&equal_width, &env.conj_test),
        );

        let table = env.db.table(TableId(0));
        let edges: Vec<Vec<f64>> = (0..space.len())
            .map(|ci| {
                qfe_data::histogram::equi_depth_edges(table.column(ColumnId(ci)), scale.buckets)
            })
            .collect();
        let mut equi_depth = LearnedEstimator::new(
            Box::new(EquiDepthConjunctionEncoding::new(space, edges)),
            gbdt(),
        );
        equi_depth.fit(&env.conj_train).expect("training");
        report.table_row("equi-depth buckets", &q_errors(&equi_depth, &env.conj_test));

        let space = AttributeSpace::for_table(env.db.catalog(), TableId(0));
        let vopt_edges: Vec<Vec<f64>> = (0..space.len())
            .map(|ci| {
                qfe_data::voptimal::v_optimal_edges(table.column(ColumnId(ci)), scale.buckets, 512)
            })
            .collect();
        let mut v_optimal = LearnedEstimator::new(
            Box::new(EquiDepthConjunctionEncoding::new(space, vopt_edges)),
            gbdt(),
        );
        v_optimal.fit(&env.conj_train).expect("training");
        report.table_row("v-optimal buckets", &q_errors(&v_optimal, &env.conj_test));
    }

    // 5. Limited Disjunction Encoding vs inclusion-exclusion on mixed
    // queries (Section 6).
    report.heading("Ablation: complex encoding vs inclusion-exclusion (mixed queries)");
    {
        let space = AttributeSpace::for_table(env.db.catalog(), TableId(0));
        let mut complex = LearnedEstimator::new(
            Box::new(
                LimitedDisjunctionEncoding::new(space.clone(), scale.buckets)
                    .expect("valid featurizer config"),
            ),
            Box::new(Gbdt::new(GbdtConfig {
                n_trees: scale.gbdt_trees,
                min_samples_leaf: 5,
                ..GbdtConfig::default()
            })),
        );
        complex.fit(&env.mixed_train).expect("training");
        report.table_row(
            "GB + complex (1 estimate/query)",
            &q_errors(&complex, &env.mixed_test),
        );

        // IEP over a conj-only model: train on the conjunctive workload,
        // answer mixed queries by inclusion-exclusion.
        let mut conj = LearnedEstimator::new(
            Box::new(
                UniversalConjunctionEncoding::new(space, scale.buckets)
                    .expect("valid featurizer config"),
            ),
            Box::new(Gbdt::new(GbdtConfig {
                n_trees: scale.gbdt_trees,
                min_samples_leaf: 5,
                ..GbdtConfig::default()
            })),
        );
        conj.fit(&env.conj_train).expect("training");
        let iep = IepEstimator::new(conj, 12);
        let errors = q_errors(&iep, &env.mixed_test);
        report.table_row("IEP(GB + conj)", &errors);
        report.line(format!(
            "IEP inner estimates for {} mixed queries: {} ({}x blow-up)",
            env.mixed_test.len(),
            iep.inner_calls(),
            iep.inner_calls() / env.mixed_test.len().max(1) as u64
        ));
    }

    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_smoke_scale() {
        let scale = Scale::smoke();
        let env = ForestEnv::build(&scale);
        let out = run(&env, &scale);
        assert!(out.contains("ternary"));
        assert!(out.contains("raw labels"));
        assert!(out.contains("160 trees"));
    }
}
