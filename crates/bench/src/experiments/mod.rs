//! One module per paper table/figure, plus the ablation studies.
//!
//! | module | reproduces |
//! |---|---|
//! | [`fig1`] | Figure 1 — q-error distributions per QFT × model (forest) |
//! | [`fig2`] | Figure 2 — q-error by number of attributes (GB) |
//! | [`fig3`] | Figure 3 — q-error by number of predicates (GB) |
//! | [`tab1`] | Table 1 — JOB-light, local models, QFT × {NN, GB} |
//! | [`tab2`] | Table 2 — local vs global models on JOB-light |
//! | [`tab3`] | Table 3 — effect of per-attribute selectivity entries |
//! | [`tab4`] | Table 4 — end-to-end runtimes under three estimate sources |
//! | [`fig4`] | Figure 4 — best QFT × model vs established estimators |
//! | [`tab5`] | Table 5 — feature-vector length sweep |
//! | [`fig5`] | Figure 5 — query drift |
//! | [`tab6`] | Table 6 — training convergence |
//! | [`tab7`] | Table 7 + §5.7 — featurization time & estimator memory |
//! | [`sec552`] | §5.5.2 — estimator reconstruction cost after data drift |
//! | [`sec6`] | §6 extensions — GROUP BY and string-prefix estimation |
//! | [`ablations`] | DESIGN.md §5 — ternary marks, label transform, GBDT capacity, equi-depth buckets, IEP |

pub mod ablations;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod sec552;
pub mod sec6;
pub mod tab1;
pub mod tab2;
pub mod tab3;
pub mod tab4;
pub mod tab5;
pub mod tab6;
pub mod tab7;
