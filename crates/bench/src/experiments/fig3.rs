//! Figure 3: estimation errors per QFT in the number of predicates in the
//! queries (GB models). In the paper's reading: 2 predicates = a single
//! closed range (lower + upper bound); 3 predicates = a closed range plus
//! one `<>` exclusion — the point where Range Predicate Encoding's upper
//! whisker spikes.

use qfe_core::TableId;
use qfe_estimators::labels::LabeledQueries;

use crate::envs::ForestEnv;
use crate::report::Report;
use crate::scale::Scale;
use crate::trainers::{q_errors, train_single_table, ModelKind, QftKind};

/// Predicate-count buckets: exact counts, then a tail group.
pub const PRED_GROUPS: [(usize, usize); 6] =
    [(2, 2), (3, 3), (4, 4), (5, 6), (7, 10), (11, usize::MAX)];

/// Filter a labeled workload by total simple-predicate count.
pub fn by_predicate_count(data: &LabeledQueries, lo: usize, hi: usize) -> LabeledQueries {
    data.clone()
        .filter(|q, _| (lo..=hi).contains(&q.predicate_count()))
}

/// Run the experiment; returns the rendered report.
pub fn run(env: &ForestEnv, scale: &Scale) -> String {
    let mut report = Report::new();
    report.heading("Figure 3: q-error per QFT by number of predicates (GB, forest)");

    for qft in QftKind::ALL {
        let (train, test) = match qft {
            QftKind::Complex => (&env.mixed_train, &env.mixed_test),
            _ => (&env.conj_train, &env.conj_test),
        };
        let est = train_single_table(
            env.db.catalog(),
            TableId(0),
            train,
            qft,
            ModelKind::Gb,
            scale,
            true,
        );
        for (lo, hi) in PRED_GROUPS {
            let group = by_predicate_count(test, lo, hi);
            if group.len() < 5 {
                continue;
            }
            let label = if hi == usize::MAX {
                format!("GB + {:<7} | {lo}+ preds", qft.label())
            } else if lo == hi {
                format!("GB + {:<7} | {lo} preds", qft.label())
            } else {
                format!("GB + {:<7} | {lo}-{hi} preds", qft.label())
            };
            let errors = q_errors(&est, &group);
            report.boxplot(&label, &errors);
        }
        report.line("");
    }
    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_grouping() {
        let scale = Scale::smoke();
        let env = ForestEnv::build(&scale);
        let g = by_predicate_count(&env.conj_test, 2, 3);
        assert!(g
            .queries
            .iter()
            .all(|q| (2..=3).contains(&q.predicate_count())));
    }
}
