//! Table 5: accuracy for different feature-vector lengths — Universal
//! Conjunction Encoding with n ∈ {8, 16, 32, 64, 256} per-attribute
//! entries, GB local models on JOB-light. Also reports the per-query
//! feature-vector footprint (which equals the model's input layer size).
//!
//! The paper's shape: mid-size n wins; too few buckets lose information,
//! too many make the pattern harder to learn for a fixed training budget.

use qfe_core::featurize::{AttributeSpace, Featurizer, UniversalConjunctionEncoding};

use crate::envs::ImdbEnv;
use crate::report::Report;
use crate::scale::Scale;
use crate::trainers::{q_errors, train_local_models, ModelKind, QftKind};

/// The sweep of per-attribute entry counts from the paper.
pub const LENGTHS: [usize; 5] = [8, 16, 32, 64, 256];

/// Run the experiment; returns the rendered report.
pub fn run(env: &ImdbEnv, scale: &Scale) -> String {
    let mut report = Report::new();
    report.heading("Table 5: accuracy for different feature vector lengths (GB + conj, JOB-light)");
    // The paper's U-shape is a training-budget effect: long vectors are
    // hard to learn *given the number of training queries* (Section 5.4).
    // Use a fixed, deliberately modest budget so the trade-off is visible
    // rather than washed out by abundant data.
    let budget = (env.train.len() / 3).max(1_000).min(env.train.len());
    let (train, _) = env.train.clone().split_at(budget);
    report.line(format!(
        "training budget: {} queries (of {} available)",
        train.len(),
        env.train.len()
    ));
    report.line(format!(
        "{:<12} {:>16} {:>47}",
        "no. entries", "bytes feat. vec.*", "accuracy"
    ));
    for n in LENGTHS {
        // Footprint of a feature vector over the full catalog space (the
        // widest local model input).
        let space = AttributeSpace::for_catalog(env.db.catalog());
        let probe = UniversalConjunctionEncoding::new(space, n).expect("valid featurizer config");
        let bytes = probe.dim() * std::mem::size_of::<f32>();
        let est = train_local_models(
            env.db.catalog(),
            &train,
            QftKind::Conjunctive,
            ModelKind::Gb,
            scale,
            n,
        );
        let errors = q_errors(&est, &env.suite);
        let s = qfe_core::metrics::ErrorSummary::from_errors(&errors);
        report.line(format!(
            "{n:<12} {bytes:>16}  mean {:>8.2} median {:>7.2} 99% {:>9.2} max {:>10.2}",
            s.mean, s.median, s.p99, s.max
        ));
    }
    report.line("*Affects only the input layer; the rest of the model is unchanged.");
    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_a_short_sweep_at_smoke_scale() {
        // Full sweep is slow; smoke just checks the plumbing with one n.
        let scale = Scale::smoke();
        let env = ImdbEnv::build(&scale);
        let est = train_local_models(
            env.db.catalog(),
            &env.train,
            QftKind::Conjunctive,
            ModelKind::Gb,
            &scale,
            8,
        );
        let errors = q_errors(&est, &env.suite);
        assert_eq!(errors.len(), env.suite.len());
    }
}
