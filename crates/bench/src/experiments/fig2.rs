//! Figure 2: estimation errors per QFT in the number of attributes
//! mentioned in the queries (GB models only, as in the paper — NN
//! underperforms GB everywhere and MSCN is worse on joins).

use qfe_core::TableId;
use qfe_estimators::labels::LabeledQueries;

use crate::envs::ForestEnv;
use crate::report::Report;
use crate::scale::Scale;
use crate::trainers::{q_errors, train_single_table, ModelKind, QftKind};

/// Attribute-count groups shown in the paper's figure.
pub const ATTR_GROUPS: [usize; 5] = [1, 2, 3, 5, 8];

/// Split a labeled workload by exact attribute count.
pub fn by_attribute_count(data: &LabeledQueries, k: usize) -> LabeledQueries {
    data.clone().filter(|q, _| q.attribute_count() == k)
}

/// Run the experiment; returns the rendered report.
pub fn run(env: &ForestEnv, scale: &Scale) -> String {
    let mut report = Report::new();
    report.heading("Figure 2: q-error per QFT by number of attributes (GB, forest)");

    for qft in QftKind::ALL {
        let (train, test) = match qft {
            QftKind::Complex => (&env.mixed_train, &env.mixed_test),
            _ => (&env.conj_train, &env.conj_test),
        };
        let est = train_single_table(
            env.db.catalog(),
            TableId(0),
            train,
            qft,
            ModelKind::Gb,
            scale,
            true,
        );
        for k in ATTR_GROUPS {
            let group = by_attribute_count(test, k);
            if group.len() < 5 {
                continue;
            }
            let errors = q_errors(&est, &group);
            report.boxplot(&format!("GB + {:<7} | {k} attrs", qft.label()), &errors);
        }
        report.line("");
    }
    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_is_exact() {
        let scale = Scale::smoke();
        let env = ForestEnv::build(&scale);
        let g = by_attribute_count(&env.conj_test, 2);
        assert!(g.queries.iter().all(|q| q.attribute_count() == 2));
        assert!(!g.is_empty());
    }
}
