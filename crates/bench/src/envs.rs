//! Shared experiment environments: datasets plus labeled workloads, built
//! once per process and reused by every experiment.

use qfe_core::TableId;
use qfe_data::forest::{generate_forest, ForestConfig};
use qfe_data::imdb::{generate_imdb, ImdbConfig};
use qfe_data::Database;
use qfe_estimators::labels::{label_queries, LabeledQueries};
use qfe_workload::{
    generate_conjunctive_with_data, generate_join_workload, generate_mixed_with_data,
    job_light_suite, ConjunctiveConfig, JoinWorkloadConfig, MixedConfig,
};

use crate::scale::Scale;

/// Forest dataset + labeled conjunctive and mixed workloads.
pub struct ForestEnv {
    /// The forest database (single table, id 0).
    pub db: Database,
    /// Conjunctive training workload.
    pub conj_train: LabeledQueries,
    /// Conjunctive test workload.
    pub conj_test: LabeledQueries,
    /// Mixed training workload.
    pub mixed_train: LabeledQueries,
    /// Mixed test workload.
    pub mixed_test: LabeledQueries,
}

impl ForestEnv {
    /// Build the environment for `scale`. Training and test sets are
    /// disjoint by construction (separate generator seeds; the paper also
    /// keeps them disjoint to avoid test-set leakage).
    pub fn build(scale: &Scale) -> Self {
        let db = generate_forest(&ForestConfig {
            rows: scale.forest_rows,
            // Quantitative covertype layout: random closed ranges on the
            // binary one-hot columns are almost always trivial ([0,1] or
            // [0,0]), so the workloads run on the 10 quantitative
            // attributes + cover_type, which carry the correlations.
            quantitative_only: true,
            seed: 0xF0_4E57,
        });
        let table = TableId(0);
        let oversample = |n: usize| n * 2; // data-aware queries label empty ~half the time
                                           // Data-aware literal generation: range endpoints mix uniform and
                                           // data-drawn values, `<>` exclusions hit frequent values (like the
                                           // paper's July-4th example) — this is what makes dropping them
                                           // (Range Predicate Encoding) genuinely costly.
        let conj_train = label_queries(
            &db,
            generate_conjunctive_with_data(
                &db,
                &ConjunctiveConfig::new(table, oversample(scale.train_queries), 101),
            ),
        );
        let conj_test = label_queries(
            &db,
            generate_conjunctive_with_data(
                &db,
                &ConjunctiveConfig::new(table, oversample(scale.test_queries), 202),
            ),
        );
        let mixed_train = label_queries(
            &db,
            generate_mixed_with_data(
                &db,
                &MixedConfig::new(table, oversample(scale.train_queries), 303),
            ),
        );
        let mixed_test = label_queries(
            &db,
            generate_mixed_with_data(
                &db,
                &MixedConfig::new(table, oversample(scale.test_queries), 404),
            ),
        );
        ForestEnv {
            db,
            conj_train,
            conj_test,
            mixed_train,
            mixed_test,
        }
    }
}

/// IMDB dataset + labeled join workloads.
pub struct ImdbEnv {
    /// The six-table IMDB-shaped database.
    pub db: Database,
    /// Generated join training workload.
    pub train: LabeledQueries,
    /// The fixed 70-query JOB-light-shaped suite.
    pub suite: LabeledQueries,
}

impl ImdbEnv {
    /// Build the environment for `scale`.
    pub fn build(scale: &Scale) -> Self {
        let db = generate_imdb(&ImdbConfig {
            titles: scale.imdb_titles,
            seed: 0x1_4DB,
        });
        let train = label_queries(
            &db,
            generate_join_workload(
                db.catalog(),
                &JoinWorkloadConfig::new(
                    scale.join_train_queries + scale.join_train_queries / 4,
                    7,
                ),
            ),
        );
        let suite = label_queries(&db, job_light_suite(db.catalog()));
        ImdbEnv { db, train, suite }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_env_builds_at_smoke_scale() {
        let env = ForestEnv::build(&Scale::smoke());
        assert!(env.conj_train.len() > 400);
        assert!(env.conj_test.len() > 100);
        assert!(env.mixed_train.len() > 400);
        assert!(!env.mixed_test.is_empty());
        // Labels are all non-empty results.
        assert!(env.conj_train.cardinalities.iter().all(|&c| c >= 1.0));
    }

    #[test]
    fn imdb_env_builds_at_smoke_scale() {
        let env = ImdbEnv::build(&Scale::smoke());
        assert!(env.train.len() > 300);
        // Most of the 70 suite queries label non-empty.
        assert!(env.suite.len() > 40, "suite size {}", env.suite.len());
    }
}
