//! # qfe-bench
//!
//! The experiment harness that regenerates **every table and figure** of
//! the paper's evaluation (Section 5). Each experiment lives in
//! [`experiments`] and can be run three ways:
//!
//! * `cargo run --release -p qfe-bench --bin <experiment>` — one
//!   experiment, e.g. `fig1_qft_model_matrix`;
//! * `cargo bench -p qfe-bench --bench experiments` — the full suite
//!   (prints every table/figure; this is what EXPERIMENTS.md records);
//! * `cargo bench -p qfe-bench --bench featurize|models|executor` —
//!   criterion micro-benchmarks (featurization latency for Table 7, model
//!   forward passes, executor throughput).
//!
//! Experiment scale is controlled with the `QFE_SCALE` environment
//! variable: `smoke` (seconds, CI), `small` (default, minutes), `full`
//! (closer to paper scale). Absolute numbers differ from the paper — the
//! data is synthetic and the models are scaled down — but the comparisons
//! (which QFT/model wins, by roughly what factor) are what the harness
//! reproduces; see EXPERIMENTS.md.

pub mod envs;
pub mod experiments;
pub mod report;
pub mod scale;
pub mod trainers;

pub use scale::Scale;
