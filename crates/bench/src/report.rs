//! Plain-text rendering of experiment results: box-plot rows for figures,
//! aligned tables for tables. The output format mirrors the statistics the
//! paper plots (1 %, 25 %, 50 %, 75 %, 99 % quantiles for box plots;
//! mean/median/99 %/max for tables).

use qfe_core::metrics::ErrorSummary;

/// A text report under construction.
#[derive(Debug, Default)]
pub struct Report {
    lines: Vec<String>,
}

impl Report {
    /// Empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Add a heading.
    pub fn heading(&mut self, title: &str) {
        self.lines.push(String::new());
        self.lines.push(format!("== {title} =="));
    }

    /// Add a free-form line.
    pub fn line(&mut self, s: impl Into<String>) {
        self.lines.push(s.into());
    }

    /// Add a box-plot row (the figure statistics).
    pub fn boxplot(&mut self, label: &str, errors: &[f64]) {
        let s = ErrorSummary::from_errors(errors);
        self.lines.push(format!(
            "{label:<28} p01 {:>8.2}  p25 {:>8.2}  med {:>8.2}  p75 {:>8.2}  p99 {:>10.2}  (n={})",
            s.p01, s.p25, s.median, s.p75, s.p99, s.count
        ));
    }

    /// Add a table row (mean / median / 99 % / max).
    pub fn table_row(&mut self, label: &str, errors: &[f64]) {
        let s = ErrorSummary::from_errors(errors);
        self.lines.push(format!(
            "{label:<28} mean {:>10.2}  median {:>8.2}  99% {:>10.2}  max {:>12.2}",
            s.mean, s.median, s.p99, s.max
        ));
    }

    /// Header matching [`Report::table_row`].
    pub fn table_header(&mut self, label: &str) {
        self.lines.push(format!(
            "{label:<28} {:>15} {:>15} {:>14} {:>16}",
            "mean", "median", "99%", "max"
        ));
    }

    /// Render and also print to stdout.
    pub fn finish(self) -> String {
        let text = self.lines.join("\n");
        println!("{text}");
        text
    }

    /// Render without printing.
    pub fn render(&self) -> String {
        self.lines.join("\n")
    }
}

/// Format a byte count human-readably.
pub fn format_bytes(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1} MB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} kB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_rows() {
        let mut r = Report::new();
        r.heading("Table X");
        r.table_header("model");
        r.table_row("GB + conj", &[1.0, 2.0, 3.0]);
        r.boxplot("NN + simple", &[1.0, 10.0, 100.0]);
        let text = r.render();
        assert!(text.contains("== Table X =="));
        assert!(text.contains("GB + conj"));
        assert!(text.contains("med"));
        assert!(text.contains("n=3"));
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(format_bytes(100), "100 B");
        assert_eq!(format_bytes(4915), "4.8 kB");
        assert_eq!(format_bytes(2 << 20), "2.0 MB");
    }
}
