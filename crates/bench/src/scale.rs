//! Experiment scale knobs.
//!
//! The paper trains on 100k–231k queries over 580k–5M rows with hours of
//! query generation; the harness defaults to a scaled-down configuration
//! whose *comparisons* reproduce the paper's, while finishing in minutes.
//! Set `QFE_SCALE=full` for a configuration closer to paper scale, or
//! `QFE_SCALE=smoke` for CI-speed runs.

/// All scale knobs in one place.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Rows of the synthetic forest table (paper: 581 012).
    pub forest_rows: usize,
    /// Training queries per forest workload (paper: 100 000).
    pub train_queries: usize,
    /// Test queries per forest workload (paper: 25 000).
    pub test_queries: usize,
    /// Titles in the synthetic IMDB (paper IMDb: 2.5M movies).
    pub imdb_titles: usize,
    /// Generated join training queries (paper: 231k).
    pub join_train_queries: usize,
    /// Trees per GBDT model.
    pub gbdt_trees: usize,
    /// Epochs for the feed-forward NN.
    pub nn_epochs: usize,
    /// Hidden width for the feed-forward NN.
    pub nn_hidden: usize,
    /// Epochs for MSCN.
    pub mscn_epochs: usize,
    /// Default per-attribute buckets for the bucketized QFTs
    /// (paper default: 64; Section 5.4 finds 32 best on JOB-light).
    pub buckets: usize,
    /// Human-readable label.
    pub label: &'static str,
}

impl Scale {
    /// Seconds-scale configuration for CI and tests.
    pub fn smoke() -> Self {
        Scale {
            forest_rows: 4_000,
            train_queries: 700,
            test_queries: 250,
            imdb_titles: 1_500,
            join_train_queries: 900,
            gbdt_trees: 30,
            nn_epochs: 8,
            nn_hidden: 32,
            mscn_epochs: 6,
            buckets: 16,
            label: "smoke",
        }
    }

    /// Default configuration: minutes for the full suite.
    pub fn small() -> Self {
        Scale {
            forest_rows: 30_000,
            train_queries: 6_000,
            test_queries: 1_500,
            imdb_titles: 8_000,
            join_train_queries: 15_000,
            gbdt_trees: 200,
            nn_epochs: 25,
            nn_hidden: 64,
            mscn_epochs: 40,
            buckets: 32,
            label: "small",
        }
    }

    /// Closer to paper scale (tens of minutes to hours).
    pub fn full() -> Self {
        Scale {
            forest_rows: 200_000,
            train_queries: 40_000,
            test_queries: 10_000,
            imdb_titles: 40_000,
            join_train_queries: 60_000,
            gbdt_trees: 300,
            nn_epochs: 60,
            nn_hidden: 128,
            mscn_epochs: 40,
            buckets: 64,
            label: "full",
        }
    }

    /// Read `QFE_SCALE` (default `small`).
    pub fn from_env() -> Self {
        match std::env::var("QFE_SCALE").as_deref() {
            Ok("smoke") => Scale::smoke(),
            Ok("full") => Scale::full(),
            Ok("small") | Err(_) => Scale::small(),
            Ok(other) => {
                eprintln!("unknown QFE_SCALE '{other}', using 'small'");
                Scale::small()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let (s, m, f) = (Scale::smoke(), Scale::small(), Scale::full());
        assert!(s.forest_rows < m.forest_rows && m.forest_rows < f.forest_rows);
        assert!(s.train_queries < m.train_queries && m.train_queries < f.train_queries);
        assert_eq!(s.label, "smoke");
    }

    #[test]
    fn from_env_defaults_to_small() {
        // The test environment does not set QFE_SCALE (or sets a valid
        // value); either way this must not panic.
        let s = Scale::from_env();
        assert!(!s.label.is_empty());
    }
}
